//! Umbrella crate for the CAMO reproduction workspace.
//!
//! This crate holds no code of its own; it exists so the repository root can
//! carry the cross-crate integration tests (`tests/`) and runnable examples
//! (`examples/`). The implementation lives in the `crates/` members:
//!
//! * `camo-geometry` — integer-nm layout primitives, fragmentation, masks,
//!   rasterisation.
//! * `camo-litho` — the lithography simulator (optics, resist, EPE, PV band)
//!   and its scratch-buffer evaluation pipeline.
//! * `camo-nn` / `camo-rl` — the minimal neural-network and RL substrates.
//! * `camo` — the CAMO engine, policy, modulator and trainer.
//! * `camo-baselines` — Calibre-like, DAMO-like, RL-OPC and pixel-ILT
//!   baselines.
//! * `camo-workloads` — via/metal benchmark generators.
//! * `camo-bench` — experiment harnesses and performance tracking.
