//! Quickstart: run CAMO on a single via clip and print the correction.
//!
//! ```text
//! cargo run -p camo --release --example quickstart
//! ```

use camo::{CamoConfig, CamoEngine};
use camo_baselines::{OpcConfig, OpcEngine};
use camo_geometry::{Clip, Rect};
use camo_litho::{LithoConfig, LithoSimulator};

fn main() {
    // 1. Describe the target layout: a 2-via clip, 70 nm vias.
    let mut clip = Clip::with_name(Rect::new(0, 0, 1200, 1200), "quickstart");
    clip.add_target(Rect::new(465, 565, 535, 635).to_polygon());
    clip.add_target(Rect::new(665, 565, 735, 635).to_polygon());

    // 2. Pick a lithography model (the fast configuration keeps this example
    //    under a second) and the CAMO engine.
    let simulator = LithoSimulator::new(LithoConfig::fast());
    let mut engine = CamoEngine::new(OpcConfig::via_layer(), CamoConfig::fast());

    // 3. Optimise. Even without training the OPC-inspired modulator steers
    //    the untrained policy like classic EPE feedback.
    let outcome = engine.optimize(&clip, &simulator);

    println!("clip: {}", clip.name());
    println!("segments moved: {}", outcome.mask.segment_count());
    println!("steps taken:    {}", outcome.steps);
    println!(
        "EPE trajectory: {:?}",
        outcome
            .epe_trajectory
            .iter()
            .map(|e| e.round())
            .collect::<Vec<_>>()
    );
    println!("final EPE:      {:.1} nm", outcome.total_epe());
    println!("final PV band:  {:.0} nm^2", outcome.pv_band());
    println!("runtime:        {:.3} s", outcome.runtime_secs());
    println!();
    println!("per-segment offsets (nm): {:?}", outcome.mask.offsets());
}
