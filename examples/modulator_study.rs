//! Modulator study: prints the preference vectors of Figure 4 and contrasts
//! CAMO's EPE trajectory with and without the modulator on one metal clip
//! (the Figure-5 ablation in miniature).
//!
//! ```text
//! cargo run -p camo --release --example modulator_study
//! ```

use camo::{CamoConfig, CamoEngine, Modulator};
use camo_baselines::{OpcConfig, OpcEngine};
use camo_litho::{LithoConfig, LithoSimulator};
use camo_workloads::metal_test_set;

fn main() {
    // Part 1 — the projection function f(x) = 0.02·x⁴ + 1 (Figure 4).
    let modulator = Modulator::paper_default();
    println!("modulator preferences for movements [-2, -1, 0, +1, +2] nm:");
    for epe in [-8.0, -2.0, 0.0, 2.0, 8.0] {
        let p = modulator.preference(epe);
        println!(
            "  EPE {epe:+5.1} nm -> [{:.3} {:.3} {:.3} {:.3} {:.3}]  (sharpness {:.2})",
            p[0],
            p[1],
            p[2],
            p[3],
            p[4],
            modulator.sharpness(epe)
        );
    }

    // Part 2 — the effect on the optimisation trajectory (Figure 5).
    let simulator = LithoSimulator::new(LithoConfig::fast());
    let mut opc = OpcConfig::metal_layer();
    opc.max_steps = 8;
    let case = &metal_test_set()[7]; // the small M8 clip keeps this quick

    let mut with = CamoEngine::new(opc.clone(), CamoConfig::fast());
    let with_outcome = with.optimize(&case.clip, &simulator);
    let mut without = CamoEngine::new(opc, CamoConfig::fast().without_modulator());
    let without_outcome = without.optimize(&case.clip, &simulator);

    println!(
        "\ncase {} ({} measure points):",
        case.clip.name(),
        case.measure_points
    );
    println!(
        "  EPE per step, with modulator:    {:?}",
        with_outcome
            .epe_trajectory
            .iter()
            .map(|e| e.round())
            .collect::<Vec<_>>()
    );
    println!(
        "  EPE per step, without modulator: {:?}",
        without_outcome
            .epe_trajectory
            .iter()
            .map(|e| e.round())
            .collect::<Vec<_>>()
    );
    println!(
        "  final EPE: {:.0} nm (with) vs {:.0} nm (without)",
        with_outcome.total_epe(),
        without_outcome.total_epe()
    );
}
