//! Via-layer OPC end to end: train CAMO on the training clips, then compare
//! it against the Calibre-like and DAMO-like baselines on a few test clips —
//! a miniature version of the Table-1 experiment.
//!
//! ```text
//! cargo run -p camo --release --example via_opc
//! ```

use camo::{CamoConfig, CamoEngine, CamoTrainer};
use camo_baselines::{CalibreLikeOpc, DamoLikeOpc, OpcConfig, OpcEngine};
use camo_geometry::Clip;
use camo_litho::{LithoConfig, LithoSimulator};
use camo_workloads::{via_test_set, via_training_set};

fn main() {
    let simulator = LithoSimulator::new(LithoConfig::fast());
    let opc = OpcConfig::via_layer();

    // Training clips (the paper uses 11; three keep this example quick).
    let training: Vec<Clip> = via_training_set()
        .iter()
        .take(3)
        .map(|c| c.clip.clone())
        .collect();

    // Train CAMO: Phase 1 imitation of the Calibre-like teacher, Phase 2
    // modulated REINFORCE.
    let mut camo = CamoEngine::new(opc.clone(), CamoConfig::fast());
    let mut trainer = CamoTrainer::new(&camo);
    let report = trainer.train(&mut camo, &training, &simulator);
    println!(
        "training: imitation loss {:.3} -> {:.3}, RL reward per epoch {:?}",
        report.imitation_losses.first().copied().unwrap_or(0.0),
        report.imitation_losses.last().copied().unwrap_or(0.0),
        report
            .rl_rewards
            .iter()
            .map(|r| (r * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    let mut calibre = CalibreLikeOpc::new(opc.clone());
    let mut damo = DamoLikeOpc::new(opc.clone());
    damo.fit(&training, &simulator);

    println!(
        "\n{:<6} {:>4} {:>14} {:>14} {:>14}",
        "case", "vias", "DAMO-like EPE", "Calibre EPE", "CAMO EPE"
    );
    for case in via_test_set().iter().take(4) {
        let d = damo.optimize(&case.clip, &simulator);
        let c = calibre.optimize(&case.clip, &simulator);
        let m = camo.optimize(&case.clip, &simulator);
        println!(
            "{:<6} {:>4} {:>14.0} {:>14.0} {:>14.0}",
            case.clip.name(),
            case.via_count,
            d.total_epe(),
            c.total_epe(),
            m.total_epe()
        );
    }
}
