//! Metal-layer OPC: the workload the paper highlights as too complex for
//! earlier ML-OPC engines. Trains CAMO on synthetic routing clips and
//! compares it with the Calibre-like baseline on two test clips.
//!
//! ```text
//! cargo run -p camo --release --example metal_opc
//! ```

use camo::{CamoConfig, CamoEngine, CamoTrainer};
use camo_baselines::{CalibreLikeOpc, OpcConfig, OpcEngine};
use camo_geometry::Clip;
use camo_litho::{LithoConfig, LithoSimulator};
use camo_workloads::{metal_test_set, metal_training_set};

fn main() {
    let simulator = LithoSimulator::new(LithoConfig::fast());
    let opc = OpcConfig::metal_layer();

    let training: Vec<Clip> = metal_training_set()
        .iter()
        .take(2)
        .map(|c| c.clip.clone())
        .collect();

    let mut camo = CamoEngine::new(opc.clone(), CamoConfig::fast());
    let mut trainer = CamoTrainer::new(&camo);
    trainer.train(&mut camo, &training, &simulator);

    let mut calibre = CalibreLikeOpc::new(opc);

    println!(
        "{:<6} {:>7} {:>13} {:>13} {:>12} {:>12}",
        "case", "points", "Calibre EPE", "CAMO EPE", "Calibre PVB", "CAMO PVB"
    );
    // M8 and M1 are the two smallest clips — quick yet representative.
    let metal = metal_test_set();
    for case in [&metal[7], &metal[0]] {
        let c = calibre.optimize(&case.clip, &simulator);
        let m = camo.optimize(&case.clip, &simulator);
        println!(
            "{:<6} {:>7} {:>13.0} {:>13.0} {:>12.0} {:>12.0}",
            case.clip.name(),
            case.measure_points,
            c.total_epe(),
            m.total_epe(),
            c.pv_band(),
            m.pv_band()
        );
        println!(
            "        CAMO per-step EPE: {:?}",
            m.epe_trajectory
                .iter()
                .map(|e| e.round())
                .collect::<Vec<_>>()
        );
    }
}
