//! The correlation-aware policy network.
//!
//! Architecture (Section 3.2 of the paper): per-segment squish features are
//! embedded by a fully-connected encoder, fused along the segment graph by a
//! GraphSAGE layer, processed *sequentially* by a stacked RNN (so each
//! decision sees the context of previously visited segments) and projected to
//! five movement logits by a linear head.

use crate::config::CamoConfig;
use camo_nn::{Linear, Param, Relu, RnnStack, SageLayer, Tensor};

/// Number of discrete movements the policy chooses among.
pub const ACTION_COUNT: usize = 5;

/// The CAMO policy network: encoder → GraphSAGE → RNN → linear head.
#[derive(Debug, Clone)]
pub struct CamoPolicy {
    encoder: Linear,
    encoder_act: Relu,
    sage: SageLayer,
    rnn: RnnStack,
    head: Linear,
    feature_len: usize,
}

impl CamoPolicy {
    /// Builds the policy described by `config`, with deterministic
    /// initialisation from `config.seed`.
    pub fn new(config: &CamoConfig) -> Self {
        let feature_len = config.feature_len();
        Self {
            encoder: Linear::new(feature_len, config.embedding, config.seed),
            encoder_act: Relu::new(),
            sage: SageLayer::new(
                config.embedding,
                config.embedding,
                config.seed.wrapping_add(11),
            ),
            rnn: RnnStack::new(
                config.embedding,
                config.hidden,
                config.rnn_layers,
                config.seed.wrapping_add(23),
            ),
            head: Linear::new(config.hidden, ACTION_COUNT, config.seed.wrapping_add(41)),
            feature_len,
        }
    }

    /// Expected per-node feature length.
    pub fn feature_len(&self) -> usize {
        self.feature_len
    }

    /// Total number of trainable scalar parameters.
    pub fn parameter_count(&mut self) -> usize {
        self.parameters_mut().iter().map(|p| p.len()).sum()
    }

    fn features_tensor(&self, features: &[Vec<f64>]) -> Tensor {
        let n = features.len();
        let mut data = Vec::with_capacity(n * self.feature_len);
        for f in features {
            assert_eq!(f.len(), self.feature_len, "feature length mismatch");
            data.extend_from_slice(f);
        }
        Tensor::from_vec(data, vec![n, self.feature_len])
    }

    /// Forward pass producing one logit vector (length 5) per segment, in the
    /// same order as the input features. Caches intermediate activations for
    /// [`Self::backward`].
    ///
    /// # Panics
    ///
    /// Panics if the feature lengths or the adjacency size are inconsistent.
    pub fn forward(&mut self, features: &[Vec<f64>], adjacency: &[Vec<usize>]) -> Vec<Vec<f64>> {
        let x = self.features_tensor(features);
        let embedded = self.encoder.forward(&x);
        let embedded = self.encoder_act.forward(&embedded);
        let fused = self.sage.forward(&embedded, adjacency);
        let sequence: Vec<Vec<f64>> = rows(&fused);
        let hidden = self.rnn.forward_sequence(&sequence);
        let hidden_tensor = from_rows(&hidden);
        let logits = self.head.forward(&hidden_tensor);
        rows(&logits)
    }

    /// Forward pass without caching (inference only).
    pub fn forward_inference(
        &self,
        features: &[Vec<f64>],
        adjacency: &[Vec<usize>],
    ) -> Vec<Vec<f64>> {
        let x = self.features_tensor(features);
        let embedded = self.encoder.forward_inference(&x);
        let embedded = self.encoder_act.forward_inference(&embedded);
        let fused = self.sage.forward_inference(&embedded, adjacency);
        let sequence: Vec<Vec<f64>> = rows(&fused);
        let hidden = self.rnn.forward_sequence_inference(&sequence);
        let hidden_tensor = from_rows(&hidden);
        let logits = self.head.forward_inference(&hidden_tensor);
        rows(&logits)
    }

    /// Backward pass from per-segment logit gradients; accumulates parameter
    /// gradients across calls until [`Self::zero_grad`].
    ///
    /// # Panics
    ///
    /// Panics if `forward` was not called first or the gradient shape does
    /// not match the last forward pass.
    pub fn backward(&mut self, grad_logits: &[Vec<f64>]) {
        let grad = from_rows(grad_logits);
        let grad_hidden = self.head.backward(&grad);
        let grad_hidden_rows = rows(&grad_hidden);
        let grad_sequence = self.rnn.backward_sequence(&grad_hidden_rows);
        let grad_fused = from_rows(&grad_sequence);
        let grad_embedded = self.sage.backward(&grad_fused);
        let grad_embedded = self.encoder_act.backward(&grad_embedded);
        let _ = self.encoder.backward(&grad_embedded);
    }

    /// Mutable access to every trainable parameter.
    pub fn parameters_mut(&mut self) -> Vec<&mut Param> {
        let mut params = self.encoder.parameters_mut();
        params.extend(self.sage.parameters_mut());
        params.extend(self.rnn.parameters_mut());
        params.extend(self.head.parameters_mut());
        params
    }

    /// Zeroes every accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.encoder.zero_grad();
        self.sage.zero_grad();
        self.rnn.zero_grad();
        self.head.zero_grad();
    }
}

fn rows(t: &Tensor) -> Vec<Vec<f64>> {
    let n = t.shape()[0];
    let d = t.shape()[1];
    (0..n)
        .map(|i| t.data()[i * d..(i + 1) * d].to_vec())
        .collect()
}

fn from_rows(rows: &[Vec<f64>]) -> Tensor {
    let n = rows.len();
    let d = rows.first().map(|r| r.len()).unwrap_or(0);
    let mut data = Vec::with_capacity(n * d);
    for r in rows {
        assert_eq!(r.len(), d, "ragged row widths");
        data.extend_from_slice(r);
    }
    Tensor::from_vec(data, vec![n, d])
}

#[cfg(test)]
mod tests {
    use super::*;
    use camo_nn::{cross_entropy_grad, Optimizer, Sgd};

    fn tiny_policy() -> (CamoPolicy, Vec<Vec<f64>>, Vec<Vec<usize>>) {
        let mut config = CamoConfig::fast();
        config.features.tensor_size = 2; // feature length = 2*3*4 = 24
        config.embedding = 8;
        config.hidden = 6;
        config.rnn_layers = 2;
        let policy = CamoPolicy::new(&config);
        let n = 4;
        let features: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..config.feature_len())
                    .map(|j| ((i * 7 + j) as f64 * 0.13).sin() * 0.5)
                    .collect()
            })
            .collect();
        let adjacency = vec![vec![1], vec![0, 2], vec![1, 3], vec![2]];
        (policy, features, adjacency)
    }

    #[test]
    fn forward_produces_one_logit_vector_per_segment() {
        let (mut policy, features, adjacency) = tiny_policy();
        let logits = policy.forward(&features, &adjacency);
        assert_eq!(logits.len(), 4);
        assert!(logits.iter().all(|l| l.len() == ACTION_COUNT));
        assert!(policy.parameter_count() > 0);
        // Inference path matches the training path.
        let inference = policy.forward_inference(&features, &adjacency);
        for (a, b) in logits.iter().zip(&inference) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let config = CamoConfig::fast();
        let a = CamoPolicy::new(&config);
        let b = CamoPolicy::new(&config);
        let features = vec![vec![0.3; config.feature_len()]; 3];
        let adjacency = vec![vec![1], vec![0, 2], vec![1]];
        assert_eq!(
            a.forward_inference(&features, &adjacency),
            b.forward_inference(&features, &adjacency)
        );
    }

    #[test]
    fn end_to_end_gradient_check() {
        let (mut policy, features, adjacency) = tiny_policy();
        // Loss: sum of all logits.
        let logits = policy.forward(&features, &adjacency);
        let grad: Vec<Vec<f64>> = logits.iter().map(|l| vec![1.0; l.len()]).collect();
        policy.zero_grad();
        policy.backward(&grad);
        let analytic = policy.head.parameters_mut()[0].grad.clone();
        let eps = 1e-6;
        let loss = |p: &CamoPolicy| -> f64 {
            p.forward_inference(&features, &adjacency)
                .iter()
                .map(|l| l.iter().sum::<f64>())
                .sum()
        };
        for idx in [0usize, 3, 7] {
            let mut plus = policy.clone();
            plus.head.parameters_mut()[0].value.data_mut()[idx] += eps;
            let mut minus = policy.clone();
            minus.head.parameters_mut()[0].value.data_mut()[idx] -= eps;
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            assert!(
                (numeric - analytic.data()[idx]).abs() < 1e-4,
                "head grad mismatch at {idx}: {numeric} vs {}",
                analytic.data()[idx]
            );
        }
        // Also check a weight deep in the encoder to make sure gradients flow
        // through the whole chain.
        let analytic_enc = policy.encoder.parameters_mut()[0].grad.clone();
        let nonzero = analytic_enc
            .data()
            .iter()
            .filter(|g| g.abs() > 1e-12)
            .count();
        assert!(nonzero > 0, "encoder must receive gradient");
        let idx = analytic_enc
            .data()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        let mut plus = policy.clone();
        plus.encoder.parameters_mut()[0].value.data_mut()[idx] += eps;
        let mut minus = policy.clone();
        minus.encoder.parameters_mut()[0].value.data_mut()[idx] -= eps;
        let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
        assert!(
            (numeric - analytic_enc.data()[idx]).abs() < 1e-4,
            "encoder grad mismatch: {numeric} vs {}",
            analytic_enc.data()[idx]
        );
    }

    #[test]
    fn training_step_reduces_cross_entropy() {
        let (mut policy, features, adjacency) = tiny_policy();
        let targets = vec![4usize, 4, 0, 2];
        let nll = |p: &CamoPolicy| -> f64 {
            p.forward_inference(&features, &adjacency)
                .iter()
                .zip(&targets)
                .map(|(l, &t)| -camo_nn::log_softmax(l)[t])
                .sum()
        };
        let before = nll(&policy);
        for _ in 0..20 {
            let logits = policy.forward(&features, &adjacency);
            let grads: Vec<Vec<f64>> = logits
                .iter()
                .zip(&targets)
                .map(|(l, &t)| cross_entropy_grad(l, t, 1.0))
                .collect();
            policy.zero_grad();
            policy.backward(&grads);
            let mut opt = Sgd::new(0.05, 0.0);
            opt.step(&mut policy.parameters_mut());
        }
        let after = nll(&policy);
        assert!(
            after < before,
            "imitation loss must decrease: {before} -> {after}"
        );
    }

    #[test]
    fn changing_an_earlier_segment_affects_later_decisions() {
        // The RNN must propagate context: perturbing node 0's features changes
        // node 3's logits even though they are not graph neighbours.
        let (policy, features, _) = tiny_policy();
        let adjacency = vec![vec![], vec![], vec![], vec![]];
        let base = policy.forward_inference(&features, &adjacency);
        let mut perturbed = features.clone();
        for v in &mut perturbed[0] {
            *v += 0.4;
        }
        let changed = policy.forward_inference(&perturbed, &adjacency);
        let diff: f64 = base[3]
            .iter()
            .zip(&changed[3])
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(
            diff > 1e-9,
            "sequential correlation must flow through the RNN"
        );
    }
}
