//! The OPC-inspired modulator (Section 3.2 and Figure 4 of the paper).
//!
//! For each segment the modulator converts the signed EPE into a preference
//! vector over the five movements. Five points are sampled evenly from
//! `[0, |EPE|]`, projected through the polynomial `f(x) = k·xⁿ + b` (even
//! `n`, so `f` is flat near zero and grows sharply with |EPE|) and normalised
//! with a softmax. The ordering of the samples is chosen so that the
//! movement that best corrects the error receives the largest preference:
//!
//! * **positive EPE** (printed contour inside the target → under-printing):
//!   outward movements (+1, +2 nm) are preferred;
//! * **negative EPE** (over-printing): inward movements are preferred;
//! * **small EPE**: `f` is nearly constant, so the preferences stay close to
//!   uniform and the policy's own distribution dominates.

use camo_nn::softmax;

/// Number of discrete movements.
pub const ACTION_COUNT: usize = 5;

/// The preference-vector modulator.
#[derive(Debug, Clone, PartialEq)]
pub struct Modulator {
    k: f64,
    n: u32,
    b: f64,
}

impl Modulator {
    /// Creates a modulator with projection `f(x) = k·xⁿ + b`.
    ///
    /// # Panics
    ///
    /// Panics if `k <= 0`, `b < 0`, `n == 0` or `n` is odd.
    pub fn new(k: f64, n: u32, b: f64) -> Self {
        assert!(k > 0.0, "modulator k must be positive");
        assert!(b >= 0.0, "modulator b must be non-negative");
        assert!(
            n > 0 && n.is_multiple_of(2),
            "modulator exponent must be positive and even"
        );
        Self { k, n, b }
    }

    /// The paper's modulator: `f(x) = 0.02·x⁴ + 1`.
    pub fn paper_default() -> Self {
        Self::new(0.02, 4, 1.0)
    }

    /// The projection function `f(x) = k·xⁿ + b`.
    pub fn projection(&self, x: f64) -> f64 {
        self.k * x.powi(self.n as i32) + self.b
    }

    /// The modulated preference vector for the five movements
    /// `[-2, -1, 0, +1, +2]` nm given a signed EPE in nm.
    pub fn preference(&self, epe: f64) -> [f64; ACTION_COUNT] {
        let magnitude = epe.abs();
        // Five evenly spaced samples on [0, |EPE|].
        let samples: Vec<f64> = (0..ACTION_COUNT)
            .map(|i| magnitude * i as f64 / (ACTION_COUNT - 1) as f64)
            .collect();
        // Assign the largest sample to the most corrective movement.
        let mut projected = [0.0; ACTION_COUNT];
        for (i, &x) in samples.iter().enumerate() {
            let idx = if epe >= 0.0 { i } else { ACTION_COUNT - 1 - i };
            projected[idx] = self.projection(x);
        }
        let normalised = softmax(&projected);
        let mut out = [0.0; ACTION_COUNT];
        out.copy_from_slice(&normalised);
        out
    }

    /// Element-wise modulation of a policy distribution: `p̂ ⊙ π`, followed by
    /// renormalisation so the result is again a distribution.
    ///
    /// # Panics
    ///
    /// Panics if `policy` does not have exactly five entries.
    pub fn modulate(&self, epe: f64, policy: &[f64]) -> [f64; ACTION_COUNT] {
        assert_eq!(
            policy.len(),
            ACTION_COUNT,
            "policy distribution must have 5 entries"
        );
        let pref = self.preference(epe);
        let mut combined = [0.0; ACTION_COUNT];
        let mut sum = 0.0;
        for i in 0..ACTION_COUNT {
            combined[i] = pref[i] * policy[i].max(0.0);
            sum += combined[i];
        }
        if sum <= f64::EPSILON {
            return pref;
        }
        for value in &mut combined {
            *value /= sum;
        }
        combined
    }

    /// Ratio between the largest and smallest preference for a given EPE — a
    /// measure of how strongly the modulator biases the decision.
    pub fn sharpness(&self, epe: f64) -> f64 {
        let pref = self.preference(epe);
        let max = pref.iter().cloned().fold(f64::MIN, f64::max);
        let min = pref.iter().cloned().fold(f64::MAX, f64::min);
        max / min
    }
}

impl Default for Modulator {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preference_is_a_distribution() {
        let m = Modulator::paper_default();
        for epe in [-10.0, -2.0, 0.0, 1.5, 8.0] {
            let p = m.preference(epe);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn positive_epe_prefers_outward_movement() {
        let m = Modulator::paper_default();
        let p = m.preference(6.0);
        // Index 4 corresponds to +2 nm (outward).
        assert!(
            p[4] > p[0],
            "outward must beat inward for positive EPE: {p:?}"
        );
        assert_eq!(
            p.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i),
            Some(4)
        );
    }

    #[test]
    fn negative_epe_prefers_inward_movement() {
        let m = Modulator::paper_default();
        let p = m.preference(-6.0);
        assert!(
            p[0] > p[4],
            "inward must beat outward for negative EPE: {p:?}"
        );
    }

    #[test]
    fn small_epe_gives_nearly_uniform_preferences() {
        let m = Modulator::paper_default();
        assert!(m.sharpness(0.0) < 1.0 + 1e-9);
        assert!(m.sharpness(0.5) < 1.05);
        // Large EPE must be sharply biased.
        assert!(m.sharpness(10.0) > 5.0);
        // Sharpness grows monotonically with |EPE|.
        assert!(m.sharpness(4.0) < m.sharpness(8.0));
    }

    #[test]
    fn modulation_reweights_policy() {
        let m = Modulator::paper_default();
        // A policy that prefers "stay" gets pushed outward by a large
        // positive EPE.
        let policy = [0.1, 0.1, 0.6, 0.1, 0.1];
        let modulated = m.modulate(8.0, &policy);
        assert!((modulated.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(
            modulated[4] > policy[4],
            "outward probability should increase"
        );
        // With zero EPE the policy is essentially unchanged.
        let neutral = m.modulate(0.0, &policy);
        for (a, b) in neutral.iter().zip(&policy) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn degenerate_policy_falls_back_to_preference() {
        let m = Modulator::paper_default();
        let zeros = [0.0; 5];
        let out = m.modulate(5.0, &zeros);
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn projection_matches_formula() {
        let m = Modulator::new(0.02, 4, 1.0);
        assert!((m.projection(0.0) - 1.0).abs() < 1e-12);
        assert!((m.projection(2.0) - (0.02 * 16.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_exponent_rejected() {
        let _ = Modulator::new(0.02, 3, 1.0);
    }
}
