//! The CAMO inference engine.

use crate::config::CamoConfig;
use crate::graph::SegmentGraph;
use crate::modulator::Modulator;
use crate::policy::{CamoPolicy, ACTION_COUNT};
use camo_baselines::{OpcConfig, OpcEngine, OpcOutcome};
use camo_geometry::{segment_features_stacked, Clip, Coord, MaskState};
use camo_litho::{EpeReport, LithoSimulator};
use camo_nn::softmax;
use camo_rl::{argmax, sample_index};
use rand::rngs::StdRng;
use std::time::Duration;

/// Maps a movement index (0–4) to its displacement in nm (−2…+2).
pub fn action_to_move(action: usize) -> Coord {
    action as Coord - 2
}

/// Maps a displacement in nm (−2…+2) to its movement index.
///
/// # Panics
///
/// Panics if the displacement is outside the action space.
pub fn move_to_action(movement: Coord) -> usize {
    assert!(
        (-2..=2).contains(&movement),
        "movement {movement} outside the action space"
    );
    (movement + 2) as usize
}

/// The CAMO OPC engine: modulated, correlation-aware policy inference.
///
/// The engine itself is stateless between clips: greedy inference needs no
/// randomness, and stochastic (training) decisions draw from a caller-owned
/// generator derived per episode via [`camo_rl::episode_rng`]. Cloning an
/// engine and optimising clips on separate threads therefore produces
/// results bit-identical to a serial loop.
#[derive(Debug, Clone)]
pub struct CamoEngine {
    opc: OpcConfig,
    config: CamoConfig,
    policy: CamoPolicy,
    modulator: Modulator,
}

impl CamoEngine {
    /// Creates an engine with a freshly initialised (untrained) policy.
    pub fn new(opc: OpcConfig, config: CamoConfig) -> Self {
        let policy = CamoPolicy::new(&config);
        let modulator = Modulator::new(config.modulator_k, config.modulator_n, config.modulator_b);
        Self {
            opc,
            config,
            policy,
            modulator,
        }
    }

    /// The OPC run configuration (step budget, early exit, fragmentation).
    pub fn opc_config(&self) -> &OpcConfig {
        &self.opc
    }

    /// The CAMO hyper-parameters.
    pub fn config(&self) -> &CamoConfig {
        &self.config
    }

    /// The policy network (e.g. for parameter counting).
    pub fn policy(&self) -> &CamoPolicy {
        &self.policy
    }

    /// Mutable access to the policy network (used by the trainer).
    pub fn policy_mut(&mut self) -> &mut CamoPolicy {
        &mut self.policy
    }

    /// The modulator in use.
    pub fn modulator(&self) -> &Modulator {
        &self.modulator
    }

    /// Encodes the observation of every segment of `mask` (6-channel stacked
    /// squish features, Section 3.2).
    pub fn node_features(&self, mask: &MaskState) -> Vec<Vec<f64>> {
        (0..mask.segment_count())
            .map(|seg| segment_features_stacked(mask, seg, &self.config.features))
            .collect()
    }

    /// Builds the segment graph of a mask's fragmentation.
    pub fn graph(&self, mask: &MaskState) -> SegmentGraph {
        SegmentGraph::build(mask.fragments(), self.config.graph_threshold)
    }

    /// Chooses an action per segment. When an episode generator is supplied
    /// actions are drawn from the (optionally modulated) distribution;
    /// otherwise the modulated argmax of Eq. (6) is used. Returns
    /// `(action, unmodulated logits)` per segment.
    ///
    /// `epe` must carry one per-point value per segment of `mask` (the
    /// invariant documented on [`MaskState`]); this is debug-asserted, and
    /// in release builds a missing value falls back to `0.0` (no
    /// modulation) instead of panicking.
    pub fn decide(
        &self,
        mask: &MaskState,
        graph: &SegmentGraph,
        epe: &EpeReport,
        mut rng: Option<&mut StdRng>,
    ) -> Vec<(usize, Vec<f64>)> {
        debug_assert_eq!(
            epe.per_point.len(),
            mask.segment_count(),
            "per-point EPE count must match the mask's segment count"
        );
        let features = self.node_features(mask);
        let logits = self.policy.forward_inference(&features, graph.adjacency());
        logits
            .into_iter()
            .enumerate()
            .map(|(seg, l)| {
                let probs = softmax(&l);
                let dist: [f64; ACTION_COUNT] = if self.config.use_modulator {
                    let seg_epe = epe.per_point.get(seg).copied().unwrap_or(0.0);
                    self.modulator.modulate(seg_epe, &probs)
                } else {
                    let mut d = [0.0; ACTION_COUNT];
                    d.copy_from_slice(&probs);
                    d
                };
                let action = match rng.as_deref_mut() {
                    Some(r) => sample_index(&dist, r),
                    None => argmax(&dist),
                };
                (action, l)
            })
            .collect()
    }
}

impl OpcEngine for CamoEngine {
    fn name(&self) -> &str {
        "CAMO"
    }

    /// Optimises `clip`. The engine is inside the workspace's determinism
    /// lint scope and never reads clocks, so the returned outcome carries
    /// [`Duration::ZERO`] as its runtime; harnesses that report wall-clock
    /// figures wrap the engine in [`camo_baselines::TimedEngine`].
    fn optimize(&mut self, clip: &Clip, simulator: &LithoSimulator) -> OpcOutcome {
        let mask = self.opc.initial_mask(clip);
        let graph = self.graph(&mask);
        // One evaluation session for the whole loop: every step re-simulates
        // only the region its movements dirtied.
        let mut eval = simulator.evaluator(&mask);
        let mut epe = eval.epe();
        let mut trajectory = vec![epe.total_abs()];
        let mut steps = 0;
        for _ in 0..self.opc.max_steps {
            if self.opc.early_exit(epe.mean_abs()) {
                break;
            }
            let decisions = self.decide(eval.mask(), &graph, &epe, None);
            let moves: Vec<Coord> = decisions.iter().map(|(a, _)| action_to_move(*a)).collect();
            eval.apply_moves(&moves);
            epe = eval.epe();
            trajectory.push(epe.total_abs());
            steps += 1;
        }
        let result = eval.evaluate();
        OpcOutcome {
            mask: eval.into_mask(),
            result,
            steps,
            runtime: Duration::ZERO,
            epe_trajectory: trajectory,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camo_geometry::Rect;
    use camo_litho::LithoConfig;

    fn via_clip() -> Clip {
        let mut clip = Clip::new(Rect::new(0, 0, 800, 800));
        clip.add_target(Rect::new(365, 365, 435, 435).to_polygon());
        clip
    }

    #[test]
    fn action_move_mapping_roundtrips() {
        for a in 0..ACTION_COUNT {
            assert_eq!(move_to_action(action_to_move(a)), a);
        }
        assert_eq!(action_to_move(0), -2);
        assert_eq!(action_to_move(4), 2);
    }

    #[test]
    fn untrained_engine_produces_valid_outcome() {
        let sim = LithoSimulator::new(LithoConfig::fast());
        let mut opc = OpcConfig::via_layer();
        opc.max_steps = 3;
        let mut engine = CamoEngine::new(opc, CamoConfig::fast());
        let outcome = engine.optimize(&via_clip(), &sim);
        assert_eq!(engine.name(), "CAMO");
        assert!(outcome.total_epe().is_finite());
        assert!(!outcome.epe_trajectory.is_empty());
        assert!(outcome.steps <= 3);
    }

    #[test]
    fn modulator_steers_untrained_policy_toward_improvement() {
        // Even with random policy weights, the modulated argmax should behave
        // like EPE feedback on a strongly under-printing via and reduce EPE.
        let sim = LithoSimulator::new(LithoConfig::fast());
        let mut opc = OpcConfig::via_layer();
        opc.max_steps = 6;
        let mut engine = CamoEngine::new(opc, CamoConfig::fast());
        let outcome = engine.optimize(&via_clip(), &sim);
        let first = outcome.epe_trajectory.first().copied().expect("non-empty");
        let last = outcome.epe_trajectory.last().copied().expect("non-empty");
        assert!(
            last <= first,
            "modulated CAMO should not degrade EPE: {first} -> {last}"
        );
    }

    #[test]
    fn decide_returns_one_action_per_segment() {
        let sim = LithoSimulator::new(LithoConfig::fast());
        let engine = CamoEngine::new(OpcConfig::via_layer(), CamoConfig::fast());
        let mask = engine.opc_config().initial_mask(&via_clip());
        let graph = engine.graph(&mask);
        let epe = sim.evaluate_epe(&mask);
        let decisions = engine.decide(&mask, &graph, &epe, None);
        assert_eq!(decisions.len(), mask.segment_count());
        for (a, logits) in &decisions {
            assert!(*a < ACTION_COUNT);
            assert_eq!(logits.len(), ACTION_COUNT);
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "per-point EPE count must match")]
    fn decide_rejects_mismatched_epe_report_in_debug() {
        // An EPE report with fewer points than segments used to panic with
        // an opaque out-of-bounds index; now the invariant is asserted
        // explicitly (and release builds fall back to unmodulated decisions).
        let engine = CamoEngine::new(OpcConfig::via_layer(), CamoConfig::fast());
        let mask = engine.opc_config().initial_mask(&via_clip());
        let graph = engine.graph(&mask);
        let bogus = camo_litho::EpeReport {
            per_point: vec![4.0], // 1 value for a 4-segment via
            search_range: 40.0,
        };
        let _ = engine.decide(&mask, &graph, &bogus, None);
    }

    #[test]
    fn disabling_modulator_changes_decisions() {
        let sim = LithoSimulator::new(LithoConfig::fast());
        let with = CamoEngine::new(OpcConfig::via_layer(), CamoConfig::fast());
        let without = CamoEngine::new(
            OpcConfig::via_layer(),
            CamoConfig::fast().without_modulator(),
        );
        let mask = with.opc_config().initial_mask(&via_clip());
        let graph = with.graph(&mask);
        let epe = sim.evaluate_epe(&mask);
        let a: Vec<usize> = with
            .decide(&mask, &graph, &epe, None)
            .iter()
            .map(|(a, _)| *a)
            .collect();
        let b: Vec<usize> = without
            .decide(&mask, &graph, &epe, None)
            .iter()
            .map(|(a, _)| *a)
            .collect();
        // With a strongly positive EPE the modulator pushes toward outward
        // moves; the untrained policy alone is near-uniform, so decisions
        // should differ for at least one segment.
        assert_ne!(a, b);
        // And the modulated decisions are outward.
        assert!(
            a.iter().all(|&x| x >= 2),
            "modulated actions should not be inward: {a:?}"
        );
    }
}
