//! CAMO hyper-parameters.

use camo_geometry::{Coord, FeatureConfig};
use camo_rl::{ReinforceConfig, RewardConfig};

/// Hyper-parameters of the CAMO policy, modulator and trainer.
///
/// The defaults follow Section 4.1 of the paper where practical (embedding
/// width 256, RNN hidden size 64 with 3 layers, learning rate 3·10⁻⁴,
/// modulator `f(x) = 0.02·x⁴ + 1`, graph threshold 250 nm); the squish tensor
/// is 16 × 16 rather than 128 × 128 because this build targets a single CPU
/// core rather than an RTX 3090.
#[derive(Debug, Clone, PartialEq)]
pub struct CamoConfig {
    /// Segment observation encoding (window size and tensor side length).
    pub features: FeatureConfig,
    /// Node embedding width after the encoder and GraphSAGE fusion.
    pub embedding: usize,
    /// RNN hidden-state width.
    pub hidden: usize,
    /// Number of stacked RNN layers.
    pub rnn_layers: usize,
    /// Control-point distance threshold for graph edges, nm.
    pub graph_threshold: Coord,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Modulator polynomial coefficient `k` in `f(x) = k·xⁿ + b`.
    pub modulator_k: f64,
    /// Modulator exponent `n` (must be even and positive).
    pub modulator_n: u32,
    /// Modulator offset `b`.
    pub modulator_b: f64,
    /// Whether the modulator is applied (disabled for the Figure-5 ablation).
    pub use_modulator: bool,
    /// Reward weighting (Eq. (3)).
    pub reward: RewardConfig,
    /// REINFORCE settings.
    pub reinforce: ReinforceConfig,
    /// Phase-1 imitation epochs.
    pub imitation_epochs: usize,
    /// Number of teacher steps collected per clip for Phase 1 (the paper
    /// mimics five-step Calibre trajectories).
    pub teacher_steps: usize,
    /// Phase-2 REINFORCE epochs.
    pub rl_epochs: usize,
    /// RNG seed for initialisation and sampling.
    ///
    /// # Stream-derivation contract
    ///
    /// The seed is never threaded through one mutable generator across
    /// clips. Policy initialisation derives fixed offsets of `seed`, and
    /// every training episode draws its actions from an independent
    /// generator derived as
    /// `camo_rl::episode_rng(seed, epoch * n_clips + clip_index)`.
    /// Episode streams therefore depend only on
    /// `(seed, epoch, clip_index)` — not on the order, interleaving, or
    /// thread on which episodes execute — so parallel batch runtimes (see
    /// the `camo-runtime` crate) reproduce serial results bit for bit at
    /// any thread count, and successive epochs still explore fresh
    /// randomness.
    pub seed: u64,
}

impl Default for CamoConfig {
    fn default() -> Self {
        Self {
            features: FeatureConfig::default(),
            embedding: 256,
            hidden: 64,
            rnn_layers: 3,
            graph_threshold: 250,
            learning_rate: 3e-4,
            modulator_k: 0.02,
            modulator_n: 4,
            modulator_b: 1.0,
            use_modulator: true,
            reward: RewardConfig::default(),
            reinforce: ReinforceConfig::default(),
            imitation_epochs: 20,
            teacher_steps: 5,
            rl_epochs: 5,
            seed: 2024,
        }
    }
}

impl CamoConfig {
    /// A scaled-down configuration for unit tests and CI: tiny tensors and
    /// network widths, very few training epochs.
    pub fn fast() -> Self {
        Self {
            features: FeatureConfig {
                window: 300,
                tensor_size: 8,
            },
            embedding: 32,
            hidden: 16,
            rnn_layers: 2,
            imitation_epochs: 2,
            teacher_steps: 2,
            rl_epochs: 1,
            ..Self::default()
        }
    }

    /// Returns a copy with the modulator disabled (the Figure-5 ablation).
    pub fn without_modulator(mut self) -> Self {
        self.use_modulator = false;
        self
    }

    /// Length of the stacked (6-channel) feature vector consumed by the
    /// policy encoder.
    pub fn feature_len(&self) -> usize {
        self.features.stacked_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let cfg = CamoConfig::default();
        assert_eq!(cfg.embedding, 256);
        assert_eq!(cfg.hidden, 64);
        assert_eq!(cfg.rnn_layers, 3);
        assert_eq!(cfg.graph_threshold, 250);
        assert!((cfg.learning_rate - 3e-4).abs() < 1e-12);
        assert!((cfg.modulator_k - 0.02).abs() < 1e-12);
        assert_eq!(cfg.modulator_n, 4);
        assert!(cfg.use_modulator);
    }

    #[test]
    fn fast_config_is_smaller() {
        let fast = CamoConfig::fast();
        let full = CamoConfig::default();
        assert!(fast.feature_len() < full.feature_len());
        assert!(fast.embedding < full.embedding);
        assert!(fast.imitation_epochs < full.imitation_epochs);
    }

    #[test]
    fn without_modulator_only_clears_flag() {
        let cfg = CamoConfig::default().without_modulator();
        assert!(!cfg.use_modulator);
        assert_eq!(cfg.embedding, CamoConfig::default().embedding);
    }
}
