//! Two-phase CAMO training (Algorithm 1 of the paper).
//!
//! * **Phase 1 — imitation**: the policy mimics per-step movements of the
//!   Calibre-like teacher on the training clips (behaviour cloning with the
//!   cross-entropy objective). The modulator is not used in this phase.
//! * **Phase 2 — modulated REINFORCE**: the policy samples actions from the
//!   modulated distribution `p̂ ⊙ π_θ(a|s)`, the environment returns the
//!   EPE/PV-band improvement reward of Eq. (3), and parameters are updated
//!   with the REINFORCE gradient computed on the *unmodulated* policy output,
//!   exactly as the paper prescribes.

use crate::engine::{action_to_move, move_to_action, CamoEngine};
use camo_baselines::CalibreLikeOpc;
use camo_geometry::{Clip, Coord};
use camo_litho::LithoSimulator;
use camo_nn::{cross_entropy_grad, log_softmax, Optimizer, Sgd};
use camo_rl::{reinforce_coefficients, Trajectory};

/// Per-epoch statistics produced by training.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainingReport {
    /// Mean behaviour-cloning loss per Phase-1 epoch.
    pub imitation_losses: Vec<f64>,
    /// Total episode reward per Phase-2 epoch (summed over training clips).
    pub rl_rewards: Vec<f64>,
}

impl TrainingReport {
    /// True when Phase-1 made progress (final loss below the first).
    pub fn imitation_improved(&self) -> bool {
        match (self.imitation_losses.first(), self.imitation_losses.last()) {
            (Some(first), Some(last)) => last <= first,
            _ => false,
        }
    }
}

/// Runs the two-phase training procedure against a set of training clips.
#[derive(Debug, Clone)]
pub struct CamoTrainer {
    teacher: CalibreLikeOpc,
}

impl CamoTrainer {
    /// Creates a trainer whose Phase-1 teacher uses the engine's OPC
    /// configuration.
    pub fn new(engine: &CamoEngine) -> Self {
        Self {
            teacher: CalibreLikeOpc::new(engine.opc_config().clone()),
        }
    }

    /// Runs Phase 1 followed by Phase 2 on `clips`, updating the engine's
    /// policy in place.
    pub fn train(
        &mut self,
        engine: &mut CamoEngine,
        clips: &[Clip],
        simulator: &LithoSimulator,
    ) -> TrainingReport {
        let imitation_epochs = engine.config().imitation_epochs;
        let rl_epochs = engine.config().rl_epochs;
        let mut report = TrainingReport::default();
        for _ in 0..imitation_epochs {
            report
                .imitation_losses
                .push(self.imitation_epoch(engine, clips, simulator));
        }
        for _ in 0..rl_epochs {
            report
                .rl_rewards
                .push(self.reinforce_epoch(engine, clips, simulator));
        }
        report
    }

    /// One epoch of behaviour cloning; returns the mean cross-entropy loss.
    pub fn imitation_epoch(
        &mut self,
        engine: &mut CamoEngine,
        clips: &[Clip],
        simulator: &LithoSimulator,
    ) -> f64 {
        let lr = engine.config().learning_rate;
        let teacher_steps = engine.config().teacher_steps;
        let mut total_loss = 0.0;
        let mut samples = 0usize;
        for clip in clips {
            let mask = engine.opc_config().initial_mask(clip);
            let graph = engine.graph(&mask);
            let mut eval = simulator.evaluator(&mask);
            for _ in 0..teacher_steps {
                let epe = eval.epe();
                let teacher_moves = self.teacher.teacher_moves(&epe);
                let targets: Vec<usize> =
                    teacher_moves.iter().map(|&m| move_to_action(m)).collect();
                let features = engine.node_features(eval.mask());
                let policy = engine.policy_mut();
                let logits = policy.forward(&features, graph.adjacency());
                let n = logits.len().max(1);
                let grads: Vec<Vec<f64>> = logits
                    .iter()
                    .zip(&targets)
                    .map(|(l, &t)| cross_entropy_grad(l, t, 1.0 / n as f64))
                    .collect();
                for (l, &t) in logits.iter().zip(&targets) {
                    total_loss += -log_softmax(l)[t];
                    samples += 1;
                }
                policy.zero_grad();
                policy.backward(&grads);
                let mut optimizer = Sgd::new(lr, 0.0).with_grad_clip(5.0);
                optimizer.step(&mut policy.parameters_mut());
                eval.apply_moves(&teacher_moves);
            }
        }
        if samples == 0 {
            0.0
        } else {
            total_loss / samples as f64
        }
    }

    /// One epoch of modulated REINFORCE; returns the summed episode reward.
    pub fn reinforce_epoch(
        &mut self,
        engine: &mut CamoEngine,
        clips: &[Clip],
        simulator: &LithoSimulator,
    ) -> f64 {
        let mut total = 0.0;
        for clip in clips {
            total += self.reinforce_episode(engine, clip, simulator);
        }
        total
    }

    fn reinforce_episode(
        &mut self,
        engine: &mut CamoEngine,
        clip: &Clip,
        simulator: &LithoSimulator,
    ) -> f64 {
        let lr = engine.config().learning_rate;
        let reward_cfg = engine.config().reward;
        let reinforce_cfg = engine.config().reinforce;
        let max_steps = engine.opc_config().max_steps;

        let mask = engine.opc_config().initial_mask(clip);
        let graph = engine.graph(&mask);
        let mut session = simulator.evaluator(&mask);
        let mut eval = session.evaluate();
        let mut trajectory = Trajectory::new();
        // Per step: the features observed and the actions taken.
        let mut steps: Vec<(Vec<Vec<f64>>, Vec<usize>)> = Vec::new();

        for _ in 0..max_steps {
            if engine.opc_config().early_exit(eval.mean_epe()) {
                break;
            }
            let features = engine.node_features(session.mask());
            let decisions = engine.decide(session.mask(), &graph, &eval.epe, true);
            let actions: Vec<usize> = decisions.iter().map(|(a, _)| *a).collect();
            let moves: Vec<Coord> = actions.iter().map(|&a| action_to_move(a)).collect();
            session.apply_moves(&moves);
            let next = session.evaluate();
            let reward = reward_cfg.reward(
                eval.total_epe(),
                next.total_epe(),
                eval.pv_band,
                next.pv_band,
            );
            trajectory.push(reward);
            steps.push((features, actions));
            eval = next;
        }

        // REINFORCE update on the original (unmodulated) policy outputs.
        let coefficients = reinforce_coefficients(&trajectory, &reinforce_cfg);
        let policy = engine.policy_mut();
        policy.zero_grad();
        for ((features, actions), &coeff) in steps.iter().zip(&coefficients) {
            let logits = policy.forward(features, graph.adjacency());
            let n = logits.len().max(1) as f64;
            let grads: Vec<Vec<f64>> = logits
                .iter()
                .zip(actions)
                .map(|(l, &a)| cross_entropy_grad(l, a, coeff / n))
                .collect();
            policy.backward(&grads);
        }
        let mut optimizer = Sgd::new(lr, 0.0).with_grad_clip(5.0);
        optimizer.step(&mut policy.parameters_mut());
        trajectory.total_reward()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CamoConfig;
    use camo_baselines::OpcConfig;
    use camo_geometry::Rect;
    use camo_litho::{LithoConfig, LithoSimulator};

    fn training_clips() -> Vec<Clip> {
        let mut a = Clip::new(Rect::new(0, 0, 800, 800));
        a.add_target(Rect::new(365, 365, 435, 435).to_polygon());
        let mut b = Clip::new(Rect::new(0, 0, 800, 800));
        b.add_target(Rect::new(265, 365, 335, 435).to_polygon());
        b.add_target(Rect::new(465, 365, 535, 435).to_polygon());
        vec![a, b]
    }

    fn fast_engine() -> CamoEngine {
        let mut opc = OpcConfig::via_layer();
        opc.max_steps = 2;
        CamoEngine::new(opc, CamoConfig::fast())
    }

    #[test]
    fn imitation_loss_decreases_over_epochs() {
        let sim = LithoSimulator::new(LithoConfig::fast());
        let mut engine = fast_engine();
        let mut trainer = CamoTrainer::new(&engine);
        let clips = training_clips();
        let mut losses = Vec::new();
        for _ in 0..4 {
            losses.push(trainer.imitation_epoch(&mut engine, &clips, &sim));
        }
        assert!(
            losses.last().expect("non-empty") < losses.first().expect("non-empty"),
            "imitation loss should decrease: {losses:?}"
        );
    }

    #[test]
    fn full_training_produces_report() {
        let sim = LithoSimulator::new(LithoConfig::fast());
        let mut engine = fast_engine();
        let mut trainer = CamoTrainer::new(&engine);
        let report = trainer.train(&mut engine, &training_clips(), &sim);
        assert_eq!(
            report.imitation_losses.len(),
            engine.config().imitation_epochs
        );
        assert_eq!(report.rl_rewards.len(), engine.config().rl_epochs);
        assert!(report.imitation_improved());
        assert!(report.rl_rewards.iter().all(|r| r.is_finite()));
    }

    #[test]
    fn reinforce_epoch_runs_without_modulator() {
        let sim = LithoSimulator::new(LithoConfig::fast());
        let mut opc = OpcConfig::via_layer();
        opc.max_steps = 2;
        let mut engine = CamoEngine::new(opc, CamoConfig::fast().without_modulator());
        let mut trainer = CamoTrainer::new(&engine);
        let reward = trainer.reinforce_epoch(&mut engine, &training_clips(), &sim);
        assert!(reward.is_finite());
    }
}
