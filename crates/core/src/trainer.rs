//! Two-phase CAMO training (Algorithm 1 of the paper).
//!
//! * **Phase 1 — imitation**: the policy mimics per-step movements of the
//!   Calibre-like teacher on the training clips (behaviour cloning with the
//!   cross-entropy objective). The modulator is not used in this phase.
//! * **Phase 2 — modulated REINFORCE**: the policy samples actions from the
//!   modulated distribution `p̂ ⊙ π_θ(a|s)`, the environment returns the
//!   EPE/PV-band improvement reward of Eq. (3), and parameters are updated
//!   with the REINFORCE gradient computed on the *unmodulated* policy output,
//!   exactly as the paper prescribes.
//!
//! # Epoch structure and determinism
//!
//! Each epoch evaluates every clip's episode against the **same frozen
//! policy snapshot** and applies a single parameter update from the sum of
//! the per-episode gradients, reduced in clip order. Episodes are therefore
//! independent of one another: [`CamoTrainer::imitation_episode`] and
//! [`CamoTrainer::reinforce_episode`] take `&self` plus an immutable engine
//! and may run concurrently (the `camo-runtime` crate does exactly that),
//! while [`CamoTrainer::finish_imitation_epoch`] /
//! [`CamoTrainer::finish_reinforce_epoch`] perform the fixed-order
//! reduction and update. Stochastic action sampling draws from a generator
//! derived per episode from `(config.seed, epoch, clip_index)` — see
//! [`CamoConfig::seed`](crate::CamoConfig) — so epoch results are
//! bit-identical however the episodes are scheduled, while successive
//! epochs still explore fresh streams.
//!
//! Every episode opens its evaluator session through the one shared
//! `&LithoSimulator`: the simulator's immutable
//! [`camo_litho::LithoContext`] (kernel taps derived once per
//! configuration) and its workspace pool are common to the whole training
//! run, so concurrent episodes borrow shared state instead of rebuilding
//! per-episode simulation setup — a training run on `T` threads holds at
//! most `T` workspaces regardless of epoch or clip count.

use crate::engine::{action_to_move, move_to_action, CamoEngine};
use camo_baselines::CalibreLikeOpc;
use camo_geometry::{Clip, Coord};
use camo_litho::LithoSimulator;
use camo_nn::{cross_entropy_grad, log_softmax, Optimizer, Sgd};
use camo_rl::{episode_rng, reinforce_coefficients, Trajectory};

/// Per-epoch statistics produced by training.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainingReport {
    /// Mean behaviour-cloning loss per Phase-1 epoch.
    pub imitation_losses: Vec<f64>,
    /// Total episode reward per Phase-2 epoch (summed over training clips).
    pub rl_rewards: Vec<f64>,
}

impl TrainingReport {
    /// True when Phase-1 made progress (final loss below the first).
    pub fn imitation_improved(&self) -> bool {
        match (self.imitation_losses.first(), self.imitation_losses.last()) {
            (Some(first), Some(last)) => last <= first,
            _ => false,
        }
    }
}

/// The gradient contribution of one training episode, computed against a
/// frozen snapshot of the engine's policy.
#[derive(Debug, Clone)]
pub struct EpisodeGrads {
    /// One flat gradient per policy parameter tensor, in
    /// [`CamoPolicy::parameters_mut`](crate::CamoPolicy::parameters_mut)
    /// order.
    pub grads: Vec<Vec<f64>>,
    /// Summed cross-entropy loss (imitation) or total episode reward
    /// (REINFORCE).
    pub metric: f64,
    /// Number of (segment, step) samples behind an imitation `metric`; 0
    /// for REINFORCE episodes.
    pub samples: usize,
}

/// Runs the two-phase training procedure against a set of training clips.
#[derive(Debug, Clone)]
pub struct CamoTrainer {
    teacher: CalibreLikeOpc,
}

impl CamoTrainer {
    /// Creates a trainer whose Phase-1 teacher uses the engine's OPC
    /// configuration.
    pub fn new(engine: &CamoEngine) -> Self {
        Self {
            teacher: CalibreLikeOpc::new(engine.opc_config().clone()),
        }
    }

    /// Runs Phase 1 followed by Phase 2 on `clips`, updating the engine's
    /// policy in place.
    pub fn train(
        &mut self,
        engine: &mut CamoEngine,
        clips: &[Clip],
        simulator: &LithoSimulator,
    ) -> TrainingReport {
        let imitation_epochs = engine.config().imitation_epochs;
        let rl_epochs = engine.config().rl_epochs;
        let mut report = TrainingReport::default();
        for _ in 0..imitation_epochs {
            report
                .imitation_losses
                .push(self.imitation_epoch(engine, clips, simulator));
        }
        for epoch in 0..rl_epochs {
            report
                .rl_rewards
                .push(self.reinforce_epoch_at(engine, clips, simulator, epoch));
        }
        report
    }

    /// One epoch of behaviour cloning; returns the mean cross-entropy loss.
    pub fn imitation_epoch(
        &mut self,
        engine: &mut CamoEngine,
        clips: &[Clip],
        simulator: &LithoSimulator,
    ) -> f64 {
        let episodes: Vec<EpisodeGrads> = clips
            .iter()
            .map(|clip| self.imitation_episode(engine, clip, simulator))
            .collect();
        Self::finish_imitation_epoch(engine, &episodes)
    }

    /// One epoch of modulated REINFORCE (as epoch 0); returns the summed
    /// episode reward. Multi-epoch schedules should use
    /// [`Self::reinforce_epoch_at`] so each epoch explores fresh streams.
    pub fn reinforce_epoch(
        &mut self,
        engine: &mut CamoEngine,
        clips: &[Clip],
        simulator: &LithoSimulator,
    ) -> f64 {
        self.reinforce_epoch_at(engine, clips, simulator, 0)
    }

    /// One epoch of modulated REINFORCE with episode streams offset by
    /// `epoch`: clip `i` samples from stream `epoch * clips.len() + i`, so
    /// successive epochs explore fresh randomness while any scheduling of
    /// the episodes within an epoch stays bit-identical.
    pub fn reinforce_epoch_at(
        &self,
        engine: &mut CamoEngine,
        clips: &[Clip],
        simulator: &LithoSimulator,
        epoch: usize,
    ) -> f64 {
        let base = epoch * clips.len();
        let episodes: Vec<EpisodeGrads> = clips
            .iter()
            .enumerate()
            .map(|(i, clip)| self.reinforce_episode(engine, base + i, clip, simulator))
            .collect();
        Self::finish_reinforce_epoch(engine, &episodes)
    }

    /// The behaviour-cloning gradient of one clip's teacher trajectory,
    /// against the engine's current (frozen) policy.
    ///
    /// Teacher movements depend only on the measured EPE, never on the
    /// policy, so the trajectory — and hence the gradient — is a pure
    /// function of `(engine, clip)` and can be computed concurrently with
    /// other episodes.
    pub fn imitation_episode(
        &self,
        engine: &CamoEngine,
        clip: &Clip,
        simulator: &LithoSimulator,
    ) -> EpisodeGrads {
        let teacher_steps = engine.config().teacher_steps;
        let mask = engine.opc_config().initial_mask(clip);
        let graph = engine.graph(&mask);
        let mut eval = simulator.evaluator(&mask);
        let mut policy = engine.policy().clone();
        policy.zero_grad();
        let mut total_loss = 0.0;
        let mut samples = 0usize;
        for _ in 0..teacher_steps {
            let epe = eval.epe();
            let teacher_moves = self.teacher.teacher_moves(&epe);
            let targets: Vec<usize> = teacher_moves.iter().map(|&m| move_to_action(m)).collect();
            let features = engine.node_features(eval.mask());
            let logits = policy.forward(&features, graph.adjacency());
            let n = logits.len().max(1);
            let grads: Vec<Vec<f64>> = logits
                .iter()
                .zip(&targets)
                .map(|(l, &t)| cross_entropy_grad(l, t, 1.0 / n as f64))
                .collect();
            for (l, &t) in logits.iter().zip(&targets) {
                total_loss += -log_softmax(l)[t];
                samples += 1;
            }
            policy.backward(&grads);
            eval.apply_moves(&teacher_moves);
        }
        EpisodeGrads {
            grads: extract_grads(&mut policy),
            metric: total_loss,
            samples,
        }
    }

    /// The REINFORCE gradient of one sampled episode on `clip`, against the
    /// engine's current (frozen) policy.
    ///
    /// Actions are drawn from a generator derived from
    /// `(engine.config().seed, episode_stream)` — for per-clip episodes the
    /// stream is `epoch * clips.len() + clip_index` — so the episode is a
    /// pure function of its inputs and can be computed concurrently with
    /// other episodes.
    pub fn reinforce_episode(
        &self,
        engine: &CamoEngine,
        episode_stream: usize,
        clip: &Clip,
        simulator: &LithoSimulator,
    ) -> EpisodeGrads {
        let reward_cfg = engine.config().reward;
        let reinforce_cfg = engine.config().reinforce;
        let max_steps = engine.opc_config().max_steps;
        let mut rng = episode_rng(engine.config().seed, episode_stream as u64);

        let mask = engine.opc_config().initial_mask(clip);
        let graph = engine.graph(&mask);
        let mut session = simulator.evaluator(&mask);
        let mut eval = session.evaluate();
        let mut trajectory = Trajectory::new();
        // Per step: the features observed and the actions taken.
        let mut steps: Vec<(Vec<Vec<f64>>, Vec<usize>)> = Vec::new();

        for _ in 0..max_steps {
            if engine.opc_config().early_exit(eval.mean_epe()) {
                break;
            }
            let features = engine.node_features(session.mask());
            let decisions = engine.decide(session.mask(), &graph, &eval.epe, Some(&mut rng));
            let actions: Vec<usize> = decisions.iter().map(|(a, _)| *a).collect();
            let moves: Vec<Coord> = actions.iter().map(|&a| action_to_move(a)).collect();
            session.apply_moves(&moves);
            let next = session.evaluate();
            let reward = reward_cfg.reward(
                eval.total_epe(),
                next.total_epe(),
                eval.pv_band,
                next.pv_band,
            );
            trajectory.push(reward);
            steps.push((features, actions));
            eval = next;
        }

        // REINFORCE gradient on the original (unmodulated) policy outputs.
        let coefficients = reinforce_coefficients(&trajectory, &reinforce_cfg);
        let mut policy = engine.policy().clone();
        policy.zero_grad();
        for ((features, actions), &coeff) in steps.iter().zip(&coefficients) {
            let logits = policy.forward(features, graph.adjacency());
            let n = logits.len().max(1) as f64;
            let grads: Vec<Vec<f64>> = logits
                .iter()
                .zip(actions)
                .map(|(l, &a)| cross_entropy_grad(l, a, coeff / n))
                .collect();
            policy.backward(&grads);
        }
        EpisodeGrads {
            grads: extract_grads(&mut policy),
            metric: trajectory.total_reward(),
            samples: 0,
        }
    }

    /// Reduces a Phase-1 epoch's episodes in order, applies the update and
    /// returns the mean cross-entropy loss.
    pub fn finish_imitation_epoch(engine: &mut CamoEngine, episodes: &[EpisodeGrads]) -> f64 {
        let (loss, samples) = episodes
            .iter()
            .fold((0.0, 0usize), |(l, s), e| (l + e.metric, s + e.samples));
        Self::apply_epoch_update(engine, episodes);
        if samples == 0 {
            0.0
        } else {
            loss / samples as f64
        }
    }

    /// Reduces a Phase-2 epoch's episodes in order, applies the update and
    /// returns the summed episode reward.
    pub fn finish_reinforce_epoch(engine: &mut CamoEngine, episodes: &[EpisodeGrads]) -> f64 {
        let reward = episodes.iter().map(|e| e.metric).sum();
        Self::apply_epoch_update(engine, episodes);
        reward
    }

    /// Sums the episode gradients **in slice order** into the engine's
    /// policy and takes one clipped SGD step. The fixed reduction order is
    /// what makes parallel epochs bit-identical to serial ones: however the
    /// episodes were computed, the floating-point additions happen in the
    /// same sequence.
    fn apply_epoch_update(engine: &mut CamoEngine, episodes: &[EpisodeGrads]) {
        let lr = engine.config().learning_rate;
        let policy = engine.policy_mut();
        policy.zero_grad();
        let mut params = policy.parameters_mut();
        for episode in episodes {
            assert_eq!(
                episode.grads.len(),
                params.len(),
                "episode gradient layout must match the policy"
            );
            for (param, grad) in params.iter_mut().zip(&episode.grads) {
                for (dst, &src) in param.grad.data_mut().iter_mut().zip(grad) {
                    *dst += src;
                }
            }
        }
        let mut optimizer = Sgd::new(lr, 0.0).with_grad_clip(5.0);
        optimizer.step(&mut params);
    }
}

/// Snapshots a policy's accumulated gradients as flat vectors, in parameter
/// order.
fn extract_grads(policy: &mut crate::CamoPolicy) -> Vec<Vec<f64>> {
    policy
        .parameters_mut()
        .iter()
        .map(|p| p.grad.data().to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CamoConfig;
    use camo_baselines::OpcConfig;
    use camo_geometry::Rect;
    use camo_litho::{LithoConfig, LithoSimulator};

    fn training_clips() -> Vec<Clip> {
        let mut a = Clip::new(Rect::new(0, 0, 800, 800));
        a.add_target(Rect::new(365, 365, 435, 435).to_polygon());
        let mut b = Clip::new(Rect::new(0, 0, 800, 800));
        b.add_target(Rect::new(265, 365, 335, 435).to_polygon());
        b.add_target(Rect::new(465, 365, 535, 435).to_polygon());
        vec![a, b]
    }

    fn fast_engine() -> CamoEngine {
        let mut opc = OpcConfig::via_layer();
        opc.max_steps = 2;
        CamoEngine::new(opc, CamoConfig::fast())
    }

    #[test]
    fn imitation_loss_decreases_over_epochs() {
        let sim = LithoSimulator::new(LithoConfig::fast());
        let mut engine = fast_engine();
        let mut trainer = CamoTrainer::new(&engine);
        let clips = training_clips();
        let mut losses = Vec::new();
        for _ in 0..4 {
            losses.push(trainer.imitation_epoch(&mut engine, &clips, &sim));
        }
        assert!(
            losses.last().expect("non-empty") < losses.first().expect("non-empty"),
            "imitation loss should decrease: {losses:?}"
        );
    }

    #[test]
    fn full_training_produces_report() {
        let sim = LithoSimulator::new(LithoConfig::fast());
        let mut engine = fast_engine();
        let mut trainer = CamoTrainer::new(&engine);
        let report = trainer.train(&mut engine, &training_clips(), &sim);
        assert_eq!(
            report.imitation_losses.len(),
            engine.config().imitation_epochs
        );
        assert_eq!(report.rl_rewards.len(), engine.config().rl_epochs);
        assert!(report.imitation_improved());
        assert!(report.rl_rewards.iter().all(|r| r.is_finite()));
    }

    #[test]
    fn reinforce_epoch_runs_without_modulator() {
        let sim = LithoSimulator::new(LithoConfig::fast());
        let mut opc = OpcConfig::via_layer();
        opc.max_steps = 2;
        let mut engine = CamoEngine::new(opc, CamoConfig::fast().without_modulator());
        let mut trainer = CamoTrainer::new(&engine);
        let reward = trainer.reinforce_epoch(&mut engine, &training_clips(), &sim);
        assert!(reward.is_finite());
    }

    #[test]
    fn episodes_are_pure_functions_of_engine_and_clip() {
        // The same (engine, clip, clip_index) must yield the same gradients
        // no matter how often or in which order episodes are computed —
        // the property the parallel runtime's bit-identity rests on.
        let sim = LithoSimulator::new(LithoConfig::fast());
        let engine = fast_engine();
        let trainer = CamoTrainer::new(&engine);
        let clips = training_clips();
        let a = trainer.reinforce_episode(&engine, 1, &clips[1], &sim);
        let first = trainer.imitation_episode(&engine, &clips[0], &sim);
        let b = trainer.reinforce_episode(&engine, 1, &clips[1], &sim);
        assert_eq!(a.grads, b.grads);
        assert_eq!(a.metric, b.metric);
        let again = trainer.imitation_episode(&engine, &clips[0], &sim);
        assert_eq!(first.grads, again.grads);
    }

    #[test]
    fn epoch_update_sums_episodes_in_order() {
        let sim = LithoSimulator::new(LithoConfig::fast());
        let clips = training_clips();
        let mut by_epoch = fast_engine();
        let trainer = CamoTrainer::new(&by_epoch);
        let episodes: Vec<EpisodeGrads> = clips
            .iter()
            .map(|c| trainer.imitation_episode(&by_epoch, c, &sim))
            .collect();
        // Manually reduce against a second engine and compare parameters.
        let mut manual = fast_engine();
        CamoTrainer::finish_imitation_epoch(&mut manual, &episodes);
        CamoTrainer::finish_imitation_epoch(&mut by_epoch, &episodes);
        let a: Vec<Vec<f64>> = manual
            .policy_mut()
            .parameters_mut()
            .iter()
            .map(|p| p.value.data().to_vec())
            .collect();
        let b: Vec<Vec<f64>> = by_epoch
            .policy_mut()
            .parameters_mut()
            .iter()
            .map(|p| p.value.data().to_vec())
            .collect();
        assert_eq!(a, b);
    }
}
