//! # CAMO: Correlation-Aware Mask Optimization with Modulated RL
//!
//! A Rust reproduction of the CAMO OPC system (Liang et al., DAC 2024).
//! CAMO corrects lithography proximity effects by moving the boundary
//! segments of a target layout, choosing among five movements
//! (−2…+2 nm) per segment per step. Its three distinguishing components, all
//! implemented here, are:
//!
//! 1. **Graph-based feature fusion** ([`graph`], [`policy`]): segments become
//!    nodes of a proximity graph and a GraphSAGE layer fuses each segment's
//!    squish-pattern features with its neighbours'.
//! 2. **Correlation-aware sequential decisions** ([`policy`]): an RNN walks
//!    the node embeddings in boundary order so every decision sees the
//!    context of previously decided segments.
//! 3. **OPC-inspired modulation** ([`modulator`]): a preference vector derived
//!    from each segment's signed EPE through `f(x) = 0.02·x⁴ + 1` multiplies
//!    the policy distribution, biasing exploration toward lithographically
//!    sensible movements and stabilising training.
//!
//! Training follows the paper's two phases ([`trainer`]): behaviour cloning
//! of a Calibre-like teacher, then REINFORCE fine-tuning on the
//! EPE/PV-band improvement reward. Inference ([`engine`]) applies the
//! modulated argmax policy with the paper's early-exit rules, and implements
//! the same [`OpcEngine`](camo_baselines::OpcEngine) interface as the
//! baselines so every experiment harness can swap engines freely.
//!
//! # Quickstart
//!
//! ```
//! use camo::{CamoConfig, CamoEngine};
//! use camo_baselines::{OpcConfig, OpcEngine};
//! use camo_geometry::{Clip, Rect};
//! use camo_litho::{LithoConfig, LithoSimulator};
//!
//! // One 70 nm via in a small clip.
//! let mut clip = Clip::new(Rect::new(0, 0, 800, 800));
//! clip.add_target(Rect::new(365, 365, 435, 435).to_polygon());
//!
//! let simulator = LithoSimulator::new(LithoConfig::fast());
//! let config = CamoConfig::fast();
//! let mut engine = CamoEngine::new(OpcConfig::via_layer(), config);
//! let outcome = engine.optimize(&clip, &simulator);
//! assert!(outcome.total_epe().is_finite());
//! ```

pub mod config;
pub mod engine;
pub mod graph;
pub mod modulator;
pub mod policy;
pub mod trainer;

pub use config::CamoConfig;
pub use engine::CamoEngine;
pub use graph::SegmentGraph;
pub use modulator::Modulator;
pub use policy::CamoPolicy;
pub use trainer::{CamoTrainer, EpisodeGrads, TrainingReport};
