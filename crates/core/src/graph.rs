//! Segment-graph construction.
//!
//! CAMO encodes the fragmented layout as an undirected graph: one node per
//! segment (located at its control point) and an edge whenever two control
//! points are closer than a threshold (250 nm in the paper). The graph is
//! built once per clip from the *target* geometry and stays fixed while the
//! mask evolves; only the node features are refreshed every step.

use camo_geometry::{Coord, Fragments};

/// The proximity graph over a clip's segments.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentGraph {
    adjacency: Vec<Vec<usize>>,
    threshold: Coord,
}

impl SegmentGraph {
    /// Builds the graph from fragmented segments using the given control-point
    /// distance threshold in nm.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive.
    pub fn build(fragments: &Fragments, threshold: Coord) -> Self {
        assert!(threshold > 0, "graph threshold must be positive");
        let points: Vec<_> = fragments
            .segments
            .iter()
            .map(|s| s.control_point())
            .collect();
        let n = points.len();
        let threshold_sq = (threshold as i128) * (threshold as i128);
        let mut adjacency = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if points[i].distance_squared(points[j]) <= threshold_sq {
                    adjacency[i].push(j);
                    adjacency[j].push(i);
                }
            }
        }
        Self {
            adjacency,
            threshold,
        }
    }

    /// Number of nodes (segments).
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(|n| n.len()).sum::<usize>() / 2
    }

    /// The distance threshold used to build the graph, nm.
    pub fn threshold(&self) -> Coord {
        self.threshold
    }

    /// Adjacency list (neighbour indices per node).
    pub fn adjacency(&self) -> &[Vec<usize>] {
        &self.adjacency
    }

    /// Neighbours of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adjacency[v]
    }

    /// Mean node degree (0.0 for an empty graph).
    pub fn mean_degree(&self) -> f64 {
        if self.adjacency.is_empty() {
            0.0
        } else {
            self.adjacency.iter().map(|n| n.len()).sum::<usize>() as f64
                / self.adjacency.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camo_geometry::{Clip, FragmentationParams, Rect};

    fn two_via_fragments(gap: i64) -> Fragments {
        let mut clip = Clip::new(Rect::new(0, 0, 2000, 2000));
        clip.add_target(Rect::new(500, 500, 570, 570).to_polygon());
        clip.add_target(Rect::new(570 + gap, 500, 640 + gap, 570).to_polygon());
        clip.fragment(&FragmentationParams::via_layer())
    }

    #[test]
    fn segments_of_one_via_are_fully_connected() {
        let mut clip = Clip::new(Rect::new(0, 0, 2000, 2000));
        clip.add_target(Rect::new(500, 500, 570, 570).to_polygon());
        let frags = clip.fragment(&FragmentationParams::via_layer());
        let graph = SegmentGraph::build(&frags, 250);
        assert_eq!(graph.node_count(), 4);
        // Control points of a 70 nm via are at most 70 nm apart: complete K4.
        assert_eq!(graph.edge_count(), 6);
        assert!((graph.mean_degree() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn nearby_vias_are_linked_distant_vias_are_not() {
        let close = SegmentGraph::build(&two_via_fragments(60), 250);
        let far = SegmentGraph::build(&two_via_fragments(800), 250);
        // Close pair: edges between the facing segments of different vias.
        assert!(close.edge_count() > far.edge_count());
        // Far pair: only the two intra-via cliques remain.
        assert_eq!(far.edge_count(), 12);
        for v in 0..far.node_count() {
            for &u in far.neighbors(v) {
                assert!(u < far.node_count());
            }
        }
    }

    #[test]
    fn threshold_controls_connectivity() {
        let frags = two_via_fragments(150);
        let tight = SegmentGraph::build(&frags, 100);
        let loose = SegmentGraph::build(&frags, 500);
        assert!(loose.edge_count() > tight.edge_count());
        assert_eq!(tight.threshold(), 100);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let graph = SegmentGraph::build(&two_via_fragments(100), 250);
        for v in 0..graph.node_count() {
            for &u in graph.neighbors(v) {
                assert!(
                    graph.neighbors(u).contains(&v),
                    "edge {v}-{u} not symmetric"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_rejected() {
        let _ = SegmentGraph::build(&two_via_fragments(100), 0);
    }
}
