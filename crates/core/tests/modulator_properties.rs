//! Property-based tests of the modulator's required properties (Section 3.2)
//! and of the segment-graph invariants.

use camo::{Modulator, SegmentGraph};
use camo_geometry::{Clip, FragmentationParams, Rect};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The preference vector is always a probability distribution. (For very
    /// large |EPE| the disfavoured entries underflow to exactly zero, which
    /// is still a valid distribution.)
    #[test]
    fn preference_is_always_a_distribution(epe in -40.0f64..40.0) {
        let m = Modulator::paper_default();
        let p = m.preference(epe);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&v| v.is_finite() && (0.0..=1.0).contains(&v)));
        if epe.abs() < 10.0 {
            prop_assert!(p.iter().all(|&v| v > 0.0));
        }
    }

    /// Property 1 of the paper: the larger |EPE|, the more distinct the
    /// preferences (monotone sharpness), and the preferred direction corrects
    /// the error.
    #[test]
    fn sharpness_is_monotone_in_epe(a in 0.0f64..20.0, b in 0.0f64..20.0) {
        let m = Modulator::paper_default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(m.sharpness(lo) <= m.sharpness(hi) + 1e-9);
    }

    /// The preferred movement always opposes the EPE sign (outward for
    /// under-printing, inward for over-printing) once |EPE| is non-trivial.
    #[test]
    fn preferred_move_corrects_the_error(epe in 1.0f64..40.0, sign in prop::bool::ANY) {
        let m = Modulator::paper_default();
        let signed = if sign { epe } else { -epe };
        let p = m.preference(signed);
        let argmax = p
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        if sign {
            prop_assert_eq!(argmax, 4, "positive EPE must prefer +2 nm: {:?}", p);
        } else {
            prop_assert_eq!(argmax, 0, "negative EPE must prefer -2 nm: {:?}", p);
        }
    }

    /// Property 2 of the paper: modulation never destroys normalisation and
    /// leaves near-zero-EPE policies essentially untouched.
    #[test]
    fn modulation_preserves_distributions(
        epe in -30.0f64..30.0,
        raw in prop::collection::vec(0.01f64..1.0, 5),
    ) {
        let m = Modulator::paper_default();
        let sum: f64 = raw.iter().sum();
        let policy: Vec<f64> = raw.iter().map(|v| v / sum).collect();
        let out = m.modulate(epe, &policy);
        prop_assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        if epe.abs() < 0.05 {
            for (a, b) in out.iter().zip(&policy) {
                prop_assert!((a - b).abs() < 1e-3);
            }
        }
    }

    /// Graph construction: adjacency is symmetric, irreflexive and monotone
    /// in the threshold.
    #[test]
    fn graph_invariants(
        gap in 10i64..600,
        threshold_a in 50i64..300,
        threshold_b in 301i64..800,
    ) {
        let mut clip = Clip::new(Rect::new(0, 0, 2000, 2000));
        clip.add_target(Rect::new(500, 500, 570, 570).to_polygon());
        clip.add_target(Rect::new(570 + gap, 500, 640 + gap, 570).to_polygon());
        let frags = clip.fragment(&FragmentationParams::via_layer());
        let small = SegmentGraph::build(&frags, threshold_a);
        let large = SegmentGraph::build(&frags, threshold_b);
        prop_assert!(large.edge_count() >= small.edge_count());
        for g in [&small, &large] {
            for v in 0..g.node_count() {
                prop_assert!(!g.neighbors(v).contains(&v), "self loop at {v}");
                for &u in g.neighbors(v) {
                    prop_assert!(g.neighbors(u).contains(&v));
                }
            }
        }
    }
}
