//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access to crates.io, so this shim
//! vendors the subset of the `criterion` 0.5 API the workspace's benches
//! use: [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`BatchSize`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Timing is a plain
//! mean-of-N wall-clock measurement printed to stdout — adequate for the
//! relative comparisons the benches make, without criterion's statistics.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How batched inputs are grouped between measurements (accepted and
/// ignored: the shim always times one routine invocation at a time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Times closures handed to `bench_function`.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Mean wall-clock time of one iteration, filled by `iter*`.
    mean: Duration,
}

impl Bencher {
    /// Measures `routine` and records the mean iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up round keeps cold-cache noise out of the mean.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }

    /// Measures `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.mean = total / self.samples as u32;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        println!(
            "{}/{}: {:>12.1} ns/iter ({} samples)",
            self.name,
            id,
            bencher.mean.as_nanos() as f64,
            self.sample_size
        );
        self.criterion
            .results
            .push((format!("{}/{}", self.name, id), bencher.mean));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    /// `(benchmark id, mean duration)` pairs measured so far.
    pub results: Vec<(String, Duration)>,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            sample_size: 10,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Declares a benchmark group runner function (as `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main` (as `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_measurement() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].0, "g/noop");
    }
}
