//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this shim
//! vendors the subset of the `proptest` 1.x API the workspace's property
//! tests use: the [`proptest!`] macro, range/tuple/`prop_map`/collection
//! strategies, `prop::bool::ANY`, [`ProptestConfig::with_cases`] and the
//! `prop_assert*` macros. There is no shrinking: a failing case panics with
//! the generated inputs embedded in the assertion message, which is enough
//! to reproduce (generation is deterministic per test name and case index).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is executed with.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic per-test random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates the generator for one `(test name, case index)` pair.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name keeps cases distinct across tests while
        // staying deterministic across runs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            inner: StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5bd1_e995)),
        }
    }

    fn gen_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    fn gen_f64(&mut self) -> f64 {
        self.inner.gen()
    }
}

/// A value generator (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// Type of values produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (as `proptest`'s `prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.gen_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.gen_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i64, i32, u64, u32, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Namespaced strategy constructors (subset of `proptest::prelude::prop`).
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Strategy drawing `true`/`false` with equal probability.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.inner_gen_bool()
            }
        }

        /// Uniform boolean strategy (as `proptest::bool::ANY`).
        pub const ANY: Any = Any;
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Sizes accepted by [`vec()`] (subset of `proptest`'s `SizeRange`).
        pub trait IntoSizeRange {
            /// Draws a concrete length.
            fn draw_len(&self, rng: &mut TestRng) -> usize;
        }

        impl IntoSizeRange for usize {
            fn draw_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl IntoSizeRange for Range<usize> {
            fn draw_len(&self, rng: &mut TestRng) -> usize {
                Strategy::generate(self, rng)
            }
        }

        impl IntoSizeRange for RangeInclusive<usize> {
            fn draw_len(&self, rng: &mut TestRng) -> usize {
                Strategy::generate(self, rng)
            }
        }

        /// Strategy producing `Vec`s of values from an element strategy.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.draw_len(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Generates vectors whose elements come from `element` and whose
        /// length is drawn from `len`.
        pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }
    }
}

impl TestRng {
    fn inner_gen_bool(&mut self) -> bool {
        self.gen_u64() & 1 == 1
    }
}

/// Everything a property-test module needs (as `proptest::prelude`).
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property (panics with the failing inputs).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (i64, i64)> {
        (0i64..10, 20i64..30).prop_map(|(a, b)| (a, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges produce in-range values; tuples and maps compose.
        #[test]
        fn ranges_and_maps_compose(pair in arb_pair(), v in prop::collection::vec(-1.0f64..1.0, 2..5), flag in prop::bool::ANY) {
            prop_assert!((0..10).contains(&pair.0));
            prop_assert!((20..30).contains(&pair.1));
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
            prop_assert!(usize::from(flag) <= 1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = (0i64..100, 0i64..100);
        let a = s.generate(&mut TestRng::for_case("t", 3));
        let b = s.generate(&mut TestRng::for_case("t", 3));
        assert_eq!(a, b);
        let c = s.generate(&mut TestRng::for_case("t", 4));
        assert!(a != c || s.generate(&mut TestRng::for_case("u", 3)) != a);
    }
}
