//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand` 0.8 API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] for `f64`
//! and [`Rng::gen_range`] over integer and float ranges. Streams are
//! deterministic per seed (xoshiro256++ seeded via SplitMix64) but are *not*
//! the same streams as upstream `rand`; nothing in this workspace depends on
//! the exact values, only on determinism and reasonable statistical quality.

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce (subset of `rand`'s `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges that [`Rng::gen_range`] can sample from (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(i64, i32, u64, u32, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws one value of `T` (only `f64`/`u64` are supported by the shim).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors for state initialisation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..500 {
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
            seen_lo |= v == -3;
            seen_hi |= v == 3;
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u = rng.gen_range(0usize..=4);
            assert!(u <= 4);
        }
        assert!(seen_lo && seen_hi, "inclusive bounds never sampled");
    }
}
