//! Property-based tests of the benchmark generators: every generated clip
//! must satisfy the layer's design rules regardless of the seed.

use camo_geometry::Rect;
use camo_workloads::{MetalGenerator, MetalParams, ViaGenerator, ViaParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Via clips: correct via count, vias inside the margin, minimum pitch
    /// respected and SRAFs disjoint from targets for any seed.
    #[test]
    fn via_clips_respect_design_rules(seed in 0u64..10_000, count in 2usize..=6) {
        let params = ViaParams::default();
        let mut generator = ViaGenerator::new(params.clone(), seed);
        let case = generator.generate("P", count);
        let boxes: Vec<Rect> = case.clip.targets().iter().map(|p| p.bounding_box()).collect();
        prop_assert_eq!(boxes.len(), count);
        for (i, a) in boxes.iter().enumerate() {
            prop_assert_eq!(a.width(), params.via_size);
            prop_assert!(case.clip.region().contains_rect(a));
            for b in boxes.iter().skip(i + 1) {
                let dx = (a.center().x - b.center().x).abs();
                let dy = (a.center().y - b.center().y).abs();
                prop_assert!(dx.max(dy) >= params.min_pitch);
            }
        }
        for sraf in case.clip.srafs() {
            prop_assert!(case.clip.region().contains_rect(sraf));
            for t in &boxes {
                prop_assert!(!sraf.intersects(t));
            }
        }
    }

    /// Metal clips: wires stay inside the clip, never overlap, and the
    /// measure-point count grows with the wire count.
    #[test]
    fn metal_clips_respect_design_rules(seed in 0u64..10_000, wires in 1usize..=6) {
        let params = MetalParams::default();
        let mut generator = MetalGenerator::new(params.clone(), seed);
        let case = generator.generate_routing("P", wires);
        let boxes: Vec<Rect> = case.clip.targets().iter().map(|p| p.bounding_box()).collect();
        prop_assert!(!boxes.is_empty());
        prop_assert!(boxes.len() <= wires);
        for (i, a) in boxes.iter().enumerate() {
            prop_assert!(case.clip.region().contains_rect(a));
            prop_assert!(a.height() >= params.width_range.0 && a.height() <= params.width_range.1);
            prop_assert!(a.width() >= params.min_length);
            for b in boxes.iter().skip(i + 1) {
                prop_assert!(!a.intersects(b));
            }
        }
        prop_assert!(case.measure_points >= 4 * boxes.len());
    }

    /// Regular metal clips have exactly the requested number of full-width
    /// lines (when they fit) and deterministic measure counts per seed.
    #[test]
    fn regular_metal_clips_are_deterministic(seed in 0u64..10_000, lines in 1usize..=4) {
        let params = MetalParams::default();
        let a = MetalGenerator::new(params.clone(), seed).generate_regular("P", lines);
        let b = MetalGenerator::new(params, seed).generate_regular("P", lines);
        prop_assert_eq!(a.clip.targets().len(), lines);
        prop_assert_eq!(a.measure_points, b.measure_points);
        prop_assert_eq!(a.clip, b.clip);
    }
}
