//! Metal-layer benchmark generation.
//!
//! The paper samples 1.5 µm × 1.5 µm clips from an OpenROAD / NanGate-45
//! layout and adds clips with regular metal patterns. The generator below
//! produces standard-cell-style M2 routing: horizontal tracks on a fixed
//! pitch, wires of 45 nm-class widths with random extents and staggered line
//! ends, plus a "regular" line/space variant. Measure points land every 60 nm
//! on the primary-direction edges, so the per-clip measure-point counts span
//! the same range as Table 2 of the paper.

use camo_geometry::{Clip, FragmentationParams, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the metal-layer generator.
#[derive(Debug, Clone, PartialEq)]
pub struct MetalParams {
    /// Clip side length, nm (the paper uses 1500 nm).
    pub clip_size: i64,
    /// Routing-track pitch, nm.
    pub track_pitch: i64,
    /// Wire width range `[min, max]`, nm.
    pub width_range: (i64, i64),
    /// Minimum wire length, nm.
    pub min_length: i64,
    /// Margin kept free around the clip boundary, nm.
    pub margin: i64,
}

impl Default for MetalParams {
    fn default() -> Self {
        Self {
            clip_size: 1500,
            track_pitch: 140,
            width_range: (50, 70),
            min_length: 150,
            margin: 80,
        }
    }
}

/// One metal-layer benchmark case.
#[derive(Debug, Clone, PartialEq)]
pub struct MetalCase {
    /// The generated clip.
    pub clip: Clip,
    /// Number of EPE measure points under the metal fragmentation rules.
    pub measure_points: usize,
}

impl MetalCase {
    /// Fragmentation parameters appropriate for this case.
    pub fn fragmentation(&self) -> FragmentationParams {
        FragmentationParams::metal_layer()
    }
}

/// Deterministic generator of metal-layer clips.
#[derive(Debug, Clone)]
pub struct MetalGenerator {
    params: MetalParams,
    rng: StdRng,
}

impl MetalGenerator {
    /// Creates a generator with the given parameters and seed.
    pub fn new(params: MetalParams, seed: u64) -> Self {
        Self {
            params,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The generation parameters.
    pub fn params(&self) -> &MetalParams {
        &self.params
    }

    /// Generates a routing-style clip: `wires` horizontal wires distributed
    /// over the available tracks with random extents.
    pub fn generate_routing(&mut self, name: impl Into<String>, wires: usize) -> MetalCase {
        let p = self.params.clone();
        let region = Rect::new(0, 0, p.clip_size, p.clip_size);
        let mut clip = Clip::with_name(region, name);
        let usable = p.clip_size - 2 * p.margin;
        let tracks = (usable / p.track_pitch) as usize;
        let mut placed = 0usize;
        let mut track_order: Vec<usize> = (0..tracks).collect();
        // Shuffle track order deterministically.
        for i in (1..track_order.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            track_order.swap(i, j);
        }
        let mut rects: Vec<Rect> = Vec::new();
        for &t in track_order.iter().cycle().take(tracks * 2) {
            if placed >= wires {
                break;
            }
            let y0 = p.margin + t as i64 * p.track_pitch;
            let width = (self.rng.gen_range(p.width_range.0..=p.width_range.1) / 10) * 10;
            let max_len = p.clip_size - 2 * p.margin;
            let len = (self.rng.gen_range(p.min_length..=max_len) / 10) * 10;
            let x0 = p.margin + (self.rng.gen_range(0..=(max_len - len)) / 10) * 10;
            let cand = Rect::new(x0, y0, x0 + len, y0 + width);
            // Keep wires on distinct tracks from colliding (same track reuse
            // requires a 100 nm end-to-end gap).
            let ok = rects.iter().all(|r| !r.expanded(40).intersects(&cand));
            if ok {
                rects.push(cand);
                placed += 1;
            }
        }
        rects.sort_by_key(|r| (r.y0, r.x0));
        for r in &rects {
            clip.add_target(r.to_polygon());
        }
        Self::finish(clip)
    }

    /// Generates a regular line/space clip: `lines` full-width lines on the
    /// configured pitch (the paper's "clips with regular metal patterns").
    pub fn generate_regular(&mut self, name: impl Into<String>, lines: usize) -> MetalCase {
        let p = self.params.clone();
        let region = Rect::new(0, 0, p.clip_size, p.clip_size);
        let mut clip = Clip::with_name(region, name);
        let width = (p.width_range.0 + p.width_range.1) / 2;
        let start_y = p.margin;
        for i in 0..lines {
            let y0 = start_y + i as i64 * p.track_pitch;
            if y0 + width > p.clip_size - p.margin {
                break;
            }
            clip.add_target(
                Rect::new(p.margin, y0, p.clip_size - p.margin, y0 + width).to_polygon(),
            );
        }
        Self::finish(clip)
    }

    fn finish(clip: Clip) -> MetalCase {
        let frags = clip.fragment(&FragmentationParams::metal_layer());
        MetalCase {
            measure_points: frags.measure_points.len(),
            clip,
        }
    }
}

/// A small training set of metal clips (routing plus regular patterns).
pub fn metal_training_set() -> Vec<MetalCase> {
    let mut generator = MetalGenerator::new(MetalParams::default(), 4545);
    let mut cases = Vec::new();
    for (i, wires) in [3usize, 4, 5, 6].into_iter().enumerate() {
        cases.push(generator.generate_routing(format!("MT{}", i + 1), wires));
    }
    cases.push(generator.generate_regular("MT5", 4));
    cases
}

/// The 10-clip metal test set (M1–M10), spanning the same measure-point range
/// as Table 2 of the paper (small regular clip M8, large routing clip M10).
pub fn metal_test_set() -> Vec<MetalCase> {
    let mut generator = MetalGenerator::new(MetalParams::default(), 7);
    let spec: [(usize, bool); 10] = [
        (3, false), // M1
        (4, false), // M2
        (4, false), // M3
        (5, false), // M4
        (5, false), // M5
        (6, false), // M6
        (6, false), // M7
        (1, true),  // M8 — small regular clip
        (3, true),  // M9 — regular lines
        (7, false), // M10
    ];
    spec.iter()
        .enumerate()
        .map(|(i, &(n, regular))| {
            let name = format!("M{}", i + 1);
            if regular {
                generator.generate_regular(name, n)
            } else {
                generator.generate_routing(name, n)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_set_has_ten_named_cases() {
        let cases = metal_test_set();
        assert_eq!(cases.len(), 10);
        assert_eq!(cases[0].clip.name(), "M1");
        assert_eq!(cases[9].clip.name(), "M10");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = metal_test_set();
        let b = metal_test_set();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.clip, y.clip);
            assert_eq!(x.measure_points, y.measure_points);
        }
    }

    #[test]
    fn measure_point_counts_span_table2_range() {
        let cases = metal_test_set();
        let counts: Vec<usize> = cases.iter().map(|c| c.measure_points).collect();
        // M8 (regular, 1 line) must be the smallest; M10 among the largest.
        let min = *counts.iter().min().expect("non-empty");
        assert_eq!(
            counts[7], min,
            "M8 should have the fewest measure points: {counts:?}"
        );
        assert!(
            counts[9] >= counts[0],
            "M10 should be larger than M1: {counts:?}"
        );
        assert!(
            counts.iter().all(|&c| (10..=220).contains(&c)),
            "{counts:?}"
        );
    }

    #[test]
    fn wires_do_not_overlap() {
        for case in metal_test_set() {
            let boxes: Vec<Rect> = case
                .clip
                .targets()
                .iter()
                .map(|p| p.bounding_box())
                .collect();
            for (i, a) in boxes.iter().enumerate() {
                for b in boxes.iter().skip(i + 1) {
                    assert!(
                        !a.intersects(b),
                        "{} overlaps {} in {}",
                        a,
                        b,
                        case.clip.name()
                    );
                }
            }
        }
    }

    #[test]
    fn wires_stay_inside_clip() {
        for case in metal_test_set().iter().chain(&metal_training_set()) {
            for poly in case.clip.targets() {
                assert!(case.clip.region().contains_rect(&poly.bounding_box()));
            }
        }
    }

    #[test]
    fn regular_clips_have_full_width_lines() {
        let mut generator = MetalGenerator::new(MetalParams::default(), 1);
        let case = generator.generate_regular("R", 3);
        assert_eq!(case.clip.targets().len(), 3);
        let p = MetalParams::default();
        for poly in case.clip.targets() {
            assert_eq!(poly.bounding_box().width(), p.clip_size - 2 * p.margin);
        }
    }

    #[test]
    fn training_set_is_generated() {
        let cases = metal_training_set();
        assert_eq!(cases.len(), 5);
        assert!(cases.iter().all(|c| !c.clip.targets().is_empty()));
    }
}
