//! Benchmark layout generators for CAMO-RS.
//!
//! The CAMO paper evaluates on two benchmark suites that are not publicly
//! redistributable:
//!
//! * **Via layer** — 2 µm × 2 µm clips containing 2–6 vias of 70 nm × 70 nm
//!   (from Liu et al., TODAES'20), with SRAFs inserted by Calibre. The
//!   training set has 11 clips (2–5 vias), the test set 13 clips (2–6 vias).
//! * **Metal layer** — 1.5 µm × 1.5 µm clips sampled from an OpenROAD /
//!   NanGate-45 layout plus regular metal patterns, with EPE measure points
//!   every 60 nm along primary-direction edges.
//!
//! This crate generates synthetic equivalents with the same geometry
//! statistics (feature sizes, counts, spacings, measure-point densities), so
//! every experiment in the paper can be exercised end-to-end. Generation is
//! deterministic given the benchmark seed.
//!
//! Beyond the paper's single-clip suites, [`layout`] generates **multi-tile
//! layouts** — regions several clips wide, densely populated with vias —
//! the workload `camo_litho::tiling` and the batch runtime sweep as grids
//! of overlapping tiles, and [`requests`] generates deterministic
//! **request streams** (mixed optimize/evaluate/sweep/layout traffic) for
//! the serving front-end's load generator and CI smoke.
//!
//! # Example
//!
//! ```
//! use camo_workloads::{via_test_set, metal_test_set};
//!
//! let vias = via_test_set();
//! assert_eq!(vias.len(), 13);
//! assert_eq!(vias[0].clip.name(), "V1");
//!
//! let metals = metal_test_set();
//! assert_eq!(metals.len(), 10);
//! ```

pub mod layout;
pub mod metal;
pub mod requests;
pub mod via;

pub use layout::{generate_layout, layout_test_set, LayoutCase, LayoutParams};
pub use metal::{metal_test_set, metal_training_set, MetalCase, MetalGenerator, MetalParams};
pub use requests::{
    multi_config_stream, request_stream, RequestStreamParams, ServeCase, TaggedCase,
};
pub use via::{via_test_set, via_training_set, ViaCase, ViaGenerator, ViaParams};
