//! Multi-tile layout benchmark generation.
//!
//! The via and metal suites match the paper's single-clip benchmarks
//! (2 µm / 1.5 µm windows). Layout cases are the workload the tiler and the
//! batch runtime exist for: one region several times larger than a clip,
//! densely populated with vias on a jittered grid, meant to be swept as a
//! grid of overlapping tiles (`camo_litho::tiling`) rather than simulated
//! in one piece. Generation is deterministic given the seed.

use camo_geometry::{Clip, Coord, FragmentationParams, MaskState, Rect};
use camo_litho::{insert_srafs, SrafRules};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the layout generator.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutParams {
    /// Layout side length, nm (several clip-sized tiles per side).
    pub layout_size: Coord,
    /// Via side length, nm.
    pub via_size: Coord,
    /// Placement-grid cell size, nm: at most one via per cell, so the
    /// density stays layout-like and the minimum pitch is implicit.
    pub cell_size: Coord,
    /// Fraction of cells populated, in percent (0–100).
    pub fill_percent: u32,
    /// Margin kept free around the layout boundary, nm.
    pub margin: Coord,
    /// Whether SRAFs are inserted.
    pub with_srafs: bool,
}

impl Default for LayoutParams {
    fn default() -> Self {
        Self {
            layout_size: 6000,
            via_size: 70,
            cell_size: 400,
            fill_percent: 45,
            margin: 200,
            with_srafs: false,
        }
    }
}

impl LayoutParams {
    /// A small layout (still multi-tile at the default litho configuration)
    /// for CI smoke runs.
    pub fn smoke() -> Self {
        Self {
            layout_size: 3000,
            ..Self::default()
        }
    }
}

/// One generated layout case.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutCase {
    /// The layout clip (targets plus optional SRAFs).
    pub clip: Clip,
    /// Number of vias placed.
    pub via_count: usize,
}

impl LayoutCase {
    /// Fragmentation parameters appropriate for this case.
    pub fn fragmentation(&self) -> FragmentationParams {
        FragmentationParams::via_layer()
    }

    /// The layout as a zero-offset mask, ready for tiling/evaluation.
    pub fn initial_mask(&self) -> MaskState {
        MaskState::from_clip(&self.clip, &self.fragmentation())
    }
}

/// Generates one layout: cells of a placement grid are filled with
/// probability `fill_percent`, each via jittered inside its cell on a 10 nm
/// grid. Deterministic for a given `(params, seed)`.
pub fn generate_layout(name: impl Into<String>, params: &LayoutParams, seed: u64) -> LayoutCase {
    let p = params;
    assert!(p.layout_size > 2 * p.margin, "margin swallows the layout");
    assert!(p.cell_size > p.via_size, "cells must fit a via");
    let region = Rect::new(0, 0, p.layout_size, p.layout_size);
    let mut clip = Clip::with_name(region, name);
    let mut rng = StdRng::seed_from_u64(seed);

    let usable = p.layout_size - 2 * p.margin;
    let cells = (usable / p.cell_size).max(1);
    let jitter_range = p.cell_size - p.via_size;
    let mut via_count = 0;
    for gy in 0..cells {
        for gx in 0..cells {
            if rng.gen_range(0..100u32) >= p.fill_percent {
                continue;
            }
            // Snap to a 10 nm placement grid like real via layers.
            let jx = (rng.gen_range(0..jitter_range) / 10) * 10;
            let jy = (rng.gen_range(0..jitter_range) / 10) * 10;
            let x = p.margin + gx * p.cell_size + jx;
            let y = p.margin + gy * p.cell_size + jy;
            clip.add_target(Rect::new(x, y, x + p.via_size, y + p.via_size).to_polygon());
            via_count += 1;
        }
    }
    if p.with_srafs {
        for s in insert_srafs(&clip, &SrafRules::default()) {
            clip.add_sraf(s);
        }
    }
    LayoutCase { clip, via_count }
}

/// The standard layout benchmark set: three deterministic layouts of
/// increasing density.
pub fn layout_test_set() -> Vec<LayoutCase> {
    [(1, 30u32), (2, 45), (3, 60)]
        .iter()
        .map(|&(i, fill)| {
            let params = LayoutParams {
                fill_percent: fill,
                ..LayoutParams::default()
            };
            generate_layout(format!("L{i}"), &params, 9000 + i as u64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use camo_litho::{LithoConfig, Tiler};

    #[test]
    fn generation_is_deterministic() {
        let a = generate_layout("L", &LayoutParams::default(), 42);
        let b = generate_layout("L", &LayoutParams::default(), 42);
        assert_eq!(a.clip, b.clip);
        let c = generate_layout("L", &LayoutParams::default(), 43);
        assert_ne!(a.clip, c.clip, "different seeds must differ");
    }

    #[test]
    fn layouts_are_genuinely_multi_tile() {
        for case in layout_test_set() {
            assert!(case.via_count > 10, "layouts should be dense");
            let (cols, rows) = Tiler::new(1500).grid(case.clip.region(), &LithoConfig::default());
            assert!(cols * rows >= 16, "a layout must span many tiles");
        }
    }

    #[test]
    fn vias_respect_margin_and_cells() {
        let params = LayoutParams::default();
        let case = generate_layout("L", &params, 7);
        for t in case.clip.targets() {
            let b = t.bounding_box();
            assert_eq!(b.width(), params.via_size);
            assert!(b.x0 >= params.margin && b.y0 >= params.margin);
            assert!(b.x1 <= params.layout_size - params.margin + params.cell_size);
        }
        // One via per cell keeps a guaranteed pitch: neighbours in adjacent
        // cells stay at least a snapped jitter step apart edge to edge.
        let boxes: Vec<Rect> = case
            .clip
            .targets()
            .iter()
            .map(|t| t.bounding_box())
            .collect();
        for (i, a) in boxes.iter().enumerate() {
            for b in boxes.iter().skip(i + 1) {
                let dx = (a.center().x - b.center().x).abs();
                let dy = (a.center().y - b.center().y).abs();
                assert!(
                    dx.max(dy) >= params.via_size + 10,
                    "vias too close: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn smoke_params_produce_a_small_layout() {
        let case = generate_layout("S", &LayoutParams::smoke(), 1);
        assert_eq!(case.clip.region().width(), 3000);
        assert!(case.via_count > 0);
    }
}
