//! Serving-workload generation: deterministic request streams.
//!
//! A long-lived OPC server is exercised with *traffic*, not with one batch:
//! interleaved single-clip optimizations, evaluation probes, whole-suite
//! sweeps and layout-scale tiled evaluations, arriving in an order that
//! mixes cheap and expensive work. [`request_stream`] generates such a
//! stream deterministically from a seed, drawing clips from the paper's via
//! test suite and layouts from [`crate::layout`], so a load generator and an
//! offline verifier can reproduce the exact same request sequence and
//! compare results bit for bit.

use crate::layout::LayoutParams;
use crate::via::via_test_set;
use camo_geometry::{Clip, Coord};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated serving request, independent of any wire format.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeCase {
    /// Optimise one clip.
    Optimize {
        /// The target clip.
        clip: Clip,
    },
    /// Evaluate one clip's initial mask at a uniform outward bias.
    Evaluate {
        /// The target clip.
        clip: Clip,
        /// Uniform outward bias applied before evaluation, nm.
        bias: Coord,
    },
    /// Optimise a set of named cases as one sweep.
    Sweep {
        /// `(name, clip)` pairs, in case order.
        cases: Vec<(String, Clip)>,
    },
    /// Tiled evaluation of a generated layout.
    Layout {
        /// Layout-generator parameters.
        params: LayoutParams,
        /// Layout-generator seed.
        seed: u64,
        /// Requested tile core size, nm.
        tile_nm: Coord,
    },
}

impl ServeCase {
    /// Short kind tag, for logs and summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Optimize { .. } => "optimize",
            Self::Evaluate { .. } => "evaluate",
            Self::Sweep { .. } => "sweep",
            Self::Layout { .. } => "layout",
        }
    }
}

/// Tuning knobs of [`request_stream`].
#[derive(Debug, Clone, PartialEq)]
pub struct RequestStreamParams {
    /// Relative weight of single-clip optimize requests.
    pub optimize_weight: u32,
    /// Relative weight of evaluation probes.
    pub evaluate_weight: u32,
    /// Relative weight of multi-case sweeps.
    pub sweep_weight: u32,
    /// Relative weight of layout-scale requests.
    pub layout_weight: u32,
    /// Number of cases per sweep request.
    pub sweep_cases: usize,
    /// Layout parameters used by layout requests.
    pub layout: LayoutParams,
    /// Tile core size for layout requests, nm.
    pub tile_nm: Coord,
}

impl Default for RequestStreamParams {
    fn default() -> Self {
        Self {
            optimize_weight: 6,
            evaluate_weight: 3,
            sweep_weight: 1,
            layout_weight: 1,
            sweep_cases: 3,
            layout: LayoutParams::smoke(),
            tile_nm: 1500,
        }
    }
}

impl RequestStreamParams {
    /// A cheap stream for CI smoke runs: no layout-scale requests, tiny
    /// sweeps.
    pub fn smoke() -> Self {
        Self {
            layout_weight: 0,
            sweep_cases: 2,
            ..Self::default()
        }
    }

    fn total_weight(&self) -> u32 {
        self.optimize_weight + self.evaluate_weight + self.sweep_weight + self.layout_weight
    }
}

/// Generates `count` requests, deterministic for a given `(params, seed)`.
///
/// Clips cycle through the via test suite in a seed-dependent order;
/// evaluation biases are drawn from the OPC-realistic 0–6 nm range; layout
/// requests use seed-derived layout generator seeds so distinct requests
/// exercise distinct layouts.
///
/// # Panics
///
/// Panics if every weight in `params` is zero.
pub fn request_stream(params: &RequestStreamParams, seed: u64, count: usize) -> Vec<ServeCase> {
    assert!(params.total_weight() > 0, "at least one weight must be set");
    let suite = via_test_set();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_clip = {
        let mut cursor = rng.gen_range(0..suite.len());
        move |rng: &mut StdRng| {
            cursor = (cursor + 1 + rng.gen_range(0..3usize)) % suite.len();
            suite[cursor].clip.clone()
        }
    };
    (0..count)
        .map(|i| {
            let mut pick = rng.gen_range(0..params.total_weight());
            if pick < params.optimize_weight {
                return ServeCase::Optimize {
                    clip: next_clip(&mut rng),
                };
            }
            pick -= params.optimize_weight;
            if pick < params.evaluate_weight {
                return ServeCase::Evaluate {
                    clip: next_clip(&mut rng),
                    bias: rng.gen_range(0..=6),
                };
            }
            pick -= params.evaluate_weight;
            if pick < params.sweep_weight {
                let cases = (0..params.sweep_cases)
                    .map(|j| {
                        let clip = next_clip(&mut rng);
                        (format!("sweep{i}.{j}:{}", clip.name()), clip)
                    })
                    .collect();
                return ServeCase::Sweep { cases };
            }
            ServeCase::Layout {
                params: params.layout.clone(),
                // Masked to 63 bits: serving wire formats carry integers as
                // i64, so generated seeds must stay encodable everywhere.
                seed: (seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)))
                    & (i64::MAX as u64),
                tile_nm: params.tile_nm,
            }
        })
        .collect()
}

/// One request of a multi-configuration stream: the case plus the
/// pixel-size override naming the lithography configuration it runs under.
///
/// A sharded serving tier routes requests by their configuration
/// fingerprint, so a stream that exercises *affinity* must interleave
/// several distinct configurations. The tag is a pixel size (nm) rather
/// than a full configuration because workloads stay wire-format agnostic:
/// the serving layer maps each tag onto its own litho spec (and therefore
/// its own `LithoConfig::fingerprint`).
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedCase {
    /// Pixel-size override (nm) selecting the lithography configuration.
    pub pixel_size: Coord,
    /// The request itself.
    pub case: ServeCase,
}

/// Generates `count` requests spread deterministically over the given
/// pixel-size configurations — the shard-affinity workload: every
/// configuration's requests should land on one shard of a sharded serving
/// tier, and the interleaving makes sure routing is exercised per request,
/// not per connection.
///
/// Configurations are assigned per request from a separate generator
/// derived from the same seed — the underlying case sequence is exactly
/// [`request_stream`]'s, with tags layered on top — so the stream (cases
/// *and* tags) is reproducible from `(params, pixel_sizes, seed)`. Every
/// listed configuration is
/// guaranteed to appear at least once whenever `count >= pixel_sizes.len()`
/// (the first `pixel_sizes.len()` requests cycle through all of them).
///
/// # Panics
///
/// Panics if `pixel_sizes` is empty, contains a non-positive size, or if
/// every weight in `params` is zero.
pub fn multi_config_stream(
    params: &RequestStreamParams,
    pixel_sizes: &[Coord],
    seed: u64,
    count: usize,
) -> Vec<TaggedCase> {
    assert!(
        !pixel_sizes.is_empty(),
        "a multi-config stream needs at least one configuration"
    );
    assert!(
        pixel_sizes.iter().all(|&px| px > 0),
        "pixel sizes must be positive"
    );
    let cases = request_stream(params, seed, count);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xa076_1d64_78bd_642f);
    cases
        .into_iter()
        .enumerate()
        .map(|(i, case)| {
            // Cycle through every configuration first so short streams
            // still cover all of them, then mix freely.
            let pick = if i < pixel_sizes.len() {
                i
            } else {
                rng.gen_range(0..pixel_sizes.len())
            };
            TaggedCase {
                pixel_size: pixel_sizes[pick],
                case,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let p = RequestStreamParams::default();
        let a = request_stream(&p, 7, 32);
        let b = request_stream(&p, 7, 32);
        assert_eq!(a, b);
        let c = request_stream(&p, 8, 32);
        assert_ne!(a, c, "different seeds must differ");
        assert_eq!(a.len(), 32);
    }

    #[test]
    fn default_stream_mixes_request_kinds() {
        let cases = request_stream(&RequestStreamParams::default(), 11, 64);
        let count = |k: &str| cases.iter().filter(|c| c.kind() == k).count();
        assert!(count("optimize") > 0);
        assert!(count("evaluate") > 0);
        assert!(count("sweep") + count("layout") > 0, "rare kinds appear");
    }

    #[test]
    fn smoke_stream_has_no_layout_requests() {
        let cases = request_stream(&RequestStreamParams::smoke(), 3, 64);
        assert!(cases.iter().all(|c| c.kind() != "layout"));
    }

    #[test]
    fn layout_seeds_stay_wire_encodable() {
        let params = RequestStreamParams {
            layout_weight: 10,
            ..RequestStreamParams::default()
        };
        for stream_seed in [0u64, 42, u64::MAX] {
            for case in request_stream(&params, stream_seed, 64) {
                if let ServeCase::Layout { seed, .. } = case {
                    assert!(seed <= i64::MAX as u64, "seed {seed} exceeds i64");
                }
            }
        }
    }

    #[test]
    fn multi_config_streams_are_deterministic_and_cover_every_config() {
        let p = RequestStreamParams::smoke();
        let sizes = [10i64, 12, 15];
        let a = multi_config_stream(&p, &sizes, 21, 24);
        let b = multi_config_stream(&p, &sizes, 21, 24);
        assert_eq!(a, b);
        assert_ne!(a, multi_config_stream(&p, &sizes, 22, 24));
        for &px in &sizes {
            assert!(
                a.iter().any(|t| t.pixel_size == px),
                "configuration px{px} never appears"
            );
        }
        // The underlying case mix is the plain stream: tagging only adds
        // configuration labels, it does not perturb the request sequence.
        let plain = request_stream(&p, 21, 24);
        let untagged: Vec<ServeCase> = a.into_iter().map(|t| t.case).collect();
        assert_eq!(untagged, plain);
    }

    #[test]
    fn evaluate_biases_stay_in_opc_range() {
        let cases = request_stream(&RequestStreamParams::default(), 5, 128);
        for case in &cases {
            if let ServeCase::Evaluate { bias, .. } = case {
                assert!((0..=6).contains(bias));
            }
        }
    }
}
