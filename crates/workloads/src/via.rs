//! Via-layer benchmark generation.

use camo_geometry::{Clip, FragmentationParams, Rect};
use camo_litho::{insert_srafs, SrafRules};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the via-layer generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ViaParams {
    /// Clip side length, nm (the paper uses 2 µm).
    pub clip_size: i64,
    /// Via side length, nm (the paper uses 70 nm).
    pub via_size: i64,
    /// Minimum centre-to-centre spacing between vias, nm.
    pub min_pitch: i64,
    /// Margin kept free around the clip boundary, nm.
    pub margin: i64,
    /// Whether SRAFs are inserted (the paper's via benchmarks include them).
    pub with_srafs: bool,
}

impl Default for ViaParams {
    fn default() -> Self {
        Self {
            clip_size: 2000,
            via_size: 70,
            min_pitch: 250,
            margin: 400,
            with_srafs: true,
        }
    }
}

/// One via-layer benchmark case.
#[derive(Debug, Clone, PartialEq)]
pub struct ViaCase {
    /// The generated clip (targets plus SRAFs).
    pub clip: Clip,
    /// Number of vias in the clip.
    pub via_count: usize,
}

impl ViaCase {
    /// Fragmentation parameters appropriate for this case.
    pub fn fragmentation(&self) -> FragmentationParams {
        FragmentationParams::via_layer()
    }
}

/// Deterministic generator of via-layer clips.
#[derive(Debug, Clone)]
pub struct ViaGenerator {
    params: ViaParams,
    rng: StdRng,
}

impl ViaGenerator {
    /// Creates a generator with the given parameters and seed.
    pub fn new(params: ViaParams, seed: u64) -> Self {
        Self {
            params,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The generation parameters.
    pub fn params(&self) -> &ViaParams {
        &self.params
    }

    /// Generates one clip containing exactly `via_count` vias.
    ///
    /// Vias are placed by rejection sampling on a coarse placement grid with
    /// the configured minimum pitch; generation always succeeds for the
    /// paper's densities (≤ 6 vias in 2 µm²).
    pub fn generate(&mut self, name: impl Into<String>, via_count: usize) -> ViaCase {
        let p = &self.params;
        let region = Rect::new(0, 0, p.clip_size, p.clip_size);
        let mut clip = Clip::with_name(region, name);
        let mut centers: Vec<(i64, i64)> = Vec::new();
        let lo = p.margin;
        let hi = p.clip_size - p.margin;
        let mut guard = 0;
        while centers.len() < via_count {
            guard += 1;
            assert!(guard < 100_000, "via placement failed to converge");
            // Snap to a 10 nm placement grid like real via layers.
            let x = (self.rng.gen_range(lo..hi) / 10) * 10;
            let y = (self.rng.gen_range(lo..hi) / 10) * 10;
            let ok = centers
                .iter()
                .all(|&(cx, cy)| (cx - x).abs().max((cy - y).abs()) >= p.min_pitch);
            if ok {
                centers.push((x, y));
            }
        }
        // Deterministic ordering: sort by (y, x) so the segment order (and
        // therefore the RNN sequence) does not depend on sampling order.
        centers.sort();
        for (x, y) in centers {
            let half = p.via_size / 2;
            clip.add_target(
                Rect::new(
                    x - half,
                    y - half,
                    x - half + p.via_size,
                    y - half + p.via_size,
                )
                .to_polygon(),
            );
        }
        if p.with_srafs {
            for s in insert_srafs(&clip, &SrafRules::default()) {
                clip.add_sraf(s);
            }
        }
        ViaCase { clip, via_count }
    }
}

/// The 11-clip training set of the paper (2–5 vias per clip).
pub fn via_training_set() -> Vec<ViaCase> {
    let counts = [2, 2, 3, 3, 3, 4, 4, 4, 5, 5, 5];
    let mut generator = ViaGenerator::new(ViaParams::default(), 20240);
    counts
        .iter()
        .enumerate()
        .map(|(i, &c)| generator.generate(format!("T{}", i + 1), c))
        .collect()
}

/// The 13-clip test set of the paper (V1–V13, 2–6 vias per clip, matching
/// the via counts of Table 1).
pub fn via_test_set() -> Vec<ViaCase> {
    let counts = [2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 6, 6, 6];
    let mut generator = ViaGenerator::new(ViaParams::default(), 777);
    counts
        .iter()
        .enumerate()
        .map(|(i, &c)| generator.generate(format!("V{}", i + 1), c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_set_matches_table1_counts() {
        let cases = via_test_set();
        assert_eq!(cases.len(), 13);
        let counts: Vec<usize> = cases.iter().map(|c| c.via_count).collect();
        assert_eq!(counts, vec![2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 6, 6, 6]);
        let total: usize = counts.iter().sum();
        assert_eq!(total, 58); // the paper's "Sum" row counts 58 vias
        assert_eq!(cases[0].clip.name(), "V1");
        assert_eq!(cases[12].clip.name(), "V13");
    }

    #[test]
    fn training_set_has_eleven_clips() {
        let cases = via_training_set();
        assert_eq!(cases.len(), 11);
        assert!(cases.iter().all(|c| (2..=5).contains(&c.via_count)));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = via_test_set();
        let b = via_test_set();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.clip, y.clip);
        }
    }

    #[test]
    fn vias_respect_minimum_pitch_and_margin() {
        for case in via_test_set() {
            let boxes: Vec<Rect> = case
                .clip
                .targets()
                .iter()
                .map(|p| p.bounding_box())
                .collect();
            assert_eq!(boxes.len(), case.via_count);
            let params = ViaParams::default();
            for (i, a) in boxes.iter().enumerate() {
                assert_eq!(a.width(), params.via_size);
                assert_eq!(a.height(), params.via_size);
                assert!(a.x0 >= params.margin - params.via_size);
                assert!(a.x1 <= params.clip_size - params.margin + params.via_size);
                for b in boxes.iter().skip(i + 1) {
                    let dx = (a.center().x - b.center().x).abs();
                    let dy = (a.center().y - b.center().y).abs();
                    assert!(dx.max(dy) >= params.min_pitch, "vias too close: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn srafs_present_and_disjoint_from_targets() {
        let cases = via_test_set();
        assert!(cases.iter().all(|c| !c.clip.srafs().is_empty()));
        for case in &cases {
            for sraf in case.clip.srafs() {
                for target in case.clip.targets() {
                    assert!(!sraf.intersects(&target.bounding_box()));
                }
            }
        }
    }

    #[test]
    fn fragmentation_yields_four_segments_per_via() {
        let case = &via_test_set()[4];
        let frags = case.clip.fragment(&case.fragmentation());
        assert_eq!(frags.segments.len(), case.via_count * 4);
    }
}
