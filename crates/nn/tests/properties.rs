//! Property-based tests of the neural-network substrate: softmax identities
//! and gradient correctness under random inputs.

use camo_nn::{cross_entropy_grad, log_softmax, softmax, Linear, RnnStack, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Softmax is a distribution, is shift-invariant, and log-softmax is its
    /// logarithm.
    #[test]
    fn softmax_identities(logits in prop::collection::vec(-20.0f64..20.0, 2..8), shift in -50.0f64..50.0) {
        let p = softmax(&logits);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&v| v >= 0.0));
        let shifted: Vec<f64> = logits.iter().map(|&v| v + shift).collect();
        for (a, b) in softmax(&shifted).iter().zip(&p) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        for (ls, pv) in log_softmax(&logits).iter().zip(&p) {
            prop_assert!((ls - pv.ln()).abs() < 1e-9);
        }
    }

    /// The cross-entropy gradient sums to zero over classes (softmax minus
    /// one-hot) and scales linearly with the coefficient.
    #[test]
    fn cross_entropy_grad_properties(
        logits in prop::collection::vec(-10.0f64..10.0, 3..7),
        coeff in -5.0f64..5.0,
    ) {
        let target = logits.len() / 2;
        let g = cross_entropy_grad(&logits, target, coeff);
        prop_assert!((g.iter().sum::<f64>()).abs() < 1e-9);
        let g1 = cross_entropy_grad(&logits, target, 1.0);
        for (a, b) in g.iter().zip(&g1) {
            prop_assert!((a - coeff * b).abs() < 1e-9);
        }
    }

    /// Linear layers are, in fact, linear: f(ax) = a·f(x) − (a−1)·bias and
    /// f(x + y) + f(0) = f(x) + f(y).
    #[test]
    fn linear_layer_is_affine(
        x in prop::collection::vec(-2.0f64..2.0, 4),
        y in prop::collection::vec(-2.0f64..2.0, 4),
        seed in 0u64..1000,
    ) {
        let layer = Linear::new(4, 3, seed);
        let f = |v: &[f64]| layer.forward_inference(&Tensor::from_vec(v.to_vec(), vec![1, 4])).into_vec();
        let zero = f(&[0.0; 4]);
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let lhs = f(&sum);
        let rhs: Vec<f64> = f(&x)
            .iter()
            .zip(f(&y).iter())
            .zip(&zero)
            .map(|((a, b), z)| a + b - z)
            .collect();
        for (a, b) in lhs.iter().zip(&rhs) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// RNN hidden states stay bounded by 1 in magnitude (tanh) for any input.
    #[test]
    fn rnn_outputs_are_bounded(
        inputs in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 3), 1..6),
        seed in 0u64..1000,
    ) {
        let rnn = RnnStack::new(3, 4, 2, seed);
        let outputs = rnn.forward_sequence_inference(&inputs);
        prop_assert_eq!(outputs.len(), inputs.len());
        for h in outputs {
            prop_assert!(h.iter().all(|v| v.abs() <= 1.0));
        }
    }
}
