//! Softmax, log-softmax and the cross-entropy gradient used by both the
//! behaviour-cloning phase and the REINFORCE update.

use crate::tensor::Tensor;

/// Numerically stable softmax over a 1-D slice.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Numerically stable log-softmax over a 1-D slice.
pub fn log_softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let log_sum: f64 = logits.iter().map(|&v| (v - max).exp()).sum::<f64>().ln() + max;
    logits.iter().map(|&v| v - log_sum).collect()
}

/// Gradient of `-coeff · log softmax(logits)[target]` with respect to the
/// logits: `coeff · (softmax(logits) - onehot(target))`.
///
/// With `coeff = 1` this is the ordinary cross-entropy gradient (behaviour
/// cloning); with `coeff = return` it is the REINFORCE policy-gradient term.
///
/// # Panics
///
/// Panics if `target` is out of range.
pub fn cross_entropy_grad(logits: &[f64], target: usize, coeff: f64) -> Vec<f64> {
    assert!(target < logits.len(), "target index out of range");
    let mut grad = softmax(logits);
    grad[target] -= 1.0;
    for g in &mut grad {
        *g *= coeff;
    }
    grad
}

/// A softmax layer over the last dimension of a `[batch, classes]` tensor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Softmax {
    output_cache: Option<Tensor>,
}

impl Softmax {
    /// Creates a softmax layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward pass on `[batch, classes]`.
    ///
    /// # Panics
    ///
    /// Panics if the input is not 2-D.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape().len(), 2, "Softmax expects a 2-D input");
        let (batch, classes) = (input.shape()[0], input.shape()[1]);
        let mut out = Tensor::zeros(vec![batch, classes]);
        for b in 0..batch {
            let row = &input.data()[b * classes..(b + 1) * classes];
            let p = softmax(row);
            out.data_mut()[b * classes..(b + 1) * classes].copy_from_slice(&p);
        }
        self.output_cache = Some(out.clone());
        out
    }

    /// Backward pass through the softmax Jacobian.
    ///
    /// # Panics
    ///
    /// Panics if `forward` was not called first.
    pub fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let out = self
            .output_cache
            .as_ref()
            .expect("Softmax::backward called before forward");
        let (batch, classes) = (out.shape()[0], out.shape()[1]);
        let mut grad = Tensor::zeros(vec![batch, classes]);
        for b in 0..batch {
            let y = &out.data()[b * classes..(b + 1) * classes];
            let go = &grad_output.data()[b * classes..(b + 1) * classes];
            let dot: f64 = y.iter().zip(go).map(|(a, b)| a * b).sum();
            for c in 0..classes {
                grad.data_mut()[b * classes + c] = y[c] * (go[c] - dot);
            }
        }
        grad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_is_ordered() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[1001.0, 1002.0, 1003.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let logits = [0.5, -1.0, 2.0, 0.0];
        let ls = log_softmax(&logits);
        let p = softmax(&logits);
        for (a, b) in ls.iter().zip(&p) {
            assert!((a - b.ln()).abs() < 1e-12);
        }
    }

    #[test]
    fn cross_entropy_grad_finite_difference() {
        let logits = [0.2, -0.3, 0.7, 0.1, -0.5];
        let target = 2;
        let coeff = 1.7;
        let grad = cross_entropy_grad(&logits, target, coeff);
        let loss = |l: &[f64]| -coeff * log_softmax(l)[target];
        let eps = 1e-6;
        for i in 0..logits.len() {
            let mut lp = logits;
            lp[i] += eps;
            let mut lm = logits;
            lm[i] -= eps;
            let numeric = (loss(&lp) - loss(&lm)) / (2.0 * eps);
            assert!((numeric - grad[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_layer_backward_matches_manual_jacobian() {
        let mut layer = Softmax::new();
        let x = Tensor::from_vec(vec![0.1, 0.5, -0.3], vec![1, 3]);
        let y = layer.forward(&x);
        // Loss = y[0]; gradient wrt logits via finite differences.
        let mut go = Tensor::zeros(vec![1, 3]);
        go.data_mut()[0] = 1.0;
        let g = layer.backward(&go);
        let eps = 1e-6;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let numeric = (softmax(xp.data())[0] - softmax(xm.data())[0]) / (2.0 * eps);
            assert!((numeric - g.data()[i]).abs() < 1e-6);
        }
        assert!((y.data().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
