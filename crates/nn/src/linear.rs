//! Fully-connected (affine) layer.

use crate::init::xavier_uniform;
use crate::tensor::{Param, Tensor};

/// An affine layer `y = x Wᵀ + b` operating on `[batch, in]` inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    weight: Param,
    bias: Param,
    input_cache: Option<Tensor>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Creates a layer mapping `in_features` to `out_features`, with Xavier
    /// initialisation derived from `seed`.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        Self {
            weight: Param::new(xavier_uniform(vec![out_features, in_features], seed)),
            bias: Param::new(Tensor::zeros(vec![out_features])),
            input_cache: None,
            in_features,
            out_features,
        }
    }

    /// Input dimensionality.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output dimensionality.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Forward pass on `[batch, in_features]`; caches the input for backward.
    ///
    /// # Panics
    ///
    /// Panics if the input is not 2-D with the expected width.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape().len(), 2, "Linear expects a 2-D input");
        assert_eq!(input.shape()[1], self.in_features, "input width mismatch");
        self.input_cache = Some(input.clone());
        let mut out = input.matmul(&self.weight.value.transposed());
        let batch = out.shape()[0];
        let of = self.out_features;
        for b in 0..batch {
            for o in 0..of {
                let v = out.at2(b, o) + self.bias.value.data()[o];
                out.set2(b, o, v);
            }
        }
        out
    }

    /// Forward pass without caching (inference only).
    pub fn forward_inference(&self, input: &Tensor) -> Tensor {
        let mut out = input.matmul(&self.weight.value.transposed());
        let batch = out.shape()[0];
        for b in 0..batch {
            for o in 0..self.out_features {
                let v = out.at2(b, o) + self.bias.value.data()[o];
                out.set2(b, o, v);
            }
        }
        out
    }

    /// Backward pass: accumulates weight/bias gradients and returns the
    /// gradient with respect to the input.
    ///
    /// # Panics
    ///
    /// Panics if `forward` was not called first.
    pub fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .input_cache
            .as_ref()
            .expect("Linear::backward called before forward");
        // dW = grad_outputᵀ · input ; db = Σ_batch grad_output ; dx = grad_output · W
        let dw = grad_output.transposed().matmul(input);
        self.weight.grad.add_scaled(&dw, 1.0);
        let batch = grad_output.shape()[0];
        for b in 0..batch {
            for o in 0..self.out_features {
                self.bias.grad.data_mut()[o] += grad_output.at2(b, o);
            }
        }
        grad_output.matmul(&self.weight.value)
    }

    /// Mutable access to the layer's parameters (weight, bias).
    pub fn parameters_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.weight.zero_grad();
        self.bias.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check of the weight gradient.
    #[test]
    fn gradient_check_weights() {
        let mut layer = Linear::new(3, 2, 11);
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5], vec![2, 3]);
        // Loss = sum of outputs.
        let y = layer.forward(&x);
        let grad_out = Tensor::ones(y.shape().to_vec());
        layer.backward(&grad_out);
        let analytic = layer.weight.grad.clone();

        let eps = 1e-6;
        for idx in 0..analytic.len() {
            let mut plus = layer.clone();
            plus.zero_grad();
            plus.weight.value.data_mut()[idx] += eps;
            let lp = plus.forward(&x).sum();
            let mut minus = layer.clone();
            minus.weight.value.data_mut()[idx] -= eps;
            let lm = minus.forward(&x).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic.data()[idx]).abs() < 1e-5,
                "weight grad mismatch at {idx}: {numeric} vs {}",
                analytic.data()[idx]
            );
        }
    }

    #[test]
    fn gradient_check_input() {
        let mut layer = Linear::new(3, 2, 5);
        let x = Tensor::from_vec(vec![0.1, 0.2, 0.3], vec![1, 3]);
        let y = layer.forward(&x);
        let gx = layer.backward(&Tensor::ones(y.shape().to_vec()));
        let eps = 1e-6;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lp = layer.forward_inference(&xp).sum();
            let lm = layer.forward_inference(&xm).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - gx.data()[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn bias_gradient_is_batch_sum() {
        let mut layer = Linear::new(2, 2, 3);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![2, 2]);
        let y = layer.forward(&x);
        layer.backward(&Tensor::ones(y.shape().to_vec()));
        assert_eq!(layer.bias.grad.data(), &[2.0, 2.0]);
    }

    #[test]
    fn inference_matches_training_forward() {
        let mut layer = Linear::new(4, 3, 9);
        let x = Tensor::from_vec(vec![0.1, -0.2, 0.3, 0.4], vec![1, 4]);
        let a = layer.forward(&x);
        let b = layer.forward_inference(&x);
        assert_eq!(a, b);
    }
}
