//! 2-D convolution and average pooling on `[C, H, W]` tensors.

use crate::init::xavier_uniform;
use crate::tensor::{Param, Tensor};

/// A 2-D convolution over a single `[C, H, W]` sample with stride and no
/// padding ("valid" convolution).
#[derive(Debug, Clone, PartialEq)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    input_cache: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0` or `stride == 0`.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        seed: u64,
    ) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be positive"
        );
        Self {
            weight: Param::new(xavier_uniform(
                vec![out_channels, in_channels, kernel, kernel],
                seed,
            )),
            bias: Param::new(Tensor::zeros(vec![out_channels])),
            in_channels,
            out_channels,
            kernel,
            stride,
            input_cache: None,
        }
    }

    /// Output spatial size for an input of side `n`.
    pub fn output_size(&self, n: usize) -> usize {
        if n < self.kernel {
            0
        } else {
            (n - self.kernel) / self.stride + 1
        }
    }

    /// Forward pass on `[C, H, W]`; caches the input for backward.
    ///
    /// # Panics
    ///
    /// Panics if the input is not 3-D `[in_channels, H, W]`.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        self.input_cache = Some(input.clone());
        self.forward_inference(input)
    }

    /// Forward pass without caching.
    pub fn forward_inference(&self, input: &Tensor) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 3, "Conv2d expects a [C, H, W] input");
        assert_eq!(shape[0], self.in_channels, "channel count mismatch");
        let (h, w) = (shape[1], shape[2]);
        let oh = self.output_size(h);
        let ow = self.output_size(w);
        let mut out = Tensor::zeros(vec![self.out_channels, oh, ow]);
        let k = self.kernel;
        let wdat = self.weight.value.data();
        let idat = input.data();
        let odat = out.data_mut();
        for f in 0..self.out_channels {
            let b = self.bias.value.data()[f];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = b;
                    for c in 0..self.in_channels {
                        for ky in 0..k {
                            let iy = oy * self.stride + ky;
                            for kx in 0..k {
                                let ix = ox * self.stride + kx;
                                acc += wdat[((f * self.in_channels + c) * k + ky) * k + kx]
                                    * idat[(c * h + iy) * w + ix];
                            }
                        }
                    }
                    odat[(f * oh + oy) * ow + ox] = acc;
                }
            }
        }
        out
    }

    /// Backward pass: accumulates gradients and returns the input gradient.
    ///
    /// # Panics
    ///
    /// Panics if `forward` was not called first.
    pub fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .input_cache
            .as_ref()
            .expect("Conv2d::backward called before forward")
            .clone();
        let shape = input.shape();
        let (h, w) = (shape[1], shape[2]);
        let oh = self.output_size(h);
        let ow = self.output_size(w);
        let k = self.kernel;
        let mut grad_input = Tensor::zeros(vec![self.in_channels, h, w]);
        let idat = input.data();
        let godat = grad_output.data();
        {
            let wgrad = self.weight.grad.data_mut();
            let bgrad = self.bias.grad.data_mut();
            let gidat = grad_input.data_mut();
            let wdat = self.weight.value.data();
            for f in 0..self.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let go = godat[(f * oh + oy) * ow + ox];
                        if go == 0.0 {
                            continue;
                        }
                        bgrad[f] += go;
                        for c in 0..self.in_channels {
                            for ky in 0..k {
                                let iy = oy * self.stride + ky;
                                for kx in 0..k {
                                    let ix = ox * self.stride + kx;
                                    let widx = ((f * self.in_channels + c) * k + ky) * k + kx;
                                    let iidx = (c * h + iy) * w + ix;
                                    wgrad[widx] += go * idat[iidx];
                                    gidat[iidx] += go * wdat[widx];
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_input
    }

    /// Mutable access to the layer's parameters.
    pub fn parameters_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.weight.zero_grad();
        self.bias.zero_grad();
    }
}

/// Non-overlapping average pooling on `[C, H, W]` tensors.
#[derive(Debug, Clone, PartialEq)]
pub struct AvgPool2d {
    kernel: usize,
    input_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates a pooling layer with a `kernel × kernel` window and equal
    /// stride.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0`.
    pub fn new(kernel: usize) -> Self {
        assert!(kernel > 0, "pool kernel must be positive");
        Self {
            kernel,
            input_shape: None,
        }
    }

    /// Forward pass on `[C, H, W]` (dimensions must be divisible by the
    /// kernel).
    ///
    /// # Panics
    ///
    /// Panics if H or W is not divisible by the kernel size.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        self.input_shape = Some(input.shape().to_vec());
        self.forward_inference(input)
    }

    /// Forward pass without caching.
    pub fn forward_inference(&self, input: &Tensor) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 3, "AvgPool2d expects a [C, H, W] input");
        let (c, h, w) = (shape[0], shape[1], shape[2]);
        assert_eq!(h % self.kernel, 0, "height not divisible by pool kernel");
        assert_eq!(w % self.kernel, 0, "width not divisible by pool kernel");
        let oh = h / self.kernel;
        let ow = w / self.kernel;
        let mut out = Tensor::zeros(vec![c, oh, ow]);
        let norm = 1.0 / (self.kernel * self.kernel) as f64;
        let idat = input.data();
        let odat = out.data_mut();
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for ky in 0..self.kernel {
                        for kx in 0..self.kernel {
                            acc +=
                                idat[(ch * h + oy * self.kernel + ky) * w + ox * self.kernel + kx];
                        }
                    }
                    odat[(ch * oh + oy) * ow + ox] = acc * norm;
                }
            }
        }
        out
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if `forward` was not called first.
    pub fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let shape = self
            .input_shape
            .as_ref()
            .expect("AvgPool2d::backward called before forward")
            .clone();
        let (c, h, w) = (shape[0], shape[1], shape[2]);
        let oh = h / self.kernel;
        let ow = w / self.kernel;
        let norm = 1.0 / (self.kernel * self.kernel) as f64;
        let mut grad_input = Tensor::zeros(shape);
        let gidat = grad_input.data_mut();
        let godat = grad_output.data();
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = godat[(ch * oh + oy) * ow + ox] * norm;
                    for ky in 0..self.kernel {
                        for kx in 0..self.kernel {
                            gidat[(ch * h + oy * self.kernel + ky) * w + ox * self.kernel + kx] +=
                                g;
                        }
                    }
                }
            }
        }
        grad_input
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_output_shape() {
        let conv = Conv2d::new(2, 3, 3, 2, 1);
        assert_eq!(conv.output_size(8), 3);
        let x = Tensor::ones(vec![2, 8, 8]);
        let y = conv.forward_inference(&x);
        assert_eq!(y.shape(), &[3, 3, 3]);
    }

    #[test]
    fn conv_gradient_check_weights() {
        let mut conv = Conv2d::new(1, 1, 2, 1, 3);
        let x = Tensor::from_vec((0..9).map(|i| i as f64 * 0.1).collect(), vec![1, 3, 3]);
        let y = conv.forward(&x);
        conv.backward(&Tensor::ones(y.shape().to_vec()));
        let analytic = conv.weight.grad.clone();
        let eps = 1e-6;
        for idx in 0..analytic.len() {
            let mut plus = conv.clone();
            plus.weight.value.data_mut()[idx] += eps;
            let lp = plus.forward_inference(&x).sum();
            let mut minus = conv.clone();
            minus.weight.value.data_mut()[idx] -= eps;
            let lm = minus.forward_inference(&x).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic.data()[idx]).abs() < 1e-5,
                "conv weight grad mismatch at {idx}"
            );
        }
    }

    #[test]
    fn conv_gradient_check_input() {
        let mut conv = Conv2d::new(1, 2, 2, 1, 9);
        let x = Tensor::from_vec((0..16).map(|i| (i as f64).sin()).collect(), vec![1, 4, 4]);
        let y = conv.forward(&x);
        let gx = conv.backward(&Tensor::ones(y.shape().to_vec()));
        let eps = 1e-6;
        for idx in [0usize, 5, 10, 15] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let numeric = (conv.forward_inference(&xp).sum() - conv.forward_inference(&xm).sum())
                / (2.0 * eps);
            assert!((numeric - gx.data()[idx]).abs() < 1e-5);
        }
    }

    #[test]
    fn avg_pool_averages_blocks() {
        let mut pool = AvgPool2d::new(2);
        let x = Tensor::from_vec((0..16).map(|i| i as f64).collect(), vec![1, 4, 4]);
        let y = pool.forward(&x);
        assert_eq!(y.shape(), &[1, 2, 2]);
        assert_eq!(y.data()[0], (0.0 + 1.0 + 4.0 + 5.0) / 4.0);
        let gx = pool.backward(&Tensor::ones(vec![1, 2, 2]));
        assert!(gx.data().iter().all(|&v| (v - 0.25).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn pool_rejects_indivisible_inputs() {
        let mut pool = AvgPool2d::new(3);
        let x = Tensor::ones(vec![1, 4, 4]);
        let _ = pool.forward(&x);
    }
}
