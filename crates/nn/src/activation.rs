//! Element-wise activation layers.

use crate::tensor::Tensor;

/// Rectified linear unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Relu {
    input_cache: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward pass; caches the input for backward.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        self.input_cache = Some(input.clone());
        input.map(|v| v.max(0.0))
    }

    /// Forward pass without caching.
    pub fn forward_inference(&self, input: &Tensor) -> Tensor {
        input.map(|v| v.max(0.0))
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if `forward` was not called first.
    pub fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .input_cache
            .as_ref()
            .expect("Relu::backward called before forward");
        Tensor::from_vec(
            input
                .data()
                .iter()
                .zip(grad_output.data())
                .map(|(&x, &g)| if x > 0.0 { g } else { 0.0 })
                .collect(),
            input.shape().to_vec(),
        )
    }
}

/// Hyperbolic-tangent activation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Tanh {
    output_cache: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward pass; caches the output for backward.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = input.map(f64::tanh);
        self.output_cache = Some(out.clone());
        out
    }

    /// Forward pass without caching.
    pub fn forward_inference(&self, input: &Tensor) -> Tensor {
        input.map(f64::tanh)
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if `forward` was not called first.
    pub fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let out = self
            .output_cache
            .as_ref()
            .expect("Tanh::backward called before forward");
        Tensor::from_vec(
            out.data()
                .iter()
                .zip(grad_output.data())
                .map(|(&y, &g)| g * (1.0 - y * y))
                .collect(),
            out.shape().to_vec(),
        )
    }
}

/// Logistic sigmoid activation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Sigmoid {
    output_cache: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward pass; caches the output for backward.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = input.map(|v| 1.0 / (1.0 + (-v).exp()));
        self.output_cache = Some(out.clone());
        out
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if `forward` was not called first.
    pub fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let out = self
            .output_cache
            .as_ref()
            .expect("Sigmoid::backward called before forward");
        Tensor::from_vec(
            out.data()
                .iter()
                .zip(grad_output.data())
                .map(|(&y, &g)| g * y * (1.0 - y))
                .collect(),
            out.shape().to_vec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negative_inputs() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], vec![1, 3]);
        assert_eq!(relu.forward(&x).data(), &[0.0, 0.0, 2.0]);
        let g = relu.backward(&Tensor::ones(vec![1, 3]));
        assert_eq!(g.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn tanh_gradient_check() {
        let mut tanh = Tanh::new();
        let x = Tensor::from_vec(vec![0.3, -0.7, 1.2], vec![1, 3]);
        let _ = tanh.forward(&x);
        let g = tanh.backward(&Tensor::ones(vec![1, 3]));
        let eps = 1e-6;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let numeric = (xp.map(f64::tanh).sum() - xm.map(f64::tanh).sum()) / (2.0 * eps);
            assert!((numeric - g.data()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn sigmoid_outputs_in_unit_interval() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(vec![-10.0, 0.0, 10.0], vec![1, 3]);
        let y = s.forward(&x);
        assert!(y.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!((y.data()[1] - 0.5).abs() < 1e-12);
        let g = s.backward(&Tensor::ones(vec![1, 3]));
        // Gradient peaks at the middle input.
        assert!(g.data()[1] > g.data()[0] && g.data()[1] > g.data()[2]);
    }
}
