//! Parameter optimisers.

use crate::tensor::{Param, Tensor};

/// An optimiser updating a set of [`Param`]s from their accumulated
/// gradients.
pub trait Optimizer {
    /// Applies one update step and leaves the gradients untouched (call
    /// [`Param::zero_grad`] separately, usually via the owning module).
    fn step(&mut self, params: &mut [&mut Param]);
}

/// Stochastic gradient descent with optional momentum and gradient clipping.
#[derive(Debug, Clone, PartialEq)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient (0.0 disables momentum).
    pub momentum: f64,
    /// Maximum L2 norm of the full gradient; 0.0 disables clipping.
    pub max_grad_norm: f64,
}

impl Sgd {
    /// Creates a plain SGD optimiser.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate <= 0` or `momentum` is outside `[0, 1)`.
    pub fn new(learning_rate: f64, momentum: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self {
            learning_rate,
            momentum,
            max_grad_norm: 0.0,
        }
    }

    /// Enables gradient-norm clipping.
    pub fn with_grad_clip(mut self, max_norm: f64) -> Self {
        self.max_grad_norm = max_norm;
        self
    }

    fn global_norm(params: &[&mut Param]) -> f64 {
        params
            .iter()
            .map(|p| p.grad.data().iter().map(|g| g * g).sum::<f64>())
            .sum::<f64>()
            .sqrt()
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        let scale = if self.max_grad_norm > 0.0 {
            let norm = Self::global_norm(params);
            if norm > self.max_grad_norm {
                self.max_grad_norm / norm
            } else {
                1.0
            }
        } else {
            1.0
        };
        for p in params.iter_mut() {
            if self.momentum > 0.0 {
                if p.state.is_none() {
                    p.state = Some(Tensor::zeros(p.value.shape().to_vec()));
                }
                let m = self.momentum;
                let velocity = p.state.as_mut().expect("momentum buffer initialised above");
                for ((v, &g), x) in velocity
                    .data_mut()
                    .iter_mut()
                    .zip(p.grad.data())
                    .zip(p.value.data_mut().iter_mut())
                {
                    *v = m * *v + g * scale;
                    *x -= self.learning_rate * *v;
                }
            } else {
                for (x, &g) in p.value.data_mut().iter_mut().zip(p.grad.data()) {
                    *x -= self.learning_rate * g * scale;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_minimises_a_quadratic() {
        // Minimise f(x) = (x - 3)² with gradient 2(x - 3).
        let mut p = Param::new(Tensor::from_vec(vec![0.0], vec![1]));
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..200 {
            p.zero_grad();
            let x = p.value.data()[0];
            p.grad.data_mut()[0] = 2.0 * (x - 3.0);
            opt.step(&mut [&mut p]);
        }
        assert!((p.value.data()[0] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let run = |momentum: f64| {
            let mut p = Param::new(Tensor::from_vec(vec![0.0], vec![1]));
            let mut opt = Sgd::new(0.01, momentum);
            for _ in 0..100 {
                p.zero_grad();
                let x = p.value.data()[0];
                p.grad.data_mut()[0] = 2.0 * (x - 3.0);
                opt.step(&mut [&mut p]);
            }
            (p.value.data()[0] - 3.0).abs()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn gradient_clipping_limits_update() {
        let mut p = Param::new(Tensor::from_vec(vec![0.0], vec![1]));
        p.grad.data_mut()[0] = 1000.0;
        let mut clipped = Sgd::new(1.0, 0.0).with_grad_clip(1.0);
        clipped.step(&mut [&mut p]);
        assert!(
            (p.value.data()[0] + 1.0).abs() < 1e-9,
            "update should be clipped to norm 1"
        );
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_learning_rate_rejected() {
        let _ = Sgd::new(0.0, 0.0);
    }
}
