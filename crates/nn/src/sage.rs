//! GraphSAGE mean-aggregation layer.
//!
//! CAMO fuses each segment's local features with those of its spatial
//! neighbours along the segment graph (Eq. (4) of the paper). This module
//! implements the GraphSAGE formulation with mean aggregation and a combine
//! step `h_v = ReLU(W_self·x_v + W_neigh·mean(x_u) + b)`.

use crate::init::xavier_uniform;
use crate::tensor::{Param, Tensor};

/// One GraphSAGE layer over node features `[n, in]` and an adjacency list.
#[derive(Debug, Clone, PartialEq)]
pub struct SageLayer {
    w_self: Param,
    w_neigh: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cache: Option<SageCache>,
}

#[derive(Debug, Clone, PartialEq)]
struct SageCache {
    input: Tensor,
    aggregated: Tensor,
    pre_activation: Tensor,
    adjacency: Vec<Vec<usize>>,
}

impl SageLayer {
    /// Creates a layer mapping `in_features` to `out_features`.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        Self {
            w_self: Param::new(xavier_uniform(vec![out_features, in_features], seed)),
            w_neigh: Param::new(xavier_uniform(
                vec![out_features, in_features],
                seed.wrapping_add(31),
            )),
            bias: Param::new(Tensor::zeros(vec![out_features])),
            in_features,
            out_features,
            cache: None,
        }
    }

    /// Input feature width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output embedding width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Mean of each node's neighbour features; nodes without neighbours
    /// aggregate to zero.
    fn aggregate(&self, nodes: &Tensor, adjacency: &[Vec<usize>]) -> Tensor {
        let n = nodes.shape()[0];
        let d = nodes.shape()[1];
        let mut agg = Tensor::zeros(vec![n, d]);
        for (v, neigh) in adjacency.iter().enumerate() {
            if neigh.is_empty() {
                continue;
            }
            let scale = 1.0 / neigh.len() as f64;
            for &u in neigh {
                for j in 0..d {
                    let val = agg.at2(v, j) + nodes.at2(u, j) * scale;
                    agg.set2(v, j, val);
                }
            }
        }
        agg
    }

    /// Forward pass: `[n, in] -> [n, out]` with caching for backward.
    ///
    /// # Panics
    ///
    /// Panics if the adjacency list length differs from the node count or any
    /// neighbour index is out of range.
    pub fn forward(&mut self, nodes: &Tensor, adjacency: &[Vec<usize>]) -> Tensor {
        self.forward_common(nodes, adjacency, true)
    }

    /// Forward pass without caching (inference only).
    pub fn forward_inference(&self, nodes: &Tensor, adjacency: &[Vec<usize>]) -> Tensor {
        let mut scratch = self.clone();
        scratch.forward_common(nodes, adjacency, false)
    }

    fn forward_common(&mut self, nodes: &Tensor, adjacency: &[Vec<usize>], cache: bool) -> Tensor {
        let n = nodes.shape()[0];
        assert_eq!(nodes.shape()[1], self.in_features, "input width mismatch");
        assert_eq!(adjacency.len(), n, "adjacency length must equal node count");
        for neigh in adjacency {
            for &u in neigh {
                assert!(u < n, "neighbour index {u} out of range");
            }
        }
        let agg = self.aggregate(nodes, adjacency);
        let self_term = nodes.matmul(&self.w_self.value.transposed());
        let neigh_term = agg.matmul(&self.w_neigh.value.transposed());
        let mut pre = &self_term + &neigh_term;
        for v in 0..n {
            for j in 0..self.out_features {
                let val = pre.at2(v, j) + self.bias.value.data()[j];
                pre.set2(v, j, val);
            }
        }
        let out = pre.map(|v| v.max(0.0));
        if cache {
            self.cache = Some(SageCache {
                input: nodes.clone(),
                aggregated: agg,
                pre_activation: pre,
                adjacency: adjacency.to_vec(),
            });
        }
        out
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient with respect to the input node features.
    ///
    /// # Panics
    ///
    /// Panics if `forward` was not called first.
    pub fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("SageLayer::backward called before forward")
            .clone();
        let n = cache.input.shape()[0];
        // Through the ReLU.
        let mut dpre = grad_output.clone();
        for (g, &p) in dpre.data_mut().iter_mut().zip(cache.pre_activation.data()) {
            if p <= 0.0 {
                *g = 0.0;
            }
        }
        // Parameter gradients.
        let dw_self = dpre.transposed().matmul(&cache.input);
        let dw_neigh = dpre.transposed().matmul(&cache.aggregated);
        self.w_self.grad.add_scaled(&dw_self, 1.0);
        self.w_neigh.grad.add_scaled(&dw_neigh, 1.0);
        for v in 0..n {
            for j in 0..self.out_features {
                self.bias.grad.data_mut()[j] += dpre.at2(v, j);
            }
        }
        // Input gradients: the self path plus the aggregation path.
        let mut grad_input = dpre.matmul(&self.w_self.value);
        let d_agg = dpre.matmul(&self.w_neigh.value);
        for (w, neigh) in cache.adjacency.iter().enumerate() {
            if neigh.is_empty() {
                continue;
            }
            let scale = 1.0 / neigh.len() as f64;
            for &u in neigh {
                for j in 0..self.in_features {
                    let val = grad_input.at2(u, j) + d_agg.at2(w, j) * scale;
                    grad_input.set2(u, j, val);
                }
            }
        }
        grad_input
    }

    /// Mutable access to the layer's parameters.
    pub fn parameters_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w_self, &mut self.w_neigh, &mut self.bias]
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.w_self.zero_grad();
        self.w_neigh.zero_grad();
        self.bias.zero_grad();
    }

    /// Total number of scalar parameters.
    pub fn parameter_count(&self) -> usize {
        self.w_self.len() + self.w_neigh.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_adjacency(n: usize) -> Vec<Vec<usize>> {
        (0..n)
            .map(|i| {
                let mut v = Vec::new();
                if i > 0 {
                    v.push(i - 1);
                }
                if i + 1 < n {
                    v.push(i + 1);
                }
                v
            })
            .collect()
    }

    #[test]
    fn forward_shape_and_isolation() {
        let mut layer = SageLayer::new(4, 3, 5);
        let nodes = Tensor::from_vec((0..12).map(|i| i as f64 * 0.1).collect(), vec![3, 4]);
        let adj = vec![vec![], vec![], vec![]];
        let out = layer.forward(&nodes, &adj);
        assert_eq!(out.shape(), &[3, 3]);
        // With no neighbours, output depends only on the node's own features.
        let mut nodes2 = nodes.clone();
        nodes2.set2(2, 0, 99.0);
        let out2 = layer.forward(&nodes2, &adj);
        for j in 0..3 {
            assert!((out.at2(0, j) - out2.at2(0, j)).abs() < 1e-12);
        }
    }

    #[test]
    fn neighbours_influence_embeddings() {
        let mut layer = SageLayer::new(2, 2, 9);
        let nodes = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], vec![2, 2]);
        let isolated = layer.forward(&nodes, &[vec![], vec![]]);
        let connected = layer.forward(&nodes, &[vec![1], vec![0]]);
        let diff: f64 = isolated
            .data()
            .iter()
            .zip(connected.data())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-9, "neighbour features must change embeddings");
    }

    #[test]
    fn gradient_check_parameters_and_inputs() {
        let mut layer = SageLayer::new(3, 2, 21);
        let nodes = Tensor::from_vec(
            vec![
                0.5, -0.2, 0.3, 0.1, 0.4, -0.6, -0.1, 0.2, 0.7, 0.9, -0.3, 0.0,
            ],
            vec![4, 3],
        );
        let adj = chain_adjacency(4);
        let out = layer.forward(&nodes, &adj);
        let gin = layer.backward(&Tensor::ones(out.shape().to_vec()));
        let loss = |l: &SageLayer, x: &Tensor| l.forward_inference(x, &adj).sum();
        let eps = 1e-6;
        // Parameter gradients (sample a few indices from each matrix).
        for idx in [0usize, 2, 5] {
            let mut plus = layer.clone();
            plus.w_neigh.value.data_mut()[idx] += eps;
            let mut minus = layer.clone();
            minus.w_neigh.value.data_mut()[idx] -= eps;
            let numeric = (loss(&plus, &nodes) - loss(&minus, &nodes)) / (2.0 * eps);
            assert!(
                (numeric - layer.w_neigh.grad.data()[idx]).abs() < 1e-5,
                "w_neigh grad mismatch at {idx}"
            );
        }
        // Input gradients.
        for idx in [0usize, 4, 7, 11] {
            let mut xp = nodes.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = nodes.clone();
            xm.data_mut()[idx] -= eps;
            let numeric = (loss(&layer, &xp) - loss(&layer, &xm)) / (2.0 * eps);
            assert!(
                (numeric - gin.data()[idx]).abs() < 1e-5,
                "input grad mismatch at {idx}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "adjacency length")]
    fn adjacency_length_is_validated() {
        let mut layer = SageLayer::new(2, 2, 1);
        let nodes = Tensor::zeros(vec![3, 2]);
        let _ = layer.forward(&nodes, &[vec![], vec![]]);
    }
}
