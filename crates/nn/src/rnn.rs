//! Multi-layer Elman RNN with backpropagation through time.
//!
//! CAMO processes the node embeddings of one clip as a *sequence*, letting
//! later segments see the context of earlier ones. The paper uses a 3-layer
//! recurrent module with hidden size 64; [`RnnStack`] implements exactly that
//! forward recurrence (Eq. (5) of the paper) together with full BPTT.

use crate::init::xavier_uniform;
use crate::tensor::{Param, Tensor};

/// One recurrent layer: `h_t = tanh(U x_t + W h_{t-1} + b)`.
#[derive(Debug, Clone, PartialEq)]
struct RnnCell {
    u: Param,
    w: Param,
    b: Param,
    input_size: usize,
    hidden_size: usize,
    /// Cached per-step `(input, h_prev, h)` triples from the last forward.
    cache: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)>,
}

impl RnnCell {
    fn new(input_size: usize, hidden_size: usize, seed: u64) -> Self {
        Self {
            u: Param::new(xavier_uniform(vec![hidden_size, input_size], seed)),
            w: Param::new(xavier_uniform(
                vec![hidden_size, hidden_size],
                seed.wrapping_add(1),
            )),
            b: Param::new(Tensor::zeros(vec![hidden_size])),
            input_size,
            hidden_size,
            cache: Vec::new(),
        }
    }

    fn step(&self, x: &[f64], h_prev: &[f64]) -> Vec<f64> {
        let hs = self.hidden_size;
        let is = self.input_size;
        let u = self.u.value.data();
        let w = self.w.value.data();
        let b = self.b.value.data();
        let mut h = vec![0.0; hs];
        for i in 0..hs {
            let mut acc = b[i];
            for j in 0..is {
                acc += u[i * is + j] * x[j];
            }
            for j in 0..hs {
                acc += w[i * hs + j] * h_prev[j];
            }
            h[i] = acc.tanh();
        }
        h
    }

    fn forward_sequence(&mut self, inputs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        self.cache.clear();
        let mut h = vec![0.0; self.hidden_size];
        let mut outputs = Vec::with_capacity(inputs.len());
        for x in inputs {
            let h_new = self.step(x, &h);
            self.cache.push((x.clone(), h.clone(), h_new.clone()));
            outputs.push(h_new.clone());
            h = h_new;
        }
        outputs
    }

    fn forward_sequence_inference(&self, inputs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let mut h = vec![0.0; self.hidden_size];
        let mut outputs = Vec::with_capacity(inputs.len());
        for x in inputs {
            h = self.step(x, &h);
            outputs.push(h.clone());
        }
        outputs
    }

    /// BPTT over the cached sequence. `grad_outputs[t]` is the gradient of
    /// the loss with respect to `h_t` coming from above; returns the gradient
    /// with respect to each input.
    fn backward_sequence(&mut self, grad_outputs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let steps = self.cache.len();
        assert_eq!(grad_outputs.len(), steps, "gradient/step count mismatch");
        let hs = self.hidden_size;
        let is = self.input_size;
        let mut grad_inputs = vec![vec![0.0; is]; steps];
        let mut dh_next = vec![0.0; hs];
        let u = self.u.value.data().to_vec();
        let w = self.w.value.data().to_vec();
        for t in (0..steps).rev() {
            let (x, h_prev, h) = self.cache[t].clone();
            // Total gradient on h_t: from the output head plus from h_{t+1}.
            let mut dh: Vec<f64> = grad_outputs[t].clone();
            for i in 0..hs {
                dh[i] += dh_next[i];
            }
            // Through the tanh.
            let dpre: Vec<f64> = (0..hs).map(|i| dh[i] * (1.0 - h[i] * h[i])).collect();
            {
                let ugrad = self.u.grad.data_mut();
                for i in 0..hs {
                    for j in 0..is {
                        ugrad[i * is + j] += dpre[i] * x[j];
                    }
                }
            }
            {
                let wgrad = self.w.grad.data_mut();
                for i in 0..hs {
                    for j in 0..hs {
                        wgrad[i * hs + j] += dpre[i] * h_prev[j];
                    }
                }
            }
            {
                let bgrad = self.b.grad.data_mut();
                for i in 0..hs {
                    bgrad[i] += dpre[i];
                }
            }
            for j in 0..is {
                let mut acc = 0.0;
                for i in 0..hs {
                    acc += u[i * is + j] * dpre[i];
                }
                grad_inputs[t][j] = acc;
            }
            for j in 0..hs {
                let mut acc = 0.0;
                for i in 0..hs {
                    acc += w[i * hs + j] * dpre[i];
                }
                dh_next[j] = acc;
            }
        }
        grad_inputs
    }
}

/// A stack of recurrent layers processing a sequence of feature vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct RnnStack {
    cells: Vec<RnnCell>,
    input_size: usize,
    hidden_size: usize,
}

impl RnnStack {
    /// Creates a stack of `layers` recurrent layers. The first layer maps
    /// `input_size → hidden_size`, later layers `hidden_size → hidden_size`.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0`.
    pub fn new(input_size: usize, hidden_size: usize, layers: usize, seed: u64) -> Self {
        assert!(layers > 0, "an RNN stack needs at least one layer");
        let cells = (0..layers)
            .map(|l| {
                let in_sz = if l == 0 { input_size } else { hidden_size };
                RnnCell::new(in_sz, hidden_size, seed.wrapping_add(97 * l as u64))
            })
            .collect();
        Self {
            cells,
            input_size,
            hidden_size,
        }
    }

    /// Input feature size.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Hidden-state size (also the per-step output size).
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Number of stacked layers.
    pub fn num_layers(&self) -> usize {
        self.cells.len()
    }

    /// Processes a sequence; returns the top layer's hidden state per step.
    /// Caches activations for [`Self::backward_sequence`].
    pub fn forward_sequence(&mut self, inputs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let mut current: Vec<Vec<f64>> = inputs.to_vec();
        for cell in &mut self.cells {
            current = cell.forward_sequence(&current);
        }
        current
    }

    /// Processes a sequence without caching (inference only).
    pub fn forward_sequence_inference(&self, inputs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let mut current: Vec<Vec<f64>> = inputs.to_vec();
        for cell in &self.cells {
            current = cell.forward_sequence_inference(&current);
        }
        current
    }

    /// Backpropagates through time; `grad_outputs[t]` is the gradient with
    /// respect to the top layer's hidden state at step `t`. Returns gradients
    /// with respect to the original inputs.
    pub fn backward_sequence(&mut self, grad_outputs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let mut grads: Vec<Vec<f64>> = grad_outputs.to_vec();
        for cell in self.cells.iter_mut().rev() {
            grads = cell.backward_sequence(&grads);
        }
        grads
    }

    /// Mutable access to all parameters of all layers.
    pub fn parameters_mut(&mut self) -> Vec<&mut Param> {
        let mut params = Vec::new();
        for cell in &mut self.cells {
            params.push(&mut cell.u);
            params.push(&mut cell.w);
            params.push(&mut cell.b);
        }
        params
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for cell in &mut self.cells {
            cell.u.zero_grad();
            cell.w.zero_grad();
            cell.b.zero_grad();
        }
    }

    /// Total number of scalar parameters.
    pub fn parameter_count(&self) -> usize {
        self.cells
            .iter()
            .map(|c| c.u.len() + c.w.len() + c.b.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loss(rnn: &RnnStack, inputs: &[Vec<f64>]) -> f64 {
        rnn.forward_sequence_inference(inputs)
            .iter()
            .map(|h| h.iter().sum::<f64>())
            .sum()
    }

    #[test]
    fn forward_shapes() {
        let mut rnn = RnnStack::new(6, 4, 3, 1);
        let seq = vec![vec![0.1; 6]; 5];
        let out = rnn.forward_sequence(&seq);
        assert_eq!(out.len(), 5);
        assert_eq!(out[0].len(), 4);
        assert_eq!(rnn.num_layers(), 3);
        assert!(rnn.parameter_count() > 0);
    }

    #[test]
    fn later_steps_depend_on_earlier_inputs() {
        let mut rnn = RnnStack::new(3, 4, 2, 2);
        let base = vec![
            vec![0.2, -0.1, 0.4],
            vec![0.0, 0.3, -0.2],
            vec![0.1, 0.1, 0.1],
        ];
        let mut altered = base.clone();
        altered[0][0] += 0.5;
        let out_base = rnn.forward_sequence(&base);
        let out_alt = rnn.forward_sequence(&altered);
        // Changing the first input changes the last hidden state: the RNN
        // carries context forward (the correlation-awareness CAMO relies on).
        let diff: f64 = out_base[2]
            .iter()
            .zip(&out_alt[2])
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-6);
    }

    #[test]
    fn bptt_gradient_check_parameters() {
        let mut rnn = RnnStack::new(2, 3, 2, 7);
        let seq = vec![vec![0.5, -0.2], vec![0.1, 0.4], vec![-0.3, 0.2]];
        let out = rnn.forward_sequence(&seq);
        let grads: Vec<Vec<f64>> = out.iter().map(|h| vec![1.0; h.len()]).collect();
        rnn.backward_sequence(&grads);
        let eps = 1e-6;
        // Check a sample of parameters from each matrix of the first cell.
        let analytic_u = rnn.cells[0].u.grad.clone();
        let analytic_w = rnn.cells[1].w.grad.clone();
        for idx in [0usize, 1, 3] {
            let mut plus = rnn.clone();
            plus.cells[0].u.value.data_mut()[idx] += eps;
            let mut minus = rnn.clone();
            minus.cells[0].u.value.data_mut()[idx] -= eps;
            let numeric = (loss(&plus, &seq) - loss(&minus, &seq)) / (2.0 * eps);
            assert!(
                (numeric - analytic_u.data()[idx]).abs() < 1e-5,
                "U grad mismatch at {idx}: {numeric} vs {}",
                analytic_u.data()[idx]
            );
        }
        for idx in [0usize, 4, 8] {
            let mut plus = rnn.clone();
            plus.cells[1].w.value.data_mut()[idx] += eps;
            let mut minus = rnn.clone();
            minus.cells[1].w.value.data_mut()[idx] -= eps;
            let numeric = (loss(&plus, &seq) - loss(&minus, &seq)) / (2.0 * eps);
            assert!(
                (numeric - analytic_w.data()[idx]).abs() < 1e-5,
                "W grad mismatch at {idx}"
            );
        }
    }

    #[test]
    fn bptt_gradient_check_inputs() {
        let mut rnn = RnnStack::new(2, 3, 1, 13);
        let seq = vec![vec![0.5, -0.2], vec![0.1, 0.4]];
        let out = rnn.forward_sequence(&seq);
        let grads: Vec<Vec<f64>> = out.iter().map(|h| vec![1.0; h.len()]).collect();
        let gin = rnn.backward_sequence(&grads);
        let eps = 1e-6;
        for t in 0..2 {
            for j in 0..2 {
                let mut sp = seq.clone();
                sp[t][j] += eps;
                let mut sm = seq.clone();
                sm[t][j] -= eps;
                let numeric = (loss(&rnn, &sp) - loss(&rnn, &sm)) / (2.0 * eps);
                assert!((numeric - gin[t][j]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn zero_grad_clears_all() {
        let mut rnn = RnnStack::new(2, 3, 2, 3);
        let seq = vec![vec![0.5, -0.2]];
        let out = rnn.forward_sequence(&seq);
        rnn.backward_sequence(&[vec![1.0; out[0].len()]]);
        rnn.zero_grad();
        for p in rnn.parameters_mut() {
            assert_eq!(p.grad.sum(), 0.0);
        }
    }
}
