//! Dense tensors and trainable parameters.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A dense, row-major n-dimensional array of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f64>, shape: Vec<usize>) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(data.len(), expected, "data length does not match shape");
        Self { shape, data }
    }

    /// A tensor of zeros.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let n: usize = shape.iter().product();
        Self {
            shape,
            data: vec![0.0; n],
        }
    }

    /// A tensor of ones.
    pub fn ones(shape: Vec<usize>) -> Self {
        let n: usize = shape.iter().product();
        Self {
            shape,
            data: vec![1.0; n],
        }
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data (row-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying data (row-major).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the tensor and returns its data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns a copy with a new shape (element count must match).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshaped(&self, shape: Vec<usize>) -> Tensor {
        Tensor::from_vec(self.data.clone(), shape)
    }

    /// Element at a 2-D index `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the index is out of range.
    pub fn at2(&self, row: usize, col: usize) -> f64 {
        assert_eq!(self.shape.len(), 2, "at2 requires a 2-D tensor");
        assert!(row < self.shape[0] && col < self.shape[1]);
        self.data[row * self.shape[1] + col]
    }

    /// Sets the element at a 2-D index `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the index is out of range.
    pub fn set2(&mut self, row: usize, col: usize, v: f64) {
        assert_eq!(self.shape.len(), 2, "set2 requires a 2-D tensor");
        assert!(row < self.shape[0] && col < self.shape[1]);
        self.data[row * self.shape[1] + col] = v;
    }

    /// Matrix multiplication of two 2-D tensors: `[m, k] × [k, n] -> [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not 2-D or the inner dimensions mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul requires 2-D tensors");
        assert_eq!(other.shape.len(), 2, "matmul requires 2-D tensors");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "inner dimensions must match: {k} vs {k2}");
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let row = &other.data[p * n..(p + 1) * n];
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(row) {
                    *o += a * b;
                }
            }
        }
        Tensor::from_vec(out, vec![m, n])
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transposed(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose requires a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(out, vec![n, m])
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor::from_vec(
            self.data.iter().map(|&v| f(v)).collect(),
            self.shape.clone(),
        )
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Index of the maximum element (first occurrence).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of an empty tensor");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Scales all elements in place.
    pub fn scale(&mut self, k: f64) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// Adds `other * k` to `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, k: f64) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_scaled");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += k * b;
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?} ({} elements)", self.shape, self.data.len())
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;
    fn add(self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in add");
        Tensor::from_vec(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
            self.shape.clone(),
        )
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;
    fn sub(self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in sub");
        Tensor::from_vec(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a - b)
                .collect(),
            self.shape.clone(),
        )
    }
}

impl Mul<f64> for &Tensor {
    type Output = Tensor;
    fn mul(self, k: f64) -> Tensor {
        self.map(|v| v * k)
    }
}

/// A trainable parameter: a value tensor and its accumulated gradient.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current parameter values.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// Optimiser state (e.g. momentum buffer), lazily initialised.
    pub state: Option<Tensor>,
}

impl Param {
    /// Wraps a value tensor with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().to_vec());
        Self {
            value,
            grad,
            state: None,
        }
    }

    /// Zeroes the accumulated gradient.
    pub fn zero_grad(&mut self) {
        for g in self.grad.data_mut() {
            *g = 0.0;
        }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True when the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_reshape() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.at2(1, 2), 6.0);
        let r = t.reshaped(vec![3, 2]);
        assert_eq!(r.at2(2, 1), 6.0);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], vec![2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![2, 3]);
        let t = a.transposed();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.transposed(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::ones(vec![2, 2]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![2, 2]);
        assert_eq!((&a + &b).data(), &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!((&b - &a).data(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!((&b * 2.0).data(), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(b.sum(), 10.0);
        assert_eq!(b.mean(), 2.5);
        assert_eq!(b.argmax(), 3);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Tensor::zeros(vec![3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], vec![3]);
        a.add_scaled(&b, 0.5);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn param_zero_grad() {
        let mut p = Param::new(Tensor::ones(vec![2, 2]));
        p.grad = Tensor::ones(vec![2, 2]);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.len(), 4);
    }

    #[test]
    #[should_panic(expected = "data length does not match shape")]
    fn bad_shape_rejected() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], vec![3]);
    }
}
