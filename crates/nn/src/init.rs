//! Weight initialisation.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Xavier/Glorot uniform initialisation for a `[fan_out, fan_in]` weight
/// matrix (or any shape whose first two dimensions are fan-out / fan-in).
///
/// The seed makes every network construction deterministic, which the
/// experiment harness relies on for reproducible tables.
pub fn xavier_uniform(shape: Vec<usize>, seed: u64) -> Tensor {
    let fan_out = shape.first().copied().unwrap_or(1) as f64;
    let fan_in = shape.get(1).copied().unwrap_or(1) as f64;
    let rest: usize = shape.iter().skip(2).product::<usize>().max(1);
    let limit = (6.0 / (fan_in * rest as f64 + fan_out * rest as f64)).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.gen_range(-limit..limit)).collect();
    Tensor::from_vec(data, shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_is_bounded_and_deterministic() {
        let a = xavier_uniform(vec![8, 4], 7);
        let b = xavier_uniform(vec![8, 4], 7);
        let c = xavier_uniform(vec![8, 4], 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let limit = (6.0_f64 / 12.0).sqrt();
        assert!(a.data().iter().all(|v| v.abs() <= limit));
        // Not all zero.
        assert!(a.data().iter().any(|v| v.abs() > 1e-6));
    }
}
