//! Minimal neural-network substrate for CAMO-RS.
//!
//! The CAMO paper implements its policy network in PyTorch. The network is
//! small (a feature encoder, a GraphSAGE fusion layer, a 3-layer RNN and a
//! linear head), so this crate provides a from-scratch, dependency-free
//! implementation with **manual reverse-mode backpropagation**:
//!
//! * [`Tensor`]: a dense row-major n-d array of `f64`,
//! * [`Param`]: a trainable tensor with an accumulated gradient,
//! * [`Linear`], [`Conv2d`], [`AvgPool2d`], activations, [`Softmax`],
//! * [`SageLayer`]: GraphSAGE mean-aggregation over an adjacency list,
//! * [`RnnStack`]: a multi-layer Elman RNN with backpropagation through time,
//! * [`Sgd`]: stochastic gradient descent with optional momentum.
//!
//! Every differentiable module exposes `forward`/`backward` pairs that cache
//! whatever the backward pass needs; gradient correctness is verified by
//! finite-difference tests in each module.
//!
//! # Example
//!
//! ```
//! use camo_nn::{Linear, Tensor, Sgd, Optimizer};
//!
//! let mut layer = Linear::new(4, 2, 42);
//! let x = Tensor::from_vec(vec![1.0, 0.5, -0.5, 2.0], vec![1, 4]);
//! let y = layer.forward(&x);
//! assert_eq!(y.shape(), &[1, 2]);
//! let grad = Tensor::ones(vec![1, 2]);
//! let _gx = layer.backward(&grad);
//! let mut opt = Sgd::new(0.01, 0.0);
//! opt.step(&mut layer.parameters_mut());
//! ```

pub mod activation;
pub mod conv;
pub mod init;
pub mod linear;
pub mod optim;
pub mod rnn;
pub mod sage;
pub mod softmax;
pub mod tensor;

pub use activation::{Relu, Sigmoid, Tanh};
pub use conv::{AvgPool2d, Conv2d};
pub use init::xavier_uniform;
pub use linear::Linear;
pub use optim::{Optimizer, Sgd};
pub use rnn::RnnStack;
pub use sage::SageLayer;
pub use softmax::{cross_entropy_grad, log_softmax, softmax, Softmax};
pub use tensor::{Param, Tensor};
