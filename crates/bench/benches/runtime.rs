//! Micro-benchmarks of the substrates that dominate OPC runtime: mask
//! rasterisation + aerial imaging, EPE evaluation, squish feature encoding,
//! graph construction and policy inference. These back the "RT" columns of
//! Tables 1/2 and the kernel-count ablation called out in `DESIGN.md`.

use camo::{CamoConfig, CamoEngine};
use camo_baselines::OpcConfig;
use camo_geometry::{segment_features_stacked, FeatureConfig};
use camo_litho::{GaussianKernel, LithoConfig, LithoSimulator, OpticalModel};
use camo_workloads::via_test_set;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn bench_litho(c: &mut Criterion) {
    let case = &via_test_set()[0];
    let opc = OpcConfig::via_layer();
    let mask = opc.initial_mask(&case.clip);
    let mut group = c.benchmark_group("litho");
    group.sample_size(10);
    for (name, config) in [
        ("evaluate_fast_px10", LithoConfig::fast()),
        ("evaluate_default_px5", LithoConfig::default()),
        (
            "evaluate_single_kernel",
            LithoConfig {
                optical: OpticalModel::new(vec![GaussianKernel::new(1.0, 28.0)]),
                ..LithoConfig::fast()
            },
        ),
    ] {
        let sim = LithoSimulator::new(config);
        group.bench_function(name, |b| b.iter(|| sim.evaluate(&mask)));
    }
    let sim = LithoSimulator::new(LithoConfig::fast());
    group.bench_function("evaluate_epe_only", |b| b.iter(|| sim.evaluate_epe(&mask)));
    group.finish();
}

fn bench_features_and_policy(c: &mut Criterion) {
    let case = &via_test_set()[4];
    let opc = OpcConfig::via_layer();
    let mask = opc.initial_mask(&case.clip);
    let mut group = c.benchmark_group("policy");
    group.sample_size(10);

    let features_cfg = FeatureConfig::default();
    group.bench_function("segment_features_stacked", |b| {
        b.iter(|| segment_features_stacked(&mask, 0, &features_cfg))
    });

    let engine = CamoEngine::new(opc.clone(), CamoConfig::fast());
    group.bench_function("graph_build", |b| b.iter(|| engine.graph(&mask)));

    let graph = engine.graph(&mask);
    let features = engine.node_features(&mask);
    group.bench_function("camo_policy_forward", |b| {
        b.iter_batched(
            || engine.policy().clone(),
            |policy| policy.forward_inference(&features, graph.adjacency()),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_litho, bench_features_and_policy);
criterion_main!(benches);
