//! Per-engine runtime on a metal-layer clip (the "RT" column of Table 2),
//! plus the modulator's own overhead.

use camo::{CamoConfig, CamoEngine, Modulator};
use camo_baselines::{CalibreLikeOpc, OpcConfig, OpcEngine, RlOpc, RlOpcConfig};
use camo_geometry::FeatureConfig;
use camo_litho::{LithoConfig, LithoSimulator};
use camo_workloads::metal_test_set;
use criterion::{criterion_group, criterion_main, Criterion};

fn engine_runtimes(c: &mut Criterion) {
    // M8 is the smallest metal clip; it keeps the bench quick while still
    // exercising the metal fragmentation path.
    let case = &metal_test_set()[7];
    let sim = LithoSimulator::new(LithoConfig::fast());
    let mut opc = OpcConfig::metal_layer();
    opc.max_steps = 5;

    let mut group = c.benchmark_group("table2_runtime");
    group.sample_size(10);

    group.bench_function("calibre_like_iterative", |b| {
        let mut engine = CalibreLikeOpc::new(opc.clone());
        b.iter(|| engine.optimize(&case.clip, &sim))
    });
    group.bench_function("rl_opc_inference", |b| {
        let mut engine = RlOpc::new(
            opc.clone(),
            RlOpcConfig {
                features: FeatureConfig {
                    window: 300,
                    tensor_size: 8,
                },
                hidden: 16,
                ..RlOpcConfig::default()
            },
        );
        b.iter(|| engine.optimize(&case.clip, &sim))
    });
    group.bench_function("camo_inference", |b| {
        let mut engine = CamoEngine::new(opc.clone(), CamoConfig::fast());
        b.iter(|| engine.optimize(&case.clip, &sim))
    });
    group.bench_function("camo_inference_no_modulator", |b| {
        let mut engine = CamoEngine::new(opc.clone(), CamoConfig::fast().without_modulator());
        b.iter(|| engine.optimize(&case.clip, &sim))
    });

    let modulator = Modulator::paper_default();
    group.bench_function("modulator_preference", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for epe in [-8.0, -3.0, 0.0, 2.0, 7.0] {
                acc += modulator.preference(epe)[4];
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, engine_runtimes);
criterion_main!(benches);
