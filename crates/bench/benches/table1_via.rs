//! Per-engine runtime on a via-layer clip (the "RT" column of Table 1).
//!
//! Every engine optimises the same V1-style clip under the fast lithography
//! configuration; the measured times reproduce the paper's runtime ordering
//! (one-shot DAMO fastest, iterative engines slower).

use camo::{CamoConfig, CamoEngine};
use camo_baselines::{
    CalibreLikeOpc, DamoLikeOpc, OpcConfig, OpcEngine, PixelIlt, RlOpc, RlOpcConfig,
};
use camo_geometry::FeatureConfig;
use camo_litho::{LithoConfig, LithoSimulator};
use camo_workloads::via_test_set;
use criterion::{criterion_group, criterion_main, Criterion};

fn engine_runtimes(c: &mut Criterion) {
    let case = &via_test_set()[0];
    let sim = LithoSimulator::new(LithoConfig::fast());
    let mut opc = OpcConfig::via_layer();
    opc.max_steps = 5;

    let mut group = c.benchmark_group("table1_runtime");
    group.sample_size(10);

    group.bench_function("damo_like_one_shot", |b| {
        let mut engine = DamoLikeOpc::new(opc.clone());
        b.iter(|| engine.optimize(&case.clip, &sim))
    });
    group.bench_function("calibre_like_iterative", |b| {
        let mut engine = CalibreLikeOpc::new(opc.clone());
        b.iter(|| engine.optimize(&case.clip, &sim))
    });
    group.bench_function("rl_opc_inference", |b| {
        let mut engine = RlOpc::new(
            opc.clone(),
            RlOpcConfig {
                features: FeatureConfig {
                    window: 300,
                    tensor_size: 8,
                },
                hidden: 16,
                ..RlOpcConfig::default()
            },
        );
        b.iter(|| engine.optimize(&case.clip, &sim))
    });
    group.bench_function("camo_inference", |b| {
        let mut engine = CamoEngine::new(opc.clone(), CamoConfig::fast());
        b.iter(|| engine.optimize(&case.clip, &sim))
    });
    group.bench_function("pixel_ilt", |b| {
        let mut engine = PixelIlt::new(opc.clone());
        engine.iterations = 5;
        b.iter(|| engine.optimize(&case.clip, &sim))
    });
    group.finish();
}

criterion_group!(benches, engine_runtimes);
criterion_main!(benches);
