//! Reference numbers reported in the CAMO paper (DAC 2024), used to print
//! paper-vs-measured comparisons.
//!
//! Only the aggregate rows are reproduced here; per-clip values depend on the
//! exact benchmark clips, which are not redistributable (see `DESIGN.md`).

/// Summary (Sum row) of the paper's Table 1 for one engine on the via layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperViaRow {
    /// Engine name as printed in the paper.
    pub engine: &'static str,
    /// Total EPE over the 13 test clips, nm.
    pub epe_sum: f64,
    /// Total PV band, nm².
    pub pvb_sum: f64,
    /// Total runtime, s.
    pub runtime_sum: f64,
}

/// Summary (Sum row) of the paper's Table 2 for one engine on the metal
/// layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperMetalRow {
    /// Engine name as printed in the paper.
    pub engine: &'static str,
    /// Total EPE over the 10 test clips, nm.
    pub epe_sum: f64,
    /// Total PV band, nm².
    pub pvb_sum: f64,
    /// Total runtime, s.
    pub runtime_sum: f64,
}

/// Table 1 "Sum" row of the paper (via layer, 13 clips, 58 vias).
pub const TABLE1_PAPER: [PaperViaRow; 4] = [
    PaperViaRow {
        engine: "DAMO",
        epe_sum: 307.0,
        pvb_sum: 154_733.0,
        runtime_sum: 7.43,
    },
    PaperViaRow {
        engine: "Calibre",
        epe_sum: 235.0,
        pvb_sum: 154_987.0,
        runtime_sum: 108.36,
    },
    PaperViaRow {
        engine: "RL-OPC",
        epe_sum: 276.0,
        pvb_sum: 153_723.0,
        runtime_sum: 149.6,
    },
    PaperViaRow {
        engine: "CAMO",
        epe_sum: 196.0,
        pvb_sum: 151_112.0,
        runtime_sum: 82.38,
    },
];

/// Table 2 "Sum" row of the paper (metal layer, 10 clips, 886 measure points).
pub const TABLE2_PAPER: [PaperMetalRow; 3] = [
    PaperMetalRow {
        engine: "Calibre",
        epe_sum: 698.0,
        pvb_sum: 372_067.0,
        runtime_sum: 87.05,
    },
    PaperMetalRow {
        engine: "RL-OPC",
        epe_sum: 2118.0,
        pvb_sum: 375_786.0,
        runtime_sum: 167.78,
    },
    PaperMetalRow {
        engine: "CAMO",
        epe_sum: 620.0,
        pvb_sum: 364_464.0,
        runtime_sum: 88.37,
    },
];

/// Paper Table 1 ratios (relative to CAMO = 1.00): EPE, PVB, runtime.
pub const TABLE1_PAPER_RATIOS: [(&str, f64, f64, f64); 4] = [
    ("DAMO", 1.57, 1.02, 0.10),
    ("Calibre", 1.20, 1.03, 1.32),
    ("RL-OPC", 1.41, 1.02, 1.96),
    ("CAMO", 1.00, 1.00, 1.00),
];

/// Paper Table 2 ratios (relative to CAMO = 1.00): EPE, PVB, runtime.
pub const TABLE2_PAPER_RATIOS: [(&str, f64, f64, f64); 3] = [
    ("Calibre", 1.13, 1.02, 0.99),
    ("RL-OPC", 3.42, 1.03, 1.90),
    ("CAMO", 1.00, 1.00, 1.00),
];

/// Figure-5 headline numbers: with the modulator the EPE trajectories of M2
/// and M4 converge to at most these values (nm); without it they fluctuate.
pub const FIG5_PAPER_CONVERGED_EPE: [(&str, f64); 2] = [("M2", 64.0), ("M4", 60.0)];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tables_rank_camo_first() {
        let camo = TABLE1_PAPER.last().expect("non-empty");
        assert!(TABLE1_PAPER.iter().all(|r| r.epe_sum >= camo.epe_sum));
        assert!(TABLE1_PAPER.iter().all(|r| r.pvb_sum >= camo.pvb_sum));
        let camo2 = TABLE2_PAPER.last().expect("non-empty");
        assert!(TABLE2_PAPER.iter().all(|r| r.epe_sum >= camo2.epe_sum));
    }

    #[test]
    fn ratios_are_relative_to_camo() {
        assert_eq!(TABLE1_PAPER_RATIOS[3].1, 1.00);
        assert_eq!(TABLE2_PAPER_RATIOS[2].1, 1.00);
    }
}
