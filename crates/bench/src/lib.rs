//! Experiment-reproduction harness for CAMO-RS.
//!
//! Every table and figure of the paper's evaluation section has a
//! corresponding runner here, shared by the command-line binaries in
//! `src/bin/`, the Criterion benches in `benches/` and the integration tests
//! in `tests/`:
//!
//! | Paper artefact | Runner | Binary |
//! |---|---|---|
//! | Table 1 (via layer)   | [`experiments::run_via_experiment`]   | `table1_via` |
//! | Table 2 (metal layer) | [`experiments::run_metal_experiment`] | `table2_metal` |
//! | Figure 5 (modulator ablation) | [`experiments::run_modulator_ablation`] | `fig5_modulator` |
//! | Figure 6 (mask/contour/PV band visualisation) | [`viz`] | `fig6_visualize` |
//! | Figure 4 (modulator projection) | [`experiments::modulator_projection_rows`] | `fig4_projection` |
//!
//! The [`paper`] module embeds the paper's reported numbers so every binary
//! prints a *paper vs. measured* comparison; `EXPERIMENTS.md` is generated
//! from those outputs.

pub mod experiments;
pub mod paper;
pub mod table;
pub mod viz;

pub use experiments::{
    modulator_projection_rows, run_metal_experiment, run_metal_experiment_threaded,
    run_modulator_ablation, run_via_experiment, run_via_experiment_threaded, threads_from_args,
    EngineRow, ExperimentScale, ExperimentSummary, ModulatorTrace,
};
pub use table::{format_ratio_row, format_row, render_table};
