//! Plain-text table rendering for the experiment binaries.

/// Renders a table with a header row and aligned columns.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let columns = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(columns) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |widths: &[usize]| {
        let mut s = String::from("+");
        for w in widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('+');
        }
        s.push('\n');
        s
    };
    out.push_str(&line(&widths));
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    out.push_str(&line(&widths));
    for row in rows {
        out.push('|');
        for (i, w) in widths.iter().enumerate() {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
    }
    out.push_str(&line(&widths));
    out
}

/// Formats a result row `(name, epe, pvb, runtime)` with sensible precision.
pub fn format_row(name: &str, epe: f64, pvb: f64, runtime: f64) -> Vec<String> {
    vec![
        name.to_string(),
        format!("{epe:.0}"),
        format!("{pvb:.0}"),
        format!("{runtime:.2}"),
    ]
}

/// Formats a ratio row relative to a reference `(epe, pvb, runtime)` triple.
pub fn format_ratio_row(
    name: &str,
    value: (f64, f64, f64),
    reference: (f64, f64, f64),
) -> Vec<String> {
    let ratio = |a: f64, b: f64| if b.abs() < 1e-12 { 0.0 } else { a / b };
    vec![
        name.to_string(),
        format!("{:.2}", ratio(value.0, reference.0)),
        format!("{:.2}", ratio(value.1, reference.1)),
        format!("{:.2}", ratio(value.2, reference.2)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_rows_and_aligns_columns() {
        let rows = vec![
            format_row("CAMO", 196.0, 151_112.0, 82.38),
            format_row("Calibre", 235.0, 154_987.0, 108.36),
        ];
        let table = render_table(&["Engine", "EPE", "PVB", "RT"], &rows);
        assert!(table.contains("CAMO"));
        assert!(table.contains("151112"));
        assert!(table.contains("108.36"));
        // Every line has the same width.
        let widths: Vec<usize> = table.lines().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn ratio_row_is_relative() {
        let row = format_ratio_row(
            "Calibre",
            (235.0, 154987.0, 108.36),
            (196.0, 151112.0, 82.38),
        );
        assert_eq!(row[1], "1.20");
        assert_eq!(row[2], "1.03");
        assert_eq!(row[3], "1.32");
    }

    #[test]
    fn zero_reference_does_not_panic() {
        let row = format_ratio_row("X", (1.0, 1.0, 1.0), (0.0, 1.0, 1.0));
        assert_eq!(row[1], "0.00");
    }
}
