//! Reproduces Figure 5 of the CAMO paper: EPE trajectories with and without
//! the OPC-inspired modulator on metal cases M2 and M4.
//!
//! Run with `cargo run -p camo-bench --release --bin fig5_modulator`
//! (append `--quick` for a reduced smoke-test run).

use camo_bench::paper::FIG5_PAPER_CONVERGED_EPE;
use camo_bench::{render_table, run_modulator_ablation, ExperimentScale, ModulatorTrace};

fn main() {
    let scale = ExperimentScale::from_args();
    println!("== Figure 5: EPE trajectories with / without the modulator ==");
    println!("scale: {scale:?}\n");
    let traces = run_modulator_ablation(scale);

    for trace in &traces {
        println!("case {}:", trace.case);
        let steps = trace
            .with_modulator
            .len()
            .max(trace.without_modulator.len());
        let rows: Vec<Vec<String>> = (0..steps)
            .map(|t| {
                vec![
                    t.to_string(),
                    trace
                        .with_modulator
                        .get(t)
                        .map(|v| format!("{v:.0}"))
                        .unwrap_or_else(|| "-".into()),
                    trace
                        .without_modulator
                        .get(t)
                        .map(|v| format!("{v:.0}"))
                        .unwrap_or_else(|| "-".into()),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &["step", "EPE w/ modulator (nm)", "EPE w/o modulator (nm)"],
                &rows
            )
        );
        println!(
            "  fluctuation w/ modulator: {:.0} nm, w/o modulator: {:.0} nm",
            ModulatorTrace::fluctuation(&trace.with_modulator[1..]),
            ModulatorTrace::fluctuation(&trace.without_modulator[1..]),
        );
        println!(
            "  converged EPE w/ modulator: {:.0} nm\n",
            trace.converged_epe()
        );
    }

    println!("-- Paper reference --");
    for (case, epe) in FIG5_PAPER_CONVERGED_EPE {
        println!(
            "  {case}: converges to at most {epe:.0} nm with the modulator; fluctuates without it"
        );
    }
}
