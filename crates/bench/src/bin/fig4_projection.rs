//! Reproduces Figure 4 of the CAMO paper: the modulator's projection of
//! signed EPE values onto movement preference vectors.
//!
//! Run with `cargo run -p camo-bench --release --bin fig4_projection`.

use camo_bench::{modulator_projection_rows, render_table};

fn main() {
    println!("== Figure 4: modulator preference vectors (f(x) = 0.02·x^4 + 1) ==\n");
    let rows: Vec<Vec<String>> = modulator_projection_rows()
        .into_iter()
        .map(|(epe, pref)| {
            let mut row = vec![format!("{epe:+.1}")];
            row.extend(pref.iter().map(|p| format!("{p:.3}")));
            row
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["EPE (nm)", "p(-2nm)", "p(-1nm)", "p(0)", "p(+1nm)", "p(+2nm)"],
            &rows
        )
    );
    println!("Properties demonstrated (Section 3.2):");
    println!("  * large positive EPE (under-print)  -> outward movements strongly preferred");
    println!("  * large negative EPE (over-print)   -> inward movements strongly preferred");
    println!("  * small |EPE|                       -> nearly uniform preferences");
}
