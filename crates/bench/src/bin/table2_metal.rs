//! Reproduces Table 2 of the CAMO paper: metal-layer OPC comparison.
//!
//! Run with `cargo run -p camo-bench --release --bin table2_metal`
//! (append `--quick` for a reduced smoke-test run, `--threads N` to spread
//! the test-set sweep over N pool workers — EPE/PVB results are
//! bit-identical at any thread count; the RT column is wall-clock measured
//! inside the workers, so it inflates under contention when N exceeds the
//! hardware threads).

use camo_bench::paper::{TABLE2_PAPER, TABLE2_PAPER_RATIOS};
use camo_bench::{
    format_ratio_row, format_row, render_table, run_metal_experiment_threaded, threads_from_args,
    ExperimentScale,
};

fn main() {
    let scale = ExperimentScale::from_args();
    let threads = threads_from_args();
    println!("== Table 2: OPC results on metal layer patterns (EPE nm, PVB nm^2, RT s) ==");
    println!("scale: {scale:?}, threads: {threads}\n");
    let summary = run_metal_experiment_threaded(scale, threads);

    let mut headers = vec!["Design".to_string(), "Point #".to_string()];
    for row in &summary.rows {
        headers.push(format!("{} EPE", row.engine));
        headers.push(format!("{} PVB", row.engine));
        headers.push(format!("{} RT", row.engine));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for (i, name) in summary.case_names.iter().enumerate() {
        let mut row = vec![name.clone(), summary.case_sizes[i].to_string()];
        for engine in &summary.rows {
            let c = &engine.cases[i];
            row.push(format!("{:.0}", c.epe));
            row.push(format!("{:.0}", c.pvb));
            row.push(format!("{:.2}", c.runtime));
        }
        rows.push(row);
    }
    println!("{}", render_table(&header_refs, &rows));

    let camo = summary.camo_row();
    let reference = (camo.epe_sum(), camo.pvb_sum(), camo.runtime_sum());
    let mut sum_rows = Vec::new();
    for engine in &summary.rows {
        sum_rows.push(format_row(
            &engine.engine,
            engine.epe_sum(),
            engine.pvb_sum(),
            engine.runtime_sum(),
        ));
        sum_rows.push(format_ratio_row(
            &format!("{} (ratio)", engine.engine),
            (engine.epe_sum(), engine.pvb_sum(), engine.runtime_sum()),
            reference,
        ));
    }
    println!(
        "{}",
        render_table(&["Engine", "EPE sum", "PVB sum", "RT sum"], &sum_rows)
    );

    println!("-- Paper reference (Table 2, Sum / Ratio rows) --");
    let paper_rows: Vec<Vec<String>> = TABLE2_PAPER
        .iter()
        .map(|r| format_row(r.engine, r.epe_sum, r.pvb_sum, r.runtime_sum))
        .collect();
    println!(
        "{}",
        render_table(&["Engine", "EPE sum", "PVB sum", "RT sum"], &paper_rows)
    );
    let ratio_rows: Vec<Vec<String>> = TABLE2_PAPER_RATIOS
        .iter()
        .map(|(n, e, p, t)| {
            vec![
                n.to_string(),
                format!("{e:.2}"),
                format!("{p:.2}"),
                format!("{t:.2}"),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Engine", "EPE ratio", "PVB ratio", "RT ratio"],
            &ratio_rows
        )
    );

    let camo_epe = camo.epe_sum();
    if let Some(rl) = summary.row("RL-OPC") {
        println!(
            "shape check: RL-OPC EPE / CAMO EPE = {:.2} (paper: 3.42 — RL-OPC fails to converge on metal)",
            rl.epe_sum() / camo_epe.max(1e-9)
        );
    }
    if let Some(calibre) = summary.row("Calibre-like") {
        println!(
            "shape check: Calibre EPE / CAMO EPE = {:.2} (paper: 1.13 — CAMO ~10% better)",
            calibre.epe_sum() / camo_epe.max(1e-9)
        );
    }
}
