//! Performance snapshot of the lithography hot path and the batch runtime.
//!
//! Times the scratch-buffer pipeline against the seed's reference
//! implementation on a paper-style via clip at the default px5
//! configuration, measures multi-clip batch throughput (clips/s at 1, 2
//! and 4 pool threads) over the Table-1 via set — verifying along the way
//! that every batch run is bit-identical to the serial loop — and writes
//! `BENCH_litho.json` (op, mean ns, speedup, batch rows) so regressions
//! are visible across PRs:
//!
//! ```text
//! cargo run --release -p camo-bench --bin perf_snapshot
//! ```
//!
//! `--quick` switches to the fast lithography configuration, skips the
//! slow reference-implementation baselines and does **not** rewrite
//! `BENCH_litho.json`; `--threads N` restricts the batch sweep to one
//! thread count. CI runs `--quick --threads 1` and `--quick --threads 2`
//! on every PR so batch-determinism or throughput regressions surface
//! immediately.
//!
//! The **simd section** always runs: every backend the host detects
//! (scalar, and SSE2/AVX2 where available) is micro-benched on the three
//! hot kernels (coverage rasterisation, separable convolution, EPE sweep)
//! with each result verified bit-identical to the scalar backend — exit 1
//! on any divergence. The `simd digest …` lines depend only on result
//! bits, so CI diffs them between `CAMO_SIMD=scalar` and `CAMO_SIMD=auto`
//! quick runs as an end-to-end dispatch-parity gate. A sparse-refresh row
//! records how many pixels a two-distant-moves incremental step actually
//! re-rasterised vs the dense union dirty window.
//!
//! `--layout` adds the layout-scale section (it always runs in full mode):
//! a generated multi-tile layout is swept through the tiler at 1/2 threads
//! (tiles/s, verified bit-identical to whole-layout evaluation — exit 1 on
//! divergence), and the context-reuse speedup of the batch path (one shared
//! `LithoContext`/workspace pool vs a cold per-clip simulator) is measured;
//! both are recorded in `BENCH_litho.json`. CI smokes
//! `--quick --layout --threads 1` alongside the batch runs.
//!
//! `--serve` adds the serving section (also on by default in full mode): a
//! `camo-serve` server is started in-process on an ephemeral port, a
//! deterministic mixed request stream is fired at it over loopback, and
//! end-to-end requests/s is recorded per worker-thread count — plus a
//! queue-saturation probe (dispatchers disabled, bounded queue) counting
//! typed `busy` rejections. Any failed or missing response exits 1. The
//! section also snapshots the server's `metrics` report and records
//! per-request-kind latency (p50/p99/max µs) — asserting the rows are
//! plausible (every kind the stream exercised has samples, p50 ≤ p99) and
//! exiting 1 otherwise, so the CI `--quick --serve` run is a tail-latency
//! regression gate, not just a throughput print.
//!
//! `--serve --shards N` adds the **router tier**: `N` real `serve` shard
//! processes are spawned (the binary next to this one, i.e.
//! `target/release/serve`), a router fronts them, and the same request
//! stream is measured end-to-end through `router + N shards` — recording
//! router-tier requests/s and the router-overhead-vs-direct ratio into
//! `BENCH_litho.json`. Full mode records shards 1 and 2. Routed responses
//! are checked complete the same way; any failure exits 1.
//!
//! The router section finishes with the **respawn-overhead row**: the same
//! stream is measured through a supervised 2-shard tier twice — untouched,
//! then with a shard killed mid-stream — and the row records both rates,
//! their ratio, and the respawn count the router's `metrics` report shows
//! afterwards (which must be ≥ 1, and every response must still complete;
//! anything else exits 1).

use camo::{CamoConfig, CamoEngine};
use camo_baselines::{OpcConfig, OpcEngine};
use camo_litho::{reference, LithoConfig, LithoSimulator, Tiler};
use camo_runtime::{evaluate_layout, optimize_batch};
use camo_workloads::{via_test_set, LayoutParams};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Core size of the layout-sweep benchmark tiles, nm.
const LAYOUT_TILE_NM: i64 = 1500;

fn mean_ns<F: FnMut()>(mut op: F, iters: usize) -> f64 {
    op(); // warm-up
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

struct Row {
    op: &'static str,
    mean_ns: f64,
    reference_ns: Option<f64>,
}

impl Row {
    fn speedup(&self) -> Option<f64> {
        self.reference_ns.map(|r| r / self.mean_ns)
    }
}

/// Per-arch kernel micro-bench: one row per (op, backend) pair, verified
/// bit-identical to the scalar backend before the rate is recorded.
struct SimdRow {
    op: &'static str,
    arch: &'static str,
    ops_per_s: f64,
    speedup_vs_scalar: f64,
}

/// Pixel accounting of one bitmask-sparse incremental refresh with two
/// distant simultaneous moves: the sparse path re-rasterises only the
/// marked spans of the union dirty window.
struct SparseRefreshRow {
    rasterized_pixels: usize,
    dirty_window_pixels: usize,
    sub_windows: usize,
}

impl SparseRefreshRow {
    fn skip_ratio(&self) -> f64 {
        self.dirty_window_pixels as f64 / self.rasterized_pixels.max(1) as f64
    }
}

/// FNV-1a over the exact bit patterns of a value stream: the digest two
/// `CAMO_SIMD` settings must agree on for the CI bit-identity diff.
fn bits_digest(values: impl Iterator<Item = f64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Batch throughput of `optimize_batch` at one pool size.
struct BatchRow {
    threads: usize,
    clips: usize,
    clips_per_s: f64,
}

/// Tiled layout-sweep throughput at one pool size.
struct LayoutRow {
    threads: usize,
    tiles_per_s: f64,
}

/// Context-reuse measurement: the serial batch path with one shared
/// `LithoContext` + workspace pool vs a cold simulator per clip.
struct ContextReuse {
    clips: usize,
    shared_s: f64,
    cold_s: f64,
}

impl ContextReuse {
    fn speedup(&self) -> f64 {
        self.cold_s / self.shared_s
    }
}

/// End-to-end serving throughput at one worker-thread count.
struct ServeRow {
    threads: usize,
    requests: usize,
    requests_per_s: f64,
}

/// Steady vs during-respawn throughput through a supervised router tier,
/// plus the respawn count its `metrics` report shows afterwards.
struct RespawnRow {
    shards: usize,
    requests: usize,
    steady_requests_per_s: f64,
    respawn_requests_per_s: f64,
    respawns: usize,
}

impl RespawnRow {
    fn overhead_vs_steady(&self) -> f64 {
        self.steady_requests_per_s / self.respawn_requests_per_s
    }
}

/// Tracing-plane overhead row: the same stream through an untraced server
/// and one with tracing armed but sampled out — the gate that proves a
/// sampled-out request pays no clock reads on the serving hot path — plus
/// the stage-name coverage a full-sample run recorded.
struct TraceRow {
    requests: usize,
    baseline_requests_per_s: f64,
    sampled_out_requests_per_s: f64,
    stages_observed: usize,
}

impl TraceRow {
    fn overhead_vs_baseline(&self) -> f64 {
        self.baseline_requests_per_s / self.sampled_out_requests_per_s
    }
}

/// Queue-saturation probe: what a burst beyond the queue depth observes.
struct ServeSaturation {
    queue_depth: usize,
    submitted: usize,
    rejected: usize,
    retry_after_ms: u64,
}

/// End-to-end router-tier throughput at one shard count and one client
/// wire version, paired with the direct single-process rate over the
/// *same* multi-configuration stream at the *same* wire version, so the
/// overhead ratio compares identical workloads and identical encodings.
struct RouterRow {
    shards: usize,
    wire: camo_serve::WireVersion,
    requests: usize,
    configs: usize,
    requests_per_s: f64,
    direct_requests_per_s: f64,
}

impl RouterRow {
    fn overhead_vs_direct(&self) -> f64 {
        self.direct_requests_per_s / self.requests_per_s
    }
}

/// One codec micro-bench measurement: encoding or decoding one mask-scale
/// frame in one wire version.
struct CodecRow {
    op: &'static str,
    kind: &'static str,
    wire: &'static str,
    frame_bytes: usize,
    mean_ns: f64,
}

impl CodecRow {
    fn frames_per_s(&self) -> f64 {
        1e9 / self.mean_ns
    }
}

/// Codec micro-bench over mask-scale frames: the same `optimize` request
/// (a real via clip under a full job spec) and the same `outcome`
/// response (a 4096-point EPE image plus per-segment offsets — the shape
/// a layout sweep streams back) encoded and decoded through both wire
/// codecs. v2 moves the `f64` arrays as raw little-endian bit images, so
/// it is expected (and gated, in `main`) to beat v1's text formatting.
fn codec_rows(iters: usize) -> Vec<CodecRow> {
    use camo_serve::exec::case_body;
    use camo_serve::wire::{
        decode_request, decode_request_v2, decode_response, decode_response_v2, encode_request,
        encode_request_v2, encode_response, encode_response_v2, Request, Response, ResponseBody,
        WireOutcome,
    };

    let (job, case) = tagged_cases(1, 1).remove(0);
    let request = Request {
        id: 7,
        body: case_body(&case, &job),
        trace: None,
    };
    let points = 4096;
    let response = Response {
        id: 7,
        body: ResponseBody::Outcome(WireOutcome {
            offsets: (0..points).map(|i| (i % 41) - 20).collect(),
            epe_per_point: (0..points)
                .map(|i| (i as f64).mul_add(1e-4, -0.2))
                .collect(),
            pv_band: 123_456.789,
            steps: 12,
        }),
    };

    // Pre-encoded frames for the decode measurements; v2 frames are split
    // into the opcode byte and payload exactly as the reader would after
    // the length prefix.
    let req_v1 = encode_request(&request).expect("v1 request encode");
    let req_v2 = encode_request_v2(&request).expect("v2 request encode");
    let resp_v1 = encode_response(&response).expect("v1 response encode");
    let resp_v2 = encode_response_v2(&response).expect("v2 response encode");

    let mut out = Vec::new();
    out.push(CodecRow {
        op: "encode",
        kind: "optimize_request",
        wire: "v1",
        frame_bytes: req_v1.len(),
        mean_ns: mean_ns(
            || {
                black_box(encode_request(&request).expect("encode"));
            },
            iters,
        ),
    });
    out.push(CodecRow {
        op: "encode",
        kind: "optimize_request",
        wire: "v2",
        frame_bytes: req_v2.len(),
        mean_ns: mean_ns(
            || {
                black_box(encode_request_v2(&request).expect("encode"));
            },
            iters,
        ),
    });
    out.push(CodecRow {
        op: "decode",
        kind: "optimize_request",
        wire: "v1",
        frame_bytes: req_v1.len(),
        mean_ns: mean_ns(
            || {
                black_box(decode_request(&req_v1).expect("decode"));
            },
            iters,
        ),
    });
    out.push(CodecRow {
        op: "decode",
        kind: "optimize_request",
        wire: "v2",
        frame_bytes: req_v2.len(),
        mean_ns: mean_ns(
            || {
                black_box(decode_request_v2(req_v2[4], &req_v2[5..]).expect("decode"));
            },
            iters,
        ),
    });
    out.push(CodecRow {
        op: "encode",
        kind: "outcome_response",
        wire: "v1",
        frame_bytes: resp_v1.len(),
        mean_ns: mean_ns(
            || {
                black_box(encode_response(&response).expect("encode"));
            },
            iters,
        ),
    });
    out.push(CodecRow {
        op: "encode",
        kind: "outcome_response",
        wire: "v2",
        frame_bytes: resp_v2.len(),
        mean_ns: mean_ns(
            || {
                black_box(encode_response_v2(&response).expect("encode"));
            },
            iters,
        ),
    });
    out.push(CodecRow {
        op: "decode",
        kind: "outcome_response",
        wire: "v1",
        frame_bytes: resp_v1.len(),
        mean_ns: mean_ns(
            || {
                black_box(decode_response(&resp_v1).expect("decode"));
            },
            iters,
        ),
    });
    out.push(CodecRow {
        op: "decode",
        kind: "outcome_response",
        wire: "v2",
        frame_bytes: resp_v2.len(),
        mean_ns: mean_ns(
            || {
                black_box(decode_response_v2(resp_v2[4], &resp_v2[5..]).expect("decode"));
            },
            iters,
        ),
    });
    out
}

/// The `serve` binary the router bench spawns as shards: it is built into
/// the same directory as this snapshot binary.
fn serve_binary() -> Option<std::path::PathBuf> {
    let path = std::env::current_exe().ok()?.with_file_name("serve");
    path.exists().then_some(path)
}

/// The multi-configuration request mix the router rows measure: one
/// lithography configuration per shard, each chosen (by preference order)
/// to land on a distinct shard — a single-configuration stream would keep
/// every shard but one idle and the multi-shard rows meaningless.
fn tagged_cases(
    shards: usize,
    requests: usize,
) -> Vec<(camo_serve::wire::JobSpec, camo_workloads::ServeCase)> {
    use camo_serve::router::shard_preference;
    use camo_serve::wire::{JobSpec, LithoSpec};
    use camo_workloads::{multi_config_stream, RequestStreamParams};

    let litho_for = |px: i64| LithoSpec {
        pixel_size: Some(px),
        ..LithoSpec::fast()
    };
    let mut pixel_sizes: Vec<i64> = Vec::new();
    let mut covered = vec![false; shards];
    for px in 8i64..256 {
        let preferred = shard_preference(litho_for(px).to_config().fingerprint(), shards)[0];
        if !covered[preferred] {
            covered[preferred] = true;
            pixel_sizes.push(px);
        }
        if covered.iter().all(|&c| c) {
            break;
        }
    }
    multi_config_stream(&RequestStreamParams::smoke(), &pixel_sizes, 2024, requests)
        .into_iter()
        .map(|tagged| {
            let job = JobSpec {
                litho: litho_for(tagged.pixel_size),
                max_steps: Some(2),
                ..JobSpec::fast_calibre_via()
            };
            (job, tagged.case)
        })
        .collect()
}

/// Fires `cases` at `addr` and returns the wall-clock seconds; exits 1 on
/// any failed or missing response (after `drain` releases the serving
/// processes, so an exit never orphans spawned shards).
fn fire_cases(
    addr: std::net::SocketAddr,
    wire: camo_serve::WireVersion,
    cases: &[(camo_serve::wire::JobSpec, camo_workloads::ServeCase)],
    what: &str,
    drain: impl FnOnce(),
) -> f64 {
    use camo_serve::client::{collect_responses, Client, Completed};
    use camo_serve::exec::case_body;

    let mut drain = Some(drain);
    let mut client = match Client::connect_with(addr, wire) {
        Ok(client) => client,
        Err(e) => {
            (drain.take().expect("drain once"))();
            eprintln!("{what}: connect failed: {e}");
            std::process::exit(1);
        }
    };
    if client.wire() != wire {
        (drain.take().expect("drain once"))();
        eprintln!(
            "{what}: negotiated wire {} but the row measures {}",
            client.wire().as_str(),
            wire.as_str()
        );
        std::process::exit(1);
    }
    let start = Instant::now();
    let ids: Vec<u64> = cases
        .iter()
        .map(|(job, case)| client.send(case_body(case, job)).expect("send"))
        .collect();
    let results = collect_responses(&mut client, &ids).expect("responses");
    let secs = start.elapsed().as_secs_f64();
    let mut regression = None;
    for (id, completed) in &results {
        match completed {
            Completed::Single(_) | Completed::Sweep(_) => {}
            other => {
                regression = Some(format!("request {id} completed as {other:?}"));
                break;
            }
        }
    }
    if results.len() != cases.len() {
        regression = Some(format!("{} of {} responses", results.len(), cases.len()));
    }
    drop(client);
    // Drain before any exit: `process::exit` skips destructors, which
    // would orphan spawned shard processes.
    (drain.take().expect("drain once"))();
    if let Some(what_failed) = regression {
        eprintln!("{what} REGRESSION: {what_failed}");
        std::process::exit(1);
    }
    secs
}

/// Measures the same multi-configuration stream end-to-end twice — through
/// a direct single-process server, then through `router + shards` real
/// serve processes — and reports both rates. Both measurements speak
/// `wire` on the client connection (the router upgrades its shard
/// channels independently either way), so the overhead ratio isolates the
/// routing hop from the client-side encoding.
fn router_throughput(
    binary: &std::path::Path,
    shards: usize,
    requests: usize,
    wire: camo_serve::WireVersion,
) -> RouterRow {
    use camo_serve::router::{route_spawned, RouterConfig};
    use camo_serve::shard::{ShardSet, ShardSpec};
    use camo_serve::{serve, ServerConfig};

    let cases = tagged_cases(shards, requests);
    let configs = shards; // one configuration per shard, by construction

    let direct = serve(ServerConfig {
        threads: 1,
        queue_depth: requests.max(8),
        ..ServerConfig::default()
    })
    .expect("bind direct baseline server");
    let direct_addr = direct.addr();
    let direct_secs = fire_cases(direct_addr, wire, &cases, "DIRECT BENCH", move || {
        direct.shutdown();
    });

    let mut spec = ShardSpec::new(binary);
    spec.args = vec!["--threads".into(), "1".into()];
    let set = ShardSet::spawn(&spec, shards).unwrap_or_else(|e| {
        eprintln!("ROUTER BENCH: shard spawn failed: {e}");
        std::process::exit(1);
    });
    let handle = route_spawned(
        RouterConfig {
            queue_depth: requests.max(8),
            ..RouterConfig::default()
        },
        set,
    )
    .unwrap_or_else(|e| {
        eprintln!("ROUTER BENCH: router start failed: {e}");
        std::process::exit(1);
    });
    let routed_addr = handle.addr();
    let routed_secs = fire_cases(routed_addr, wire, &cases, "ROUTER BENCH", move || {
        handle.shutdown();
    });

    RouterRow {
        shards,
        wire,
        requests,
        configs,
        requests_per_s: requests as f64 / routed_secs,
        direct_requests_per_s: requests as f64 / direct_secs,
    }
}

/// Sends one `metrics` request on an already-connected client and blocks
/// for the report (control requests are answered inline by the reader).
fn fetch_metrics(client: &mut camo_serve::Client, what: &str) -> camo_serve::MetricsReport {
    use camo_serve::wire::{RequestBody, ResponseBody};
    let id = match client.send(RequestBody::Metrics) {
        Ok(id) => id,
        Err(e) => {
            eprintln!("{what}: metrics send failed: {e}");
            std::process::exit(1);
        }
    };
    loop {
        match client.recv() {
            Ok(Some(response)) if response.id == id => match response.body {
                ResponseBody::Metrics(report) => return report,
                other => {
                    eprintln!("{what}: unexpected metrics reply: {other:?}");
                    std::process::exit(1);
                }
            },
            Ok(Some(_)) => continue,
            Ok(None) => {
                eprintln!("{what}: eof while awaiting metrics");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("{what}: metrics recv failed: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Asserts the per-kind latency rows a serving process reported are
/// plausible: every kind the stream exercised has samples, and within each
/// row `count > 0`, `p50 ≤ p99` and `p99 ≥ 1 µs`. Exits 1 otherwise — this
/// is what makes the CI `--quick --serve` run a tail-latency gate.
fn validate_latency(latency: &[camo_serve::KindLatency], expected_kinds: &[&str], what: &str) {
    for row in latency {
        let s = &row.latency;
        if s.count == 0 || s.p50_us > s.p99_us || s.p99_us == 0 {
            eprintln!("{what} REGRESSION: implausible latency row {row:?}");
            std::process::exit(1);
        }
    }
    for kind in expected_kinds {
        if !latency.iter().any(|row| row.kind == *kind) {
            eprintln!("{what} REGRESSION: stream exercised `{kind}` but no latency row for it");
            std::process::exit(1);
        }
    }
}

/// Fires `requests` mixed requests at an in-process server with `threads`
/// batch workers and returns the end-to-end rate plus the server's
/// per-kind latency rows (validated); exits 1 on any failed or missing
/// response.
fn serve_throughput(threads: usize, requests: usize) -> (ServeRow, Vec<camo_serve::KindLatency>) {
    use camo_serve::client::{collect_responses, Client, Completed};
    use camo_serve::exec::case_body;
    use camo_serve::wire::JobSpec;
    use camo_serve::{serve, ServerConfig};
    use camo_workloads::{request_stream, RequestStreamParams};

    let handle = serve(ServerConfig {
        threads,
        queue_depth: requests.max(8),
        ..ServerConfig::default()
    })
    .expect("bind serve bench server");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let job = JobSpec {
        max_steps: Some(2),
        ..JobSpec::fast_calibre_via()
    };
    // Seed 2: its smoke stream mixes optimize/evaluate/sweep even in the
    // 12-request quick prefix, so the per-kind latency gate below covers
    // every kind in CI and not just the majority one.
    let cases = request_stream(&RequestStreamParams::smoke(), 2, requests);
    let start = Instant::now();
    let ids: Vec<u64> = cases
        .iter()
        .map(|case| client.send(case_body(case, &job)).expect("send"))
        .collect();
    let results = collect_responses(&mut client, &ids).expect("responses");
    let secs = start.elapsed().as_secs_f64();
    for (id, completed) in &results {
        match completed {
            Completed::Single(_) | Completed::Sweep(_) => {}
            other => {
                eprintln!("SERVE REGRESSION: request {id} completed as {other:?}");
                std::process::exit(1);
            }
        }
    }
    if results.len() != cases.len() {
        eprintln!(
            "SERVE REGRESSION: {} of {} responses",
            results.len(),
            cases.len()
        );
        std::process::exit(1);
    }
    let report = fetch_metrics(&mut client, "SERVE BENCH");
    let exercised: Vec<&str> = {
        let mut kinds: Vec<&str> = cases.iter().map(|c| c.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        kinds
    };
    validate_latency(&report.latency, &exercised, "SERVE BENCH");
    handle.shutdown();
    (
        ServeRow {
            threads,
            requests,
            requests_per_s: requests as f64 / secs,
        },
        report.latency,
    )
}

/// Measures the respawn-overhead row: the same multi-configuration stream
/// through a supervised 2-shard router tier, untouched and then with a
/// shard killed mid-stream, waiting for the supervisor to respawn the
/// victim before reading the tier's respawn count from `metrics`.
fn respawn_overhead(binary: &std::path::Path, requests: usize) -> RespawnRow {
    use camo_serve::client::{collect_responses, Client, Completed};
    use camo_serve::exec::case_body;
    use camo_serve::router::{route_spawned, RouterConfig};
    use camo_serve::shard::{ShardSet, ShardSpec};
    use camo_serve::supervise::RespawnPolicy;
    use std::time::Duration;

    let shards = 2usize;
    let cases = tagged_cases(shards, requests);
    let mut spec = ShardSpec::new(binary);
    spec.args = vec!["--threads".into(), "1".into()];
    let set = ShardSet::spawn(&spec, shards).unwrap_or_else(|e| {
        eprintln!("RESPAWN BENCH: shard spawn failed: {e}");
        std::process::exit(1);
    });
    let handle = route_spawned(
        RouterConfig {
            queue_depth: requests.max(8),
            probe_interval: Duration::from_millis(20),
            respawn: RespawnPolicy {
                initial_backoff: Duration::from_millis(50),
                max_backoff: Duration::from_millis(500),
                // The deliberate kill must not bench the victim.
                breaker_failures: 10_000,
                ..RespawnPolicy::default()
            },
            ..RouterConfig::default()
        },
        set,
    )
    .unwrap_or_else(|e| {
        eprintln!("RESPAWN BENCH: router start failed: {e}");
        std::process::exit(1);
    });

    // One closure measures a full stream pass; `kill` injects the failure
    // after half the stream is on the wire. Failures are returned, not
    // exited on: `process::exit` skips destructors, and the tier must be
    // drained first or the spawned shards would be orphaned.
    let run_pass = |kill: bool| -> Result<f64, String> {
        let mut client =
            Client::connect(handle.addr()).map_err(|e| format!("connect failed: {e}"))?;
        let start = Instant::now();
        let mut ids: Vec<u64> = Vec::new();
        for (i, (job, case)) in cases.iter().enumerate() {
            if kill && i == cases.len() / 2 {
                handle
                    .kill_shard(0)
                    .map_err(|e| format!("kill shard 0 failed: {e}"))?;
            }
            ids.push(
                client
                    .send(case_body(case, job))
                    .map_err(|e| format!("send failed: {e}"))?,
            );
        }
        let results =
            collect_responses(&mut client, &ids).map_err(|e| format!("responses: {e}"))?;
        let secs = start.elapsed().as_secs_f64();
        for (id, completed) in &results {
            match completed {
                Completed::Single(_) | Completed::Sweep(_) => {}
                other => return Err(format!("request {id} completed as {other:?}")),
            }
        }
        Ok(secs)
    };
    // The victim must come back before the tier is torn down — the row is
    // only evidence of self-healing if the respawn actually happened.
    let await_respawn = || -> Result<usize, String> {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let report = handle.metrics();
            if report.shards.iter().all(|s| s.alive) && report.respawns >= 1 {
                return Ok(report.respawns);
            }
            if Instant::now() >= deadline {
                return Err(format!("killed shard never respawned: {report:?}"));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    };
    let outcome = run_pass(false)
        .map_err(|e| format!("steady pass: {e}"))
        .and_then(|steady| {
            let respawn = run_pass(true).map_err(|e| format!("kill pass: {e}"))?;
            Ok((steady, respawn, await_respawn()?))
        });
    handle.shutdown();
    let (steady_secs, respawn_secs, respawns) = outcome.unwrap_or_else(|e| {
        eprintln!("RESPAWN BENCH REGRESSION: {e}");
        std::process::exit(1);
    });

    RespawnRow {
        shards,
        requests,
        steady_requests_per_s: requests as f64 / steady_secs,
        respawn_requests_per_s: requests as f64 / respawn_secs,
        respawns,
    }
}

/// Measures the tracing plane: a full-sample run (`trace_sample: 1`) must
/// record every server-side lifecycle stage in its flight recorder (exit 1
/// on any missing stage — the timeline is only useful if it is complete),
/// and the overhead row compares an untraced server against one with
/// tracing armed but sampled out (`trace_sample` far above the request
/// count). The sampled-out path is gated: every span clock read is behind
/// a `trace.is_some()` check, so the ratio must stay near 1 — more than
/// 1.4x is a regression and exits 1 (the bound is lenient because quick
/// CI runs measure a dozen requests on a shared box).
fn trace_overhead(requests: usize) -> TraceRow {
    use camo_serve::client::{collect_responses, Client, Completed};
    use camo_serve::exec::case_body;
    use camo_serve::wire::{JobSpec, RequestBody, ResponseBody};
    use camo_serve::{serve, ServerConfig};
    use camo_workloads::{request_stream, RequestStreamParams};

    let job = JobSpec {
        max_steps: Some(2),
        ..JobSpec::fast_calibre_via()
    };
    let cases = request_stream(&RequestStreamParams::smoke(), 2, requests);
    let run_pass = |trace_sample: u64, pull_stages: bool| -> (f64, Vec<String>) {
        let handle = serve(ServerConfig {
            threads: 1,
            queue_depth: requests.max(8),
            trace_sample,
            ..ServerConfig::default()
        })
        .expect("bind trace bench server");
        let mut client = Client::connect(handle.addr()).expect("connect");
        let start = Instant::now();
        let ids: Vec<u64> = cases
            .iter()
            .map(|case| client.send(case_body(case, &job)).expect("send"))
            .collect();
        let results = collect_responses(&mut client, &ids).expect("responses");
        let secs = start.elapsed().as_secs_f64();
        for (id, completed) in &results {
            match completed {
                Completed::Single(_) | Completed::Sweep(_) => {}
                other => {
                    eprintln!("TRACE BENCH REGRESSION: request {id} completed as {other:?}");
                    std::process::exit(1);
                }
            }
        }
        let mut stages = Vec::new();
        if pull_stages {
            let id = client.send(RequestBody::Trace).expect("trace send");
            loop {
                match client.recv() {
                    Ok(Some(response)) if response.id == id => match response.body {
                        ResponseBody::Trace(report) => {
                            stages = report.spans.iter().map(|s| s.stage.clone()).collect();
                            stages.sort_unstable();
                            stages.dedup();
                            break;
                        }
                        other => {
                            eprintln!("TRACE BENCH: unexpected trace reply: {other:?}");
                            std::process::exit(1);
                        }
                    },
                    Ok(Some(_)) => continue,
                    Ok(None) | Err(_) => {
                        eprintln!("TRACE BENCH: connection lost awaiting the trace pull");
                        std::process::exit(1);
                    }
                }
            }
        }
        handle.shutdown();
        (secs, stages)
    };

    // Full-sample pass: the stage-coverage evidence.
    let (_, stages) = run_pass(1, true);
    for expected in [
        "admit",
        "shard-queue",
        "coalesce",
        "context-fetch",
        "rasterize",
        "convolve",
        "resist",
        "epe",
        "pv-band",
        "encode",
        "write",
    ] {
        if !stages.iter().any(|s| s == expected) {
            eprintln!(
                "TRACE BENCH REGRESSION: full-sample run recorded no `{expected}` span \
                 (stages seen: {stages:?})"
            );
            std::process::exit(1);
        }
    }

    // Overhead passes, interleaved and best-of-two so one scheduler hiccup
    // cannot fail the gate in either direction.
    let mut baseline_secs = f64::INFINITY;
    let mut sampled_out_secs = f64::INFINITY;
    for _ in 0..2 {
        baseline_secs = baseline_secs.min(run_pass(0, false).0);
        sampled_out_secs = sampled_out_secs.min(run_pass(1_000_000, false).0);
    }
    let row = TraceRow {
        requests,
        baseline_requests_per_s: requests as f64 / baseline_secs,
        sampled_out_requests_per_s: requests as f64 / sampled_out_secs,
        stages_observed: stages.len(),
    };
    if row.overhead_vs_baseline() > 1.4 {
        eprintln!(
            "TRACE OVERHEAD REGRESSION: sampled-out tracing costs {:.2}x vs untraced \
             ({:.2} vs {:.2} req/s) — the disabled path must stay clock-free",
            row.overhead_vs_baseline(),
            row.sampled_out_requests_per_s,
            row.baseline_requests_per_s
        );
        std::process::exit(1);
    }
    row
}

/// Saturates a dispatcher-less server and counts the typed rejections: a
/// burst of `queue_depth + overflow` requests must yield exactly `overflow`
/// `busy` responses carrying the retry hint.
fn serve_saturation(queue_depth: usize, overflow: usize) -> ServeSaturation {
    use camo_serve::client::{collect_responses, Client, Completed};
    use camo_serve::exec::case_body;
    use camo_serve::wire::JobSpec;
    use camo_serve::{serve, ServerConfig};
    use camo_workloads::{request_stream, RequestStreamParams};

    let retry_after_ms = 50;
    let handle = serve(ServerConfig {
        queue_depth,
        dispatchers: 0,
        retry_after_ms,
        ..ServerConfig::default()
    })
    .expect("bind saturation server");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let job = JobSpec {
        max_steps: Some(1),
        ..JobSpec::fast_calibre_via()
    };
    let submitted = queue_depth + overflow;
    let cases = request_stream(&RequestStreamParams::smoke(), 7, submitted);
    let ids: Vec<u64> = cases
        .iter()
        .map(|case| client.send(case_body(case, &job)).expect("send"))
        .collect();
    // Only the overflow requests respond (with busy); the queued ones are
    // answered `shutting_down` when the server drains at shutdown.
    let rejected_ids = &ids[queue_depth..];
    let results = collect_responses(&mut client, rejected_ids).expect("rejections");
    let rejected = results
        .values()
        .filter(|c| matches!(c, Completed::Rejected { .. }))
        .count();
    if rejected != overflow {
        eprintln!("SERVE REGRESSION: {rejected} busy rejections, expected {overflow}");
        std::process::exit(1);
    }
    handle.shutdown();
    ServeSaturation {
        queue_depth,
        submitted,
        rejected,
        retry_after_ms,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let layout_mode = std::env::args().any(|a| a == "--layout") || !quick;
    let serve_mode = std::env::args().any(|a| a == "--serve") || !quick;
    let only_threads = std::env::args().any(|a| a == "--threads");
    let thread_counts: Vec<usize> = if only_threads {
        // 0 keeps its documented "all hardware threads" meaning; the row is
        // labelled with the resolved count.
        let requested = camo_bench::threads_from_args();
        vec![if requested == 0 {
            camo_runtime::available_threads()
        } else {
            requested
        }]
    } else {
        vec![1, 2, 4]
    };

    let case = &via_test_set()[0];
    // The px5 configuration of the tables, or the fast configuration for CI.
    let config = if quick {
        LithoConfig::fast()
    } else {
        LithoConfig::default()
    };
    let guard = config.guard_band_nm();
    let sim = LithoSimulator::new(config.clone());
    let opc = OpcConfig::via_layer();
    let mask = opc.initial_mask(&case.clip);
    let iters = if quick { 5 } else { 20 };

    let mut rows: Vec<Row> = Vec::new();

    // Mask rasterisation: analytic coverage vs 1 nm fine grid + downsample.
    rows.push(Row {
        op: "rasterize",
        mean_ns: mean_ns(
            || {
                black_box(camo_litho::rasterize_mask(&mask, config.pixel_size, guard));
            },
            iters,
        ),
        reference_ns: (!quick).then(|| {
            mean_ns(
                || {
                    black_box(reference::rasterize_mask(&mask, config.pixel_size, guard));
                },
                iters,
            )
        }),
    });

    // Full evaluation (nominal EPE + PV band).
    rows.push(Row {
        op: "evaluate",
        mean_ns: mean_ns(
            || {
                black_box(sim.evaluate(&mask));
            },
            iters,
        ),
        reference_ns: (!quick).then(|| {
            mean_ns(
                || {
                    black_box(reference::evaluate(&config, &mask, guard));
                },
                iters,
            )
        }),
    });

    // Stateless EPE-only evaluation.
    rows.push(Row {
        op: "evaluate_epe",
        mean_ns: mean_ns(
            || {
                black_box(sim.evaluate_epe(&mask));
            },
            iters,
        ),
        reference_ns: (!quick).then(|| {
            mean_ns(
                || {
                    black_box(reference::evaluate_epe(&config, &mask, guard));
                },
                iters,
            )
        }),
    });

    // The per-step inner-loop cost: move every segment, re-measure EPE.
    // Incremental session vs the seed loop's full re-evaluation.
    let n = mask.segment_count();
    let step_moves = [vec![1i64; n], vec![-1i64; n]];
    let mut session = sim.evaluator(&mask);
    let _ = session.epe();
    let mut flip = 0usize;
    let incremental_ns = mean_ns(
        || {
            session.apply_moves(&step_moves[flip % 2]);
            flip += 1;
            black_box(session.epe());
        },
        iters,
    );
    let reference_step_ns = (!quick).then(|| {
        let mut seed_mask = mask.clone();
        let mut flip_ref = 0usize;
        mean_ns(
            || {
                seed_mask.apply_moves(&step_moves[flip_ref % 2]);
                flip_ref += 1;
                black_box(reference::evaluate_epe(&config, &seed_mask, guard));
            },
            iters,
        )
    });
    rows.push(Row {
        op: "evaluate_epe_incremental_step",
        mean_ns: incremental_ns,
        reference_ns: reference_step_ns,
    });

    // One CAMO engine step end-to-end (decide + move + re-evaluate),
    // recorded for trend tracking (no seed equivalent to compare against).
    let mut engine_opc = opc.clone();
    engine_opc.max_steps = 1;
    engine_opc.early_exit_epe = 0.0;
    let mut engine = CamoEngine::new(engine_opc, CamoConfig::fast());
    rows.push(Row {
        op: "camo_optimize_step",
        mean_ns: mean_ns(
            || {
                black_box(engine.optimize(&case.clip, &sim));
            },
            5,
        ),
        reference_ns: None,
    });

    // SIMD section: every backend the host detects is micro-benched on the
    // three hot kernels — coverage rasterisation, separable convolution and
    // the EPE threshold sweep — and each result is verified bit-identical
    // to the scalar backend (exit 1 on divergence). The digest lines this
    // section prints depend only on result bits, so CI can diff them
    // between `CAMO_SIMD=scalar` and `CAMO_SIMD=auto` runs.
    use camo_litho::aerial::{aerial_image_on, convolve_separable_on, rasterize_mask_on};
    use camo_litho::epe::measure_epe_on;
    use camo_litho::simd::{self, ArchId};
    use camo_litho::{GaussianKernel, OpticalModel, ProcessCorner};

    let arches = simd::detected();
    let threshold = sim.threshold(ProcessCorner::nominal());
    let points = &mask.fragments().measure_points;
    let conv_taps = GaussianKernel::new(1.0, 25.0).taps(config.pixel_size, 0.0);
    let model = OpticalModel::default_dac_node();
    let scalar_raster = rasterize_mask_on(ArchId::Scalar, &mask, config.pixel_size, guard);
    let scalar_conv = convolve_separable_on(ArchId::Scalar, &scalar_raster, &conv_taps);
    let scalar_intensity = aerial_image_on(ArchId::Scalar, &scalar_raster, &model, 0.0);
    let scalar_epe = measure_epe_on(
        ArchId::Scalar,
        &scalar_intensity,
        threshold,
        points,
        config.epe_search_range,
    );
    let mut simd_rows: Vec<SimdRow> = Vec::new();
    let mut scalar_rates: [f64; 3] = [0.0; 3];
    for &arch in arches {
        let raster = rasterize_mask_on(arch, &mask, config.pixel_size, guard);
        let conv = convolve_separable_on(arch, &scalar_raster, &conv_taps);
        let intensity = aerial_image_on(arch, &scalar_raster, &model, 0.0);
        let epe = measure_epe_on(
            arch,
            &scalar_intensity,
            threshold,
            points,
            config.epe_search_range,
        );
        let same = raster
            .data()
            .iter()
            .zip(scalar_raster.data())
            .all(|(a, b)| a.to_bits() == b.to_bits())
            && conv
                .data()
                .iter()
                .zip(scalar_conv.data())
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && intensity
                .data()
                .iter()
                .zip(scalar_intensity.data())
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && epe
                .per_point
                .iter()
                .zip(&scalar_epe.per_point)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if !same {
            eprintln!(
                "SIMD PARITY REGRESSION: backend {} diverged from scalar at the bit level",
                arch.name()
            );
            std::process::exit(1);
        }
        let benches: [(&'static str, f64); 3] = [
            (
                "rasterize",
                mean_ns(
                    || {
                        black_box(rasterize_mask_on(arch, &mask, config.pixel_size, guard));
                    },
                    iters,
                ),
            ),
            (
                "convolve",
                mean_ns(
                    || {
                        black_box(convolve_separable_on(arch, &scalar_raster, &conv_taps));
                    },
                    iters,
                ),
            ),
            (
                "epe",
                mean_ns(
                    || {
                        black_box(measure_epe_on(
                            arch,
                            &scalar_intensity,
                            threshold,
                            points,
                            config.epe_search_range,
                        ));
                    },
                    iters,
                ),
            ),
        ];
        for (slot, (op, ns)) in benches.into_iter().enumerate() {
            let ops_per_s = 1e9 / ns;
            if arch == ArchId::Scalar {
                scalar_rates[slot] = ops_per_s;
            }
            simd_rows.push(SimdRow {
                op,
                arch: arch.name(),
                ops_per_s,
                speedup_vs_scalar: ops_per_s / scalar_rates[slot].max(f64::MIN_POSITIVE),
            });
        }
    }
    // The dispatched default path (honouring `CAMO_SIMD`) must agree with
    // scalar too — this is the pair the CI digest diff exercises.
    let dispatched_raster = camo_litho::rasterize_mask(&mask, config.pixel_size, guard);
    let dispatched_epe = sim.evaluate_epe(&mask);
    let raster_digest = bits_digest(dispatched_raster.data().iter().copied());
    let epe_digest = bits_digest(dispatched_epe.per_point.iter().copied());
    if raster_digest != bits_digest(scalar_raster.data().iter().copied())
        || epe_digest != bits_digest(scalar_epe.per_point.iter().copied())
    {
        eprintln!(
            "SIMD PARITY REGRESSION: dispatched path ({}) diverged from scalar",
            simd::active().name()
        );
        std::process::exit(1);
    }

    // Sparse-refresh accounting: two vias at opposite ends of a wide clip,
    // all segments moved at once — the bitmask-sparse refresh must touch
    // far fewer pixels than the dense union dirty window spans.
    let sparse_refresh = {
        let mut wide = camo_geometry::Clip::new(camo_geometry::Rect::new(0, 0, 8000, 1000));
        wide.add_target(camo_geometry::Rect::new(200, 465, 270, 535).to_polygon());
        wide.add_target(camo_geometry::Rect::new(7700, 465, 7770, 535).to_polygon());
        let wide_mask = opc.initial_mask(&wide);
        let mut session = sim.evaluator(&wide_mask);
        let all_outward = vec![1; wide_mask.segment_count()];
        session.apply_moves(&all_outward);
        let stats = session.last_refresh_stats();
        if stats.full || stats.rasterized_pixels >= stats.dirty_window_pixels {
            eprintln!(
                "SPARSE REFRESH REGRESSION: distant moves fell back to a dense refresh: {stats:?}"
            );
            std::process::exit(1);
        }
        SparseRefreshRow {
            rasterized_pixels: stats.rasterized_pixels,
            dirty_window_pixels: stats.dirty_window_pixels,
            sub_windows: stats.sub_windows,
        }
    };

    // Batch throughput over the full via test set: clips/s per pool size,
    // with every run checked bit-identical to the serial loop.
    let clips: Vec<camo_geometry::Clip> = via_test_set().iter().map(|c| c.clip.clone()).collect();
    let mut batch_opc = opc.clone();
    if quick {
        batch_opc.max_steps = 2;
    }
    let batch_engine = CamoEngine::new(batch_opc, CamoConfig::fast());
    let serial: Vec<_> = clips
        .iter()
        .map(|clip| batch_engine.clone().optimize(clip, &sim))
        .collect();
    let mut batch_rows: Vec<BatchRow> = Vec::new();
    for &threads in &thread_counts {
        let start = Instant::now();
        let outcomes = optimize_batch(&batch_engine, &clips, &sim, threads);
        let secs = start.elapsed().as_secs_f64();
        for (i, (parallel, reference)) in outcomes.iter().zip(&serial).enumerate() {
            let same = parallel.mask.offsets() == reference.mask.offsets()
                && parallel.result.epe.per_point == reference.result.epe.per_point
                && parallel.result.pv_band.to_bits() == reference.result.pv_band.to_bits();
            if !same {
                eprintln!(
                    "DETERMINISM REGRESSION: optimize_batch with {threads} threads diverged \
                     from the serial loop on clip {i}"
                );
                std::process::exit(1);
            }
        }
        batch_rows.push(BatchRow {
            threads,
            clips: clips.len(),
            clips_per_s: clips.len() as f64 / secs,
        });
    }

    // Layout-scale section: tiled sweep throughput (verified bit-identical
    // to whole-layout evaluation) plus the context-reuse speedup of the
    // batch path.
    let mut layout_rows: Vec<LayoutRow> = Vec::new();
    let mut layout_meta: Option<(String, usize, usize, i64)> = None;
    let mut context_reuse: Option<ContextReuse> = None;
    if layout_mode {
        let params = if quick {
            LayoutParams::smoke()
        } else {
            LayoutParams::default()
        };
        let layout_case = camo_workloads::generate_layout("Lbench", &params, 9002);
        let layout_mask = layout_case.initial_mask();
        let tiler = Tiler::new(LAYOUT_TILE_NM);
        let whole = sim.evaluate(&layout_mask);
        let layout_threads: Vec<usize> = if only_threads {
            thread_counts.clone()
        } else {
            vec![1, 2]
        };
        for &threads in &layout_threads {
            let start = Instant::now();
            let report = evaluate_layout(&sim, &layout_mask, &tiler, threads);
            let secs = start.elapsed().as_secs_f64();
            let epe_same = report.epe.per_point.len() == whole.epe.per_point.len()
                && report
                    .epe
                    .per_point
                    .iter()
                    .zip(&whole.epe.per_point)
                    .all(|(t, w)| t.to_bits() == w.to_bits());
            if !epe_same || report.pv_band.to_bits() != whole.pv_band.to_bits() {
                eprintln!(
                    "TILING REGRESSION: tiled layout sweep with {threads} threads diverged \
                     from whole-layout evaluation"
                );
                std::process::exit(1);
            }
            layout_meta = Some((
                layout_case.clip.name().to_string(),
                layout_case.via_count,
                report.tiles,
                tiler.tile_nm(),
            ));
            layout_rows.push(LayoutRow {
                threads,
                tiles_per_s: report.tiles as f64 / secs,
            });
        }

        // Context reuse on the batch evaluation path: one shared simulator
        // (context built once, workspaces pooled) sweeping every clip, vs a
        // cold `LithoSimulator::new` per evaluation — which is what every
        // session effectively paid before the shared-context refactor
        // (per-session tap derivation + workspace allocation).
        let eval_masks: Vec<camo_geometry::MaskState> = via_test_set()
            .iter()
            .map(|c| opc.initial_mask(&c.clip))
            .collect();
        // Quick smoke keeps the timed work small; the full run averages
        // more reps since its numbers are persisted into BENCH_litho.json.
        let reps = if quick { 3 } else { 5 };
        for m in &eval_masks {
            let _ = black_box(sim.evaluate(m)); // warm the pool
        }
        let start = Instant::now();
        for _ in 0..reps {
            for m in &eval_masks {
                let _ = black_box(sim.evaluate(m));
            }
        }
        let shared_s = start.elapsed().as_secs_f64() / reps as f64;
        let start = Instant::now();
        for _ in 0..reps {
            for m in &eval_masks {
                let cold_sim = LithoSimulator::new(config.clone());
                let _ = black_box(cold_sim.evaluate(m));
            }
        }
        let cold_s = start.elapsed().as_secs_f64() / reps as f64;
        context_reuse = Some(ContextReuse {
            clips: eval_masks.len(),
            shared_s,
            cold_s,
        });
    }

    // Codec micro-bench: v1 text vs v2 binary on mask-scale frames. Runs
    // in full mode and under the explicit `--codec` flag (the CI gate uses
    // `--quick --codec`); pure in-process encode/decode, no sockets.
    let codec_mode = std::env::args().any(|a| a == "--codec") || !quick;
    let codec = if codec_mode {
        codec_rows(if quick { 50 } else { 200 })
    } else {
        Vec::new()
    };

    // Serving section: end-to-end requests/s over loopback per worker-thread
    // count, plus the queue-saturation probe.
    let mut serve_rows: Vec<ServeRow> = Vec::new();
    let mut serve_latency: Vec<camo_serve::KindLatency> = Vec::new();
    let mut serve_sat: Option<ServeSaturation> = None;
    let mut trace_row: Option<TraceRow> = None;
    let mut router_rows: Vec<RouterRow> = Vec::new();
    let mut respawn_row: Option<RespawnRow> = None;
    let args: Vec<String> = std::env::args().collect();
    let shards_flag = args.iter().any(|a| a == "--shards");
    if serve_mode {
        let serve_threads: Vec<usize> = if only_threads {
            thread_counts.clone()
        } else {
            vec![1, 2]
        };
        let requests = if quick { 12 } else { 32 };
        for &threads in &serve_threads {
            let (row, latency) = serve_throughput(threads, requests);
            serve_rows.push(row);
            // The persisted latency rows come from the first (1-thread in
            // full mode) run; every run's rows were validated regardless.
            if serve_latency.is_empty() {
                serve_latency = latency;
            }
        }
        serve_sat = Some(serve_saturation(4, 4));
        trace_row = Some(trace_overhead(requests));

        // Router tier: explicit `--shards N`, or shard counts 1 and 2 in
        // full mode (where the rows are persisted).
        let shard_counts: Vec<usize> = if shards_flag {
            vec![camo_serve::cli::parsed_flag(&args, "--shards", 1usize)]
        } else if quick {
            Vec::new()
        } else {
            vec![1, 2]
        };
        if !shard_counts.is_empty() {
            match serve_binary() {
                Some(binary) => {
                    for &shards in &shard_counts {
                        // One row per client wire version: the router's
                        // shard channels negotiate v2 on their own, so the
                        // pair isolates what the client-leg encoding costs
                        // on the same mask-carrying stream.
                        for wire in [camo_serve::WireVersion::V1, camo_serve::WireVersion::V2] {
                            router_rows.push(router_throughput(&binary, shards, requests, wire));
                        }
                    }
                    respawn_row = Some(respawn_overhead(&binary, requests));
                }
                None if shards_flag => {
                    eprintln!(
                        "ROUTER BENCH: no `serve` binary next to perf_snapshot — \
                         run `cargo build --release -p camo-serve` first"
                    );
                    std::process::exit(1);
                }
                None => {
                    eprintln!(
                        "router rows skipped: no `serve` binary next to perf_snapshot \
                         (cargo build --release -p camo-serve)"
                    );
                }
            }
        }
    }

    // Human-readable report.
    println!(
        "perf snapshot — clip {} ({} segments), px{} guard {} nm",
        case.clip.name(),
        n,
        config.pixel_size,
        guard
    );
    for row in &rows {
        match row.speedup() {
            Some(s) => println!(
                "{:32} {:>14.0} ns  (reference {:>14.0} ns, speedup {:.1}x)",
                row.op,
                row.mean_ns,
                row.reference_ns.unwrap_or(0.0),
                s
            ),
            None => println!("{:32} {:>14.0} ns", row.op, row.mean_ns),
        }
    }
    let detected_names: Vec<&str> = arches.iter().map(|a| a.name()).collect();
    println!(
        "simd dispatch: active={} detected=[{}] (all backends bit-identical to scalar)",
        simd::active().name(),
        detected_names.join(", ")
    );
    for r in &simd_rows {
        println!(
            "simd {:10} [{:6}] {:>14.0} ops/s  ({:.2}x vs scalar)",
            r.op, r.arch, r.ops_per_s, r.speedup_vs_scalar
        );
    }
    // Result-bit digests: identical across `CAMO_SIMD` settings by the
    // parity contract — CI diffs these lines between scalar and auto runs.
    println!("simd digest rasterize 0x{raster_digest:016x}");
    println!("simd digest epe       0x{epe_digest:016x}");
    println!(
        "sparse refresh: {} px rasterized of {} px dense dirty window ({} sub-windows, {:.1}x skip)",
        sparse_refresh.rasterized_pixels,
        sparse_refresh.dirty_window_pixels,
        sparse_refresh.sub_windows,
        sparse_refresh.skip_ratio()
    );
    // Speedups are only meaningful against a measured 1-thread row.
    let serial_rate = batch_rows
        .iter()
        .find(|b| b.threads == 1)
        .map(|b| b.clips_per_s);
    for b in &batch_rows {
        let vs_serial = serial_rate
            .map(|s| format!(", {:.2}x vs 1 thread", b.clips_per_s / s))
            .unwrap_or_default();
        println!(
            "optimize_batch {:>2} thread(s)       {:>8.2} clips/s over {} clips (bit-identical to serial){}",
            b.threads, b.clips_per_s, b.clips, vs_serial
        );
    }
    if let Some((name, vias, tiles, tile_nm)) = &layout_meta {
        println!("layout sweep — {name} ({vias} vias, {tiles} tiles @ {tile_nm} nm cores)");
        let layout_serial = layout_rows
            .iter()
            .find(|r| r.threads == 1)
            .map(|r| r.tiles_per_s);
        for r in &layout_rows {
            let vs_serial = layout_serial
                .map(|s| format!(", {:.2}x vs 1 thread", r.tiles_per_s / s))
                .unwrap_or_default();
            println!(
                "evaluate_layout {:>2} thread(s)      {:>8.2} tiles/s (bit-identical to whole layout){}",
                r.threads, r.tiles_per_s, vs_serial
            );
        }
    }
    if let Some(cr) = &context_reuse {
        println!(
            "context reuse (batch evaluate, {} clips): shared {:.4}s vs cold-per-clip {:.4}s ({:.2}x)",
            cr.clips,
            cr.shared_s,
            cr.cold_s,
            cr.speedup()
        );
    }
    for r in &codec {
        println!(
            "codec {:6} {:17} [{}] {:>9} bytes  {:>12.0} ns/frame  ({:>10.0} frames/s)",
            r.op,
            r.kind,
            r.wire,
            r.frame_bytes,
            r.mean_ns,
            r.frames_per_s()
        );
    }
    if !codec.is_empty() {
        // The gate the CI step relies on: on the same mask-scale frame, a
        // full v2 encode+decode round trip must not be slower than v1's —
        // the binary framing exists to take text formatting off the hot
        // path, and this keeps that claim measured.
        for kind in ["optimize_request", "outcome_response"] {
            let total = |wire: &str| -> f64 {
                codec
                    .iter()
                    .filter(|r| r.kind == kind && r.wire == wire)
                    .map(|r| r.mean_ns)
                    .sum()
            };
            let (v1_ns, v2_ns) = (total("v1"), total("v2"));
            println!(
                "codec gate {:17} v2 encode+decode {:.2}x vs v1 ({:.0} ns vs {:.0} ns, gate >= 1.00x)",
                kind,
                v1_ns / v2_ns,
                v2_ns,
                v1_ns
            );
            if v2_ns > v1_ns {
                eprintln!(
                    "CODEC REGRESSION: v2 encode+decode of the mask-scale {kind} frame took \
                     {v2_ns:.0} ns vs {v1_ns:.0} ns for v1"
                );
                std::process::exit(1);
            }
        }
    }
    let serve_serial = serve_rows
        .iter()
        .find(|r| r.threads == 1)
        .map(|r| r.requests_per_s);
    for r in &serve_rows {
        let vs_serial = serve_serial
            .map(|s| format!(", {:.2}x vs 1 thread", r.requests_per_s / s))
            .unwrap_or_default();
        println!(
            "serve end-to-end {:>2} thread(s)     {:>8.2} req/s over {} mixed requests{}",
            r.threads, r.requests_per_s, r.requests, vs_serial
        );
    }
    for row in &serve_latency {
        println!(
            "serve latency {:<9}            count={:<6} p50={}us p99={}us max={}us",
            row.kind, row.latency.count, row.latency.p50_us, row.latency.p99_us, row.latency.max_us
        );
    }
    if let Some(sat) = &serve_sat {
        println!(
            "serve saturation: {} requests into queue depth {} -> {} typed busy rejections (retry_after {} ms)",
            sat.submitted, sat.queue_depth, sat.rejected, sat.retry_after_ms
        );
    }
    if let Some(t) = &trace_row {
        println!(
            "trace overhead: sampled-out {:.2} req/s vs untraced {:.2} req/s ({:.2}x, gate 1.40x); \
             full-sample run recorded {} distinct stage(s)",
            t.sampled_out_requests_per_s,
            t.baseline_requests_per_s,
            t.overhead_vs_baseline(),
            t.stages_observed
        );
    }
    for r in &router_rows {
        println!(
            "router end-to-end {:>2} shard(s) [{}] {:>8.2} req/s over {} mixed requests across {} config(s), \
             {:.2}x overhead vs direct ({:.2} req/s) on the same stream",
            r.shards,
            r.wire.as_str(),
            r.requests_per_s,
            r.requests,
            r.configs,
            r.overhead_vs_direct(),
            r.direct_requests_per_s
        );
    }
    if let Some(r) = &respawn_row {
        println!(
            "router kill/respawn {:>2} shard(s)  {:>8.2} req/s with a shard killed mid-stream vs \
             {:.2} req/s steady ({:.2}x overhead), {} respawn(s), every response complete",
            r.shards,
            r.respawn_requests_per_s,
            r.steady_requests_per_s,
            r.overhead_vs_steady(),
            r.respawns
        );
    }

    if quick {
        println!("\nquick mode: BENCH_litho.json left untouched");
        return;
    }

    // Machine-readable report.
    let mut json = String::from("{\n  \"bench\": \"litho_hot_path\",\n");
    let _ = writeln!(json, "  \"clip\": \"{}\",", case.clip.name());
    let _ = writeln!(json, "  \"pixel_size_nm\": {},", config.pixel_size);
    let _ = writeln!(json, "  \"guard_band_nm\": {},", guard);
    let _ = writeln!(json, "  \"segments\": {},", n);
    json.push_str("  \"ops\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"op\": \"{}\", \"mean_ns\": {:.0}, \"reference_mean_ns\": {}, \"speedup\": {}}}",
            row.op,
            row.mean_ns,
            row.reference_ns
                .map_or("null".to_string(), |r| format!("{r:.0}")),
            row.speedup().map_or("null".to_string(), |s| format!("{s:.2}")),
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"simd\": {{\"active\": \"{}\", \"detected\": [{}], \"bit_identical_to_scalar\": true, \"rows\": [",
        simd::active().name(),
        detected_names
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    for (i, r) in simd_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"op\": \"{}\", \"arch\": \"{}\", \"ops_per_s\": {:.1}, \"speedup_vs_scalar\": {:.2}}}",
            r.op, r.arch, r.ops_per_s, r.speedup_vs_scalar,
        );
        json.push_str(if i + 1 < simd_rows.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(
        json,
        "  ], \"sparse_refresh\": {{\"op\": \"apply_moves_distant_pair\", \"rasterized_pixels\": {}, \"dirty_window_pixels\": {}, \"sub_windows\": {}, \"skip_ratio\": {:.2}}}}},",
        sparse_refresh.rasterized_pixels,
        sparse_refresh.dirty_window_pixels,
        sparse_refresh.sub_windows,
        sparse_refresh.skip_ratio()
    );
    json.push_str("  \"batch\": [\n");
    for (i, b) in batch_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"op\": \"optimize_batch\", \"threads\": {}, \"clips\": {}, \"clips_per_s\": {:.3}, \"speedup_vs_1_thread\": {}}}",
            b.threads,
            b.clips,
            b.clips_per_s,
            serial_rate.map_or("null".to_string(), |s| format!(
                "{:.2}",
                b.clips_per_s / s
            )),
        );
        json.push_str(if i + 1 < batch_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    if let Some((name, vias, tiles, tile_nm)) = &layout_meta {
        let layout_serial = layout_rows
            .iter()
            .find(|r| r.threads == 1)
            .map(|r| r.tiles_per_s);
        let _ = writeln!(
            json,
            "  \"layout\": {{\"name\": \"{name}\", \"vias\": {vias}, \"tiles\": {tiles}, \"tile_nm\": {tile_nm}, \"bit_identical_to_whole_layout\": true, \"rows\": ["
        );
        for (i, r) in layout_rows.iter().enumerate() {
            let _ = write!(
                json,
                "    {{\"op\": \"evaluate_layout\", \"threads\": {}, \"tiles_per_s\": {:.3}, \"speedup_vs_1_thread\": {}}}",
                r.threads,
                r.tiles_per_s,
                layout_serial.map_or("null".to_string(), |s| format!("{:.2}", r.tiles_per_s / s)),
            );
            json.push_str(if i + 1 < layout_rows.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        json.push_str("  ]},\n");
    }
    if let Some(cr) = &context_reuse {
        let _ = writeln!(
            json,
            "  \"context_reuse\": {{\"op\": \"evaluate_batch_serial\", \"clips\": {}, \"shared_context_s\": {:.4}, \"cold_context_per_clip_s\": {:.4}, \"speedup\": {:.2}}},",
            cr.clips,
            cr.shared_s,
            cr.cold_s,
            cr.speedup()
        );
    } else {
        json.push_str("  \"context_reuse\": null,\n");
    }
    if codec.is_empty() {
        json.push_str("  \"codec\": null,\n");
    } else {
        json.push_str("  \"codec\": [\n");
        for (i, r) in codec.iter().enumerate() {
            let _ = write!(
                json,
                "    {{\"op\": \"{}\", \"kind\": \"{}\", \"wire\": \"{}\", \"frame_bytes\": {}, \"mean_ns\": {:.0}, \"frames_per_s\": {:.1}}}",
                r.op,
                r.kind,
                r.wire,
                r.frame_bytes,
                r.mean_ns,
                r.frames_per_s(),
            );
            json.push_str(if i + 1 < codec.len() { ",\n" } else { "\n" });
        }
        json.push_str("  ],\n");
    }
    if serve_rows.is_empty() && serve_sat.is_none() {
        json.push_str("  \"serve\": null\n");
    } else {
        json.push_str("  \"serve\": {\"rows\": [\n");
        for (i, r) in serve_rows.iter().enumerate() {
            let _ = write!(
                json,
                "    {{\"op\": \"serve_end_to_end\", \"threads\": {}, \"requests\": {}, \"requests_per_s\": {:.3}, \"speedup_vs_1_thread\": {}}}",
                r.threads,
                r.requests,
                r.requests_per_s,
                serve_serial.map_or("null".to_string(), |s| format!(
                    "{:.2}",
                    r.requests_per_s / s
                )),
            );
            json.push_str(if i + 1 < serve_rows.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        json.push_str("  ],\n  \"latency\": [\n");
        for (i, row) in serve_latency.iter().enumerate() {
            let _ = write!(
                json,
                "    {{\"kind\": \"{}\", \"count\": {}, \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
                row.kind, row.latency.count, row.latency.p50_us, row.latency.p99_us, row.latency.max_us,
            );
            json.push_str(if i + 1 < serve_latency.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        json.push_str("  ],\n");
        match &trace_row {
            Some(t) => {
                let _ = writeln!(
                    json,
                    "  \"trace\": {{\"op\": \"trace_sampled_out_overhead\", \"requests\": {}, \"baseline_requests_per_s\": {:.3}, \"sampled_out_requests_per_s\": {:.3}, \"overhead_vs_baseline\": {:.2}, \"stages_observed\": {}}},",
                    t.requests,
                    t.baseline_requests_per_s,
                    t.sampled_out_requests_per_s,
                    t.overhead_vs_baseline(),
                    t.stages_observed
                );
            }
            None => json.push_str("  \"trace\": null,\n"),
        }
        if router_rows.is_empty() {
            json.push_str("  \"router\": null,\n");
        } else {
            json.push_str("  \"router\": [\n");
            for (i, r) in router_rows.iter().enumerate() {
                let _ = write!(
                    json,
                    "    {{\"op\": \"router_end_to_end\", \"shards\": {}, \"wire\": \"{}\", \"configs\": {}, \"requests\": {}, \"requests_per_s\": {:.3}, \"direct_requests_per_s\": {:.3}, \"overhead_vs_direct\": {:.2}}}",
                    r.shards,
                    r.wire.as_str(),
                    r.configs,
                    r.requests,
                    r.requests_per_s,
                    r.direct_requests_per_s,
                    r.overhead_vs_direct(),
                );
                json.push_str(if i + 1 < router_rows.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            json.push_str("  ],\n");
        }
        match &respawn_row {
            Some(r) => {
                let _ = writeln!(
                    json,
                    "  \"respawn\": {{\"op\": \"router_kill_respawn\", \"shards\": {}, \"requests\": {}, \"steady_requests_per_s\": {:.3}, \"respawn_requests_per_s\": {:.3}, \"overhead_vs_steady\": {:.2}, \"respawns\": {}}},",
                    r.shards,
                    r.requests,
                    r.steady_requests_per_s,
                    r.respawn_requests_per_s,
                    r.overhead_vs_steady(),
                    r.respawns
                );
            }
            None => json.push_str("  \"respawn\": null,\n"),
        }
        match &serve_sat {
            Some(sat) => {
                let _ = writeln!(
                    json,
                    "  \"saturation\": {{\"queue_depth\": {}, \"submitted\": {}, \"rejected_busy\": {}, \"retry_after_ms\": {}}}}}",
                    sat.queue_depth, sat.submitted, sat.rejected, sat.retry_after_ms
                );
            }
            None => json.push_str("  \"saturation\": null}\n"),
        }
    }
    json.push_str("}\n");
    std::fs::write("BENCH_litho.json", &json).expect("write BENCH_litho.json");
    println!("\nwrote BENCH_litho.json");
}
