//! Performance snapshot of the lithography hot path.
//!
//! Times the scratch-buffer pipeline against the seed's reference
//! implementation on a paper-style via clip at the default px5
//! configuration, and writes `BENCH_litho.json` (op, mean ns, speedup)
//! so regressions are visible across PRs:
//!
//! ```text
//! cargo run --release -p camo-bench --bin perf_snapshot
//! ```

use camo::{CamoConfig, CamoEngine};
use camo_baselines::{OpcConfig, OpcEngine};
use camo_litho::{reference, LithoConfig, LithoSimulator};
use camo_workloads::via_test_set;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

fn mean_ns<F: FnMut()>(mut op: F, iters: usize) -> f64 {
    op(); // warm-up
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

struct Row {
    op: &'static str,
    mean_ns: f64,
    reference_ns: Option<f64>,
}

impl Row {
    fn speedup(&self) -> Option<f64> {
        self.reference_ns.map(|r| r / self.mean_ns)
    }
}

fn main() {
    let case = &via_test_set()[0];
    let config = LithoConfig::default(); // the px5 configuration of the tables
    let guard = config.guard_band_nm();
    let sim = LithoSimulator::new(config.clone());
    let opc = OpcConfig::via_layer();
    let mask = opc.initial_mask(&case.clip);
    let iters = 20;

    let mut rows: Vec<Row> = Vec::new();

    // Mask rasterisation: analytic coverage vs 1 nm fine grid + downsample.
    rows.push(Row {
        op: "rasterize",
        mean_ns: mean_ns(
            || {
                black_box(camo_litho::rasterize_mask(&mask, config.pixel_size, guard));
            },
            iters,
        ),
        reference_ns: Some(mean_ns(
            || {
                black_box(reference::rasterize_mask(&mask, config.pixel_size, guard));
            },
            iters,
        )),
    });

    // Full evaluation (nominal EPE + PV band).
    rows.push(Row {
        op: "evaluate",
        mean_ns: mean_ns(
            || {
                black_box(sim.evaluate(&mask));
            },
            iters,
        ),
        reference_ns: Some(mean_ns(
            || {
                black_box(reference::evaluate(&config, &mask, guard));
            },
            iters,
        )),
    });

    // Stateless EPE-only evaluation.
    rows.push(Row {
        op: "evaluate_epe",
        mean_ns: mean_ns(
            || {
                black_box(sim.evaluate_epe(&mask));
            },
            iters,
        ),
        reference_ns: Some(mean_ns(
            || {
                black_box(reference::evaluate_epe(&config, &mask, guard));
            },
            iters,
        )),
    });

    // The per-step inner-loop cost: move every segment, re-measure EPE.
    // Incremental session vs the seed loop's full re-evaluation.
    let n = mask.segment_count();
    let step_moves = [vec![1i64; n], vec![-1i64; n]];
    let mut session = sim.evaluator(&mask);
    let _ = session.epe();
    let mut flip = 0usize;
    let incremental_ns = mean_ns(
        || {
            session.apply_moves(&step_moves[flip % 2]);
            flip += 1;
            black_box(session.epe());
        },
        iters,
    );
    let mut seed_mask = mask.clone();
    let mut flip_ref = 0usize;
    let reference_step_ns = mean_ns(
        || {
            seed_mask.apply_moves(&step_moves[flip_ref % 2]);
            flip_ref += 1;
            black_box(reference::evaluate_epe(&config, &seed_mask, guard));
        },
        iters,
    );
    rows.push(Row {
        op: "evaluate_epe_incremental_step",
        mean_ns: incremental_ns,
        reference_ns: Some(reference_step_ns),
    });

    // One CAMO engine step end-to-end (decide + move + re-evaluate),
    // recorded for trend tracking (no seed equivalent to compare against).
    let mut engine_opc = opc.clone();
    engine_opc.max_steps = 1;
    engine_opc.early_exit_epe = 0.0;
    let mut engine = CamoEngine::new(engine_opc, CamoConfig::fast());
    rows.push(Row {
        op: "camo_optimize_step",
        mean_ns: mean_ns(
            || {
                black_box(engine.optimize(&case.clip, &sim));
            },
            5,
        ),
        reference_ns: None,
    });

    // Human-readable report.
    println!(
        "perf snapshot — clip {} ({} segments), px{} guard {} nm",
        case.clip.name(),
        n,
        config.pixel_size,
        guard
    );
    for row in &rows {
        match row.speedup() {
            Some(s) => println!(
                "{:32} {:>14.0} ns  (reference {:>14.0} ns, speedup {:.1}x)",
                row.op,
                row.mean_ns,
                row.reference_ns.unwrap_or(0.0),
                s
            ),
            None => println!("{:32} {:>14.0} ns", row.op, row.mean_ns),
        }
    }

    // Machine-readable report.
    let mut json = String::from("{\n  \"bench\": \"litho_hot_path\",\n");
    let _ = writeln!(json, "  \"clip\": \"{}\",", case.clip.name());
    let _ = writeln!(json, "  \"pixel_size_nm\": {},", config.pixel_size);
    let _ = writeln!(json, "  \"guard_band_nm\": {},", guard);
    let _ = writeln!(json, "  \"segments\": {},", n);
    json.push_str("  \"ops\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"op\": \"{}\", \"mean_ns\": {:.0}, \"reference_mean_ns\": {}, \"speedup\": {}}}",
            row.op,
            row.mean_ns,
            row.reference_ns
                .map_or("null".to_string(), |r| format!("{r:.0}")),
            row.speedup().map_or("null".to_string(), |s| format!("{s:.2}")),
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_litho.json", &json).expect("write BENCH_litho.json");
    println!("\nwrote BENCH_litho.json");
}
