//! Reproduces Figure 6 of the CAMO paper: target pattern, optimised mask,
//! printed contour and PV band for a metal case (M10 by default).
//!
//! Run with `cargo run -p camo-bench --release --bin fig6_visualize`
//! (append `--quick` to use a smaller case and coarser lithography).
//! PGM images are written to `target/fig6/`.

use camo::{CamoEngine, CamoTrainer};
use camo_baselines::{OpcConfig, OpcEngine};
use camo_bench::viz::{ascii_preview, write_pgm};
use camo_bench::ExperimentScale;
use camo_geometry::{Clip, Raster};
use camo_litho::{LithoSimulator, ProcessCorner};
use camo_workloads::{metal_test_set, metal_training_set};
use std::path::PathBuf;

fn main() {
    let scale = ExperimentScale::from_args();
    println!("== Figure 6: OPC result visualisation ==");
    println!("scale: {scale:?}\n");

    let simulator = LithoSimulator::new(scale.litho());
    let opc = OpcConfig::metal_layer();
    let metal = metal_test_set();
    let case = match scale {
        ExperimentScale::Quick => &metal[7], // the small M8 clip
        ExperimentScale::Full => &metal[9],  // M10 as in the paper
    };
    println!(
        "case: {} ({} measure points)",
        case.clip.name(),
        case.measure_points
    );

    // Train CAMO briefly and optimise the case.
    let train: Vec<Clip> = metal_training_set()
        .iter()
        .map(|c| c.clip.clone())
        .collect();
    let train = match scale {
        ExperimentScale::Quick => train[..1].to_vec(),
        ExperimentScale::Full => train,
    };
    let mut engine = CamoEngine::new(opc, scale.camo_config());
    let mut trainer = CamoTrainer::new(&engine);
    trainer.train(&mut engine, &train, &simulator);
    let outcome = engine.optimize(&case.clip, &simulator);
    println!(
        "final EPE = {:.0} nm, PV band = {:.0} nm^2, {} steps\n",
        outcome.total_epe(),
        outcome.pv_band(),
        outcome.steps
    );

    // (a) target, (b) mask, (c) printed contour, (d) PV band.
    let pixel = simulator.config().pixel_size;
    let mut target = Raster::new(case.clip.region(), pixel);
    for p in case.clip.targets() {
        target.fill_polygon(p, 1.0);
    }
    let mask_image = simulator.rasterize(&outcome.mask);
    let printed = simulator.printed(&outcome.mask, ProcessCorner::nominal());
    let pv_band = simulator.pv_band_image(&outcome.mask);

    let out_dir = PathBuf::from("target/fig6");
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    for (name, image) in [
        ("a_target", &target),
        ("b_mask", &mask_image),
        ("c_contour", &printed),
        ("d_pvband", &pv_band),
    ] {
        let path = out_dir.join(format!("{name}.pgm"));
        write_pgm(image, &path).expect("write PGM");
        println!("wrote {}", path.display());
    }

    println!("\n(a) target pattern:\n{}", ascii_preview(&target, 48));
    println!("(b) optimised mask:\n{}", ascii_preview(&mask_image, 48));
    println!(
        "(c) printed contour (nominal):\n{}",
        ascii_preview(&printed, 48)
    );
    println!("(d) PV band:\n{}", ascii_preview(&pv_band, 48));
}
