//! Visualisation helpers for the Figure-6 style outputs.
//!
//! The paper's Figure 6 shows, for one metal case, (a) the target pattern,
//! (b) the optimised mask, (c) the printed contour and (d) the PV band. This
//! module renders each as a portable graymap (PGM) image plus a compact ASCII
//! preview for terminals.

use camo_geometry::Raster;
use std::io;
use std::path::Path;

/// Writes a raster as an 8-bit binary PGM file, scaling values to `[0, 255]`.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn write_pgm(raster: &Raster, path: &Path) -> io::Result<()> {
    let max = raster.max().max(1e-12);
    let mut content = Vec::new();
    content
        .extend_from_slice(format!("P5\n{} {}\n255\n", raster.width(), raster.height()).as_bytes());
    // PGM rows go top-to-bottom; our rasters are bottom-up.
    for iy in (0..raster.height()).rev() {
        for ix in 0..raster.width() {
            let v = (raster.get(ix, iy) / max * 255.0).round().clamp(0.0, 255.0) as u8;
            content.push(v);
        }
    }
    std::fs::write(path, content)
}

/// Renders a coarse ASCII preview of a raster (`#` for filled, `.` for empty),
/// downsampled to at most `max_cols` columns.
pub fn ascii_preview(raster: &Raster, max_cols: usize) -> String {
    let stride = (raster.width() / max_cols.max(1)).max(1);
    let threshold = raster.max() * 0.5;
    let mut out = String::new();
    let mut iy = raster.height();
    while iy >= stride {
        iy -= stride;
        for ix in (0..raster.width()).step_by(stride) {
            out.push(if raster.get(ix, iy) > threshold && threshold > 0.0 {
                '#'
            } else {
                '.'
            });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use camo_geometry::{Raster, Rect};

    #[test]
    fn pgm_roundtrip_writes_header_and_pixels() {
        let mut r = Raster::new(Rect::new(0, 0, 40, 20), 10);
        r.fill_rect(Rect::new(0, 0, 20, 20), 1.0);
        let dir = std::env::temp_dir().join("camo_viz_test.pgm");
        write_pgm(&r, &dir).expect("write PGM");
        let bytes = std::fs::read(&dir).expect("read back");
        assert!(bytes.starts_with(b"P5\n4 2\n255\n"));
        assert_eq!(bytes.len(), "P5\n4 2\n255\n".len() + 8);
        std::fs::remove_file(dir).ok();
    }

    #[test]
    fn ascii_preview_marks_filled_cells() {
        let mut r = Raster::new(Rect::new(0, 0, 100, 100), 10);
        r.fill_rect(Rect::new(0, 0, 50, 100), 1.0);
        let preview = ascii_preview(&r, 10);
        assert!(preview.contains('#'));
        assert!(preview.contains('.'));
    }

    #[test]
    fn empty_raster_preview_has_no_marks() {
        let r = Raster::new(Rect::new(0, 0, 100, 100), 10);
        let preview = ascii_preview(&r, 10);
        assert!(!preview.contains('#'));
    }
}
