//! Experiment runners reproducing the paper's tables and figures.

use camo::{CamoConfig, CamoEngine, CamoTrainer, Modulator};
use camo_baselines::{
    CalibreLikeOpc, DamoLikeOpc, OpcConfig, OpcEngine, RlOpc, RlOpcConfig, TimedEngine,
};
use camo_geometry::{Clip, FeatureConfig};
use camo_litho::{LithoConfig, LithoSimulator, ResistModel};
use camo_runtime::sweep_cases;
use camo_workloads::{metal_test_set, metal_training_set, via_test_set, via_training_set};

/// How much compute an experiment run is allowed to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Reduced case count, coarse lithography, minimal training. Used by the
    /// integration tests and Criterion benches.
    Quick,
    /// All benchmark cases, the default lithography resolution and the full
    /// (CPU-sized) training schedule. Used by the table binaries.
    Full,
}

impl ExperimentScale {
    /// Parses `--quick` from the process arguments (defaults to `Full`).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Self::Quick
        } else {
            Self::Full
        }
    }

    /// True for the reduced scale.
    pub fn is_quick(&self) -> bool {
        matches!(self, Self::Quick)
    }

    /// Lithography configuration for this scale.
    ///
    /// The resist threshold is calibrated to 0.40 (the library default is
    /// 0.34) so that the standard +3 nm initial retarget does **not** already
    /// meet the early-exit criterion on the SRAF-assisted via benchmarks —
    /// otherwise every engine would trivially tie. This mirrors the paper's
    /// setting, where the benchmarks require 5–10 correction iterations.
    pub fn litho(&self) -> LithoConfig {
        let resist = ResistModel::new(0.40, 40.0);
        match self {
            Self::Quick => LithoConfig {
                resist,
                ..LithoConfig::fast()
            },
            Self::Full => LithoConfig {
                resist,
                ..LithoConfig::default()
            },
        }
    }

    /// CAMO hyper-parameters for this scale.
    pub fn camo_config(&self) -> CamoConfig {
        match self {
            Self::Quick => CamoConfig::fast(),
            Self::Full => CamoConfig {
                features: FeatureConfig {
                    window: 500,
                    tensor_size: 16,
                },
                embedding: 128,
                hidden: 64,
                rnn_layers: 3,
                imitation_epochs: 12,
                teacher_steps: 5,
                // A single REINFORCE epoch: at CPU-scale budgets longer
                // Phase-2 runs destabilise the behaviour-cloned policy (the
                // very failure mode the paper's modulator mitigates at full
                // GPU-scale budgets).
                rl_epochs: 1,
                reinforce: camo_rl::ReinforceConfig {
                    gamma: 0.95,
                    normalize: false,
                },
                ..CamoConfig::default()
            },
        }
    }

    /// RL-OPC hyper-parameters for this scale.
    pub fn rl_opc_config(&self) -> RlOpcConfig {
        match self {
            Self::Quick => RlOpcConfig {
                features: FeatureConfig {
                    window: 300,
                    tensor_size: 8,
                },
                hidden: 16,
                ..RlOpcConfig::default()
            },
            Self::Full => RlOpcConfig::default(),
        }
    }

    /// Number of RL-OPC training epochs for this scale.
    pub fn rl_opc_epochs(&self) -> usize {
        match self {
            Self::Quick => 1,
            Self::Full => 3,
        }
    }

    fn truncate<T: Clone>(&self, cases: &[T], quick_len: usize) -> Vec<T> {
        match self {
            Self::Quick => cases.iter().take(quick_len).cloned().collect(),
            Self::Full => cases.to_vec(),
        }
    }
}

/// Parses `--threads N` from the process arguments (defaults to 1, the
/// serial sweep; 0 means "all hardware threads").
pub fn threads_from_args() -> usize {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            return args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--threads requires a non-negative integer");
        }
    }
    1
}

/// One engine's results on one benchmark case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseResult {
    /// Case name (`V1`…`V13` or `M1`…`M10`).
    pub case: String,
    /// Total |EPE| over the case's measure points, nm.
    pub epe: f64,
    /// PV-band area, nm².
    pub pvb: f64,
    /// Wall-clock runtime, s.
    pub runtime: f64,
}

/// One engine's results across a benchmark suite.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineRow {
    /// Engine name.
    pub engine: String,
    /// Per-case results, in suite order.
    pub cases: Vec<CaseResult>,
}

impl EngineRow {
    /// Sum of EPE over all cases, nm.
    pub fn epe_sum(&self) -> f64 {
        self.cases.iter().map(|c| c.epe).sum()
    }

    /// Sum of PV band over all cases, nm².
    pub fn pvb_sum(&self) -> f64 {
        self.cases.iter().map(|c| c.pvb).sum()
    }

    /// Sum of runtime over all cases, s.
    pub fn runtime_sum(&self) -> f64 {
        self.cases.iter().map(|c| c.runtime).sum()
    }
}

/// Results of one table experiment (one row per engine).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSummary {
    /// Benchmark case names, in order.
    pub case_names: Vec<String>,
    /// Per-case measure-point (or via) counts.
    pub case_sizes: Vec<usize>,
    /// One row per engine, in presentation order (CAMO last).
    pub rows: Vec<EngineRow>,
}

impl ExperimentSummary {
    /// The CAMO row (always present, always last).
    ///
    /// # Panics
    ///
    /// Panics if the summary is empty.
    pub fn camo_row(&self) -> &EngineRow {
        self.rows.last().expect("summary has at least the CAMO row")
    }

    /// Row by engine name.
    pub fn row(&self, engine: &str) -> Option<&EngineRow> {
        self.rows.iter().find(|r| r.engine == engine)
    }
}

fn run_engine<E: OpcEngine + Clone + Sync>(
    name: &str,
    engine: &E,
    clips: &[(String, Clip)],
    simulator: &LithoSimulator,
    threads: usize,
) -> EngineRow {
    // Clock-free engines (CAMO) report Duration::ZERO; the wrapper times
    // every optimize call so the tables show real wall-clock figures.
    let timed = TimedEngine(engine.clone());
    let cases = sweep_cases(&timed, clips, simulator, threads)
        .into_iter()
        .map(|(case, outcome)| CaseResult {
            case,
            epe: outcome.total_epe(),
            pvb: outcome.pv_band(),
            runtime: outcome.runtime_secs(),
        })
        .collect();
    EngineRow {
        engine: name.to_string(),
        cases,
    }
}

/// Reproduces **Table 1**: via-layer comparison of DAMO-like, Calibre-like,
/// RL-OPC and CAMO, with the test-set sweep running serially.
pub fn run_via_experiment(scale: ExperimentScale) -> ExperimentSummary {
    run_via_experiment_threaded(scale, 1)
}

/// [`run_via_experiment`] with the per-case sweep of every engine spread
/// over `threads` pool workers. Results are bit-identical to the serial
/// sweep at any thread count (engines decide greedily and are cloned per
/// clip).
pub fn run_via_experiment_threaded(scale: ExperimentScale, threads: usize) -> ExperimentSummary {
    let simulator = LithoSimulator::new(scale.litho());
    let opc = OpcConfig::via_layer();

    let train_cases = scale.truncate(&via_training_set(), 2);
    let test_cases = scale.truncate(&via_test_set(), 3);
    let train_clips: Vec<Clip> = train_cases.iter().map(|c| c.clip.clone()).collect();
    let test_clips: Vec<(String, Clip)> = test_cases
        .iter()
        .map(|c| (c.clip.name().to_string(), c.clip.clone()))
        .collect();

    // DAMO-like: fit the one-shot gain on the training set.
    let mut damo = DamoLikeOpc::new(opc.clone());
    damo.fit(&train_clips, &simulator);

    // Calibre-like needs no training.
    let calibre = CalibreLikeOpc::new(opc.clone());

    // RL-OPC: brief REINFORCE training.
    let mut rl_opc = RlOpc::new(opc.clone(), scale.rl_opc_config());
    rl_opc.train(&train_clips, &simulator, scale.rl_opc_epochs());

    // CAMO: two-phase training, with per-clip episodes on the pool.
    let mut camo = CamoEngine::new(opc, scale.camo_config());
    let trainer = CamoTrainer::new(&camo);
    camo_runtime::train(&trainer, &mut camo, &train_clips, &simulator, threads);

    let rows = vec![
        run_engine("DAMO-like", &damo, &test_clips, &simulator, threads),
        run_engine("Calibre-like", &calibre, &test_clips, &simulator, threads),
        run_engine("RL-OPC", &rl_opc, &test_clips, &simulator, threads),
        run_engine("CAMO", &camo, &test_clips, &simulator, threads),
    ];

    ExperimentSummary {
        case_names: test_cases
            .iter()
            .map(|c| c.clip.name().to_string())
            .collect(),
        case_sizes: test_cases.iter().map(|c| c.via_count).collect(),
        rows,
    }
}

/// Reproduces **Table 2**: metal-layer comparison of Calibre-like, RL-OPC and
/// CAMO, with the test-set sweep running serially.
pub fn run_metal_experiment(scale: ExperimentScale) -> ExperimentSummary {
    run_metal_experiment_threaded(scale, 1)
}

/// [`run_metal_experiment`] with the per-case sweep of every engine spread
/// over `threads` pool workers (bit-identical to the serial sweep).
pub fn run_metal_experiment_threaded(scale: ExperimentScale, threads: usize) -> ExperimentSummary {
    let simulator = LithoSimulator::new(scale.litho());
    let opc = OpcConfig::metal_layer();

    let train_cases = scale.truncate(&metal_training_set(), 2);
    let test_cases = scale.truncate(&metal_test_set(), 2);
    let train_clips: Vec<Clip> = train_cases.iter().map(|c| c.clip.clone()).collect();
    let test_clips: Vec<(String, Clip)> = test_cases
        .iter()
        .map(|c| (c.clip.name().to_string(), c.clip.clone()))
        .collect();

    let calibre = CalibreLikeOpc::new(opc.clone());

    let mut rl_opc = RlOpc::new(opc.clone(), scale.rl_opc_config());
    rl_opc.train(&train_clips, &simulator, scale.rl_opc_epochs());

    let mut camo = CamoEngine::new(opc, scale.camo_config());
    let trainer = CamoTrainer::new(&camo);
    camo_runtime::train(&trainer, &mut camo, &train_clips, &simulator, threads);

    let rows = vec![
        run_engine("Calibre-like", &calibre, &test_clips, &simulator, threads),
        run_engine("RL-OPC", &rl_opc, &test_clips, &simulator, threads),
        run_engine("CAMO", &camo, &test_clips, &simulator, threads),
    ];

    ExperimentSummary {
        case_names: test_cases
            .iter()
            .map(|c| c.clip.name().to_string())
            .collect(),
        case_sizes: test_cases.iter().map(|c| c.measure_points).collect(),
        rows,
    }
}

/// EPE trajectories with and without the modulator on selected metal cases
/// (the **Figure 5** ablation).
#[derive(Debug, Clone, PartialEq)]
pub struct ModulatorTrace {
    /// Case name.
    pub case: String,
    /// Total |EPE| per step with the modulator enabled.
    pub with_modulator: Vec<f64>,
    /// Total |EPE| per step with the modulator disabled.
    pub without_modulator: Vec<f64>,
}

impl ModulatorTrace {
    /// Final EPE with the modulator, nm.
    pub fn converged_epe(&self) -> f64 {
        *self.with_modulator.last().expect("non-empty trajectory")
    }

    /// Range (max − min) of the trajectory after the first step — a measure of
    /// fluctuation.
    pub fn fluctuation(trace: &[f64]) -> f64 {
        let max = trace.iter().cloned().fold(f64::MIN, f64::max);
        let min = trace.iter().cloned().fold(f64::MAX, f64::min);
        max - min
    }
}

/// Runs the modulator ablation on metal cases M2 and M4 (indices 1 and 3).
pub fn run_modulator_ablation(scale: ExperimentScale) -> Vec<ModulatorTrace> {
    let simulator = LithoSimulator::new(scale.litho());
    let opc = OpcConfig::metal_layer();
    let metal = metal_test_set();
    let selected: Vec<usize> = match scale {
        ExperimentScale::Quick => vec![1],
        ExperimentScale::Full => vec![1, 3],
    };
    let train_cases = scale.truncate(&metal_training_set(), 1);
    let train_clips: Vec<Clip> = train_cases.iter().map(|c| c.clip.clone()).collect();

    selected
        .into_iter()
        .map(|idx| {
            let case = &metal[idx];
            let mut with = CamoEngine::new(opc.clone(), scale.camo_config());
            let mut trainer = CamoTrainer::new(&with);
            trainer.train(&mut with, &train_clips, &simulator);
            let with_outcome = with.optimize(&case.clip, &simulator);

            let mut without = CamoEngine::new(opc.clone(), scale.camo_config().without_modulator());
            let mut trainer = CamoTrainer::new(&without);
            trainer.train(&mut without, &train_clips, &simulator);
            let without_outcome = without.optimize(&case.clip, &simulator);

            ModulatorTrace {
                case: case.clip.name().to_string(),
                with_modulator: with_outcome.epe_trajectory,
                without_modulator: without_outcome.epe_trajectory,
            }
        })
        .collect()
}

/// The modulator preference vectors for a sweep of EPE values — the data
/// behind **Figure 4**.
pub fn modulator_projection_rows() -> Vec<(f64, [f64; 5])> {
    let modulator = Modulator::paper_default();
    [-8.0, -4.0, -2.0, -1.0, 0.0, 1.0, 2.0, 4.0, 8.0]
        .into_iter()
        .map(|epe| (epe, modulator.preference(epe)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_rows_cover_both_signs() {
        let rows = modulator_projection_rows();
        assert_eq!(rows.len(), 9);
        let (epe, pref) = rows[0];
        assert!(epe < 0.0);
        assert!(pref[0] > pref[4]);
        let (epe, pref) = rows[rows.len() - 1];
        assert!(epe > 0.0);
        assert!(pref[4] > pref[0]);
    }

    #[test]
    fn scale_quick_truncates_cases() {
        let scale = ExperimentScale::Quick;
        assert_eq!(scale.truncate(&[1, 2, 3, 4, 5], 2), vec![1, 2]);
        let full = ExperimentScale::Full;
        assert_eq!(full.truncate(&[1, 2, 3], 1), vec![1, 2, 3]);
    }

    #[test]
    fn engine_row_sums() {
        let row = EngineRow {
            engine: "X".into(),
            cases: vec![
                CaseResult {
                    case: "A".into(),
                    epe: 10.0,
                    pvb: 100.0,
                    runtime: 1.0,
                },
                CaseResult {
                    case: "B".into(),
                    epe: 20.0,
                    pvb: 200.0,
                    runtime: 2.0,
                },
            ],
        };
        assert_eq!(row.epe_sum(), 30.0);
        assert_eq!(row.pvb_sum(), 300.0);
        assert_eq!(row.runtime_sum(), 3.0);
    }
}
