//! The checked-in baseline (`lint-baseline.txt`): pre-existing findings
//! recorded as visible debt. `camo-lint --deny-new` fails only on
//! findings *not* in the baseline, so new violations cannot land while
//! old ones stay diffable in review instead of silently allowlisted.
//!
//! Keys are content-addressed — `rule`, `path`, the trimmed source line,
//! and an occurrence index among identical lines — so pure line-number
//! drift (code moving up or down a file) does not invalidate entries.

use crate::Finding;
use std::collections::BTreeMap;

/// One baseline entry (also the dedup key for findings).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Key {
    /// Rule identifier.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// Occurrence index among findings in the file sharing rule+line text.
    pub occurrence: usize,
    /// The trimmed text of the offending source line.
    pub line_text: String,
}

/// Assigns every finding its content-addressed key.
pub fn keys_for(findings: &[Finding]) -> Vec<Key> {
    let mut counts: BTreeMap<(String, String, String), usize> = BTreeMap::new();
    findings
        .iter()
        .map(|f| {
            let slot = counts
                .entry((f.rule.to_string(), f.path.clone(), f.line_text.clone()))
                .or_insert(0);
            let occurrence = *slot;
            *slot += 1;
            Key {
                rule: f.rule.to_string(),
                path: f.path.clone(),
                occurrence,
                line_text: f.line_text.clone(),
            }
        })
        .collect()
}

/// Parses a baseline file; lines are `rule<TAB>path<TAB>occ<TAB>text`.
pub fn parse(text: &str) -> Result<Vec<Key>, String> {
    let mut keys = Vec::new();
    for (n, raw) in text.lines().enumerate() {
        if raw.trim().is_empty() || raw.starts_with('#') {
            continue;
        }
        let mut parts = raw.splitn(4, '\t');
        let (rule, path, occ, line_text) = (
            parts.next().unwrap_or(""),
            parts.next().unwrap_or(""),
            parts.next().unwrap_or(""),
            parts.next().unwrap_or(""),
        );
        let occurrence: usize = occ
            .parse()
            .map_err(|_| format!("lint-baseline.txt:{}: malformed entry: {raw}", n + 1))?;
        if rule.is_empty() || path.is_empty() {
            return Err(format!(
                "lint-baseline.txt:{}: malformed entry: {raw}",
                n + 1
            ));
        }
        keys.push(Key {
            rule: rule.to_string(),
            path: path.to_string(),
            occurrence,
            line_text: line_text.to_string(),
        });
    }
    Ok(keys)
}

/// Renders keys back into the baseline file format.
pub fn render(keys: &[Key]) -> String {
    let mut out = String::from(
        "# camo-lint baseline: pre-existing findings tolerated by --deny-new.\n\
         # One entry per line: rule<TAB>path<TAB>occurrence<TAB>trimmed source line.\n\
         # Regenerate with `camo-lint --write-baseline`; shrink it by fixing debt.\n",
    );
    let mut sorted = keys.to_vec();
    sorted.sort();
    for k in &sorted {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\n",
            k.rule, k.path, k.occurrence, k.line_text
        ));
    }
    out
}
