//! The per-file analysis unit handed to every rule: the token stream,
//! raw lines, and which token ranges are test-only code.

use crate::lexer::{lex, TokKind, Token};

/// One lexed source file plus the derived facts rules share.
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
    /// The token stream (see [`crate::lexer`]).
    pub tokens: Vec<Token>,
    /// Raw source lines (for baseline keys and diagnostics).
    pub lines: Vec<String>,
    /// Token-index ranges lexically inside `#[cfg(test)]` items.
    test_ranges: Vec<(usize, usize)>,
    /// Whole file is test/bench/example code by its path alone.
    all_test: bool,
}

impl SourceFile {
    /// Lexes `source` (at workspace-relative path `rel`) and derives the
    /// test spans.
    pub fn new(rel: &str, source: &str) -> Self {
        let tokens = lex(source);
        let test_ranges = find_test_ranges(&tokens);
        let all_test = rel
            .split('/')
            .any(|seg| seg == "tests" || seg == "benches" || seg == "examples" || seg == "fuzz");
        Self {
            rel: rel.to_string(),
            tokens,
            lines: source.lines().map(str::to_string).collect(),
            test_ranges,
            all_test,
        }
    }

    /// True when token `idx` is inside test-only code (a `#[cfg(test)]`
    /// item, or any file under `tests/`, `benches/` or `examples/`).
    pub fn is_test(&self, idx: usize) -> bool {
        self.all_test
            || self
                .test_ranges
                .iter()
                .any(|&(lo, hi)| idx >= lo && idx <= hi)
    }

    /// The trimmed text of source line `line` (1-based), or `""`.
    pub fn line_text(&self, line: usize) -> &str {
        self.lines
            .get(line.saturating_sub(1))
            .map(|l| l.trim())
            .unwrap_or("")
    }

    /// True when a comment containing `marker` sits on the same line as
    /// token `idx` or on one of the two lines above it. This is how the
    /// justification annotations (`relaxed-ok:`, `panic-ok:`, `SAFETY:`,
    /// `lock-ok:`, `io-ok:`) attach to the code they bless.
    pub fn justified(&self, idx: usize, marker: &str) -> bool {
        let line = self.tokens[idx].line;
        self.tokens.iter().any(|t| {
            t.is_comment() && t.line + 2 >= line && t.line <= line && t.text.contains(marker)
        })
    }

    /// Index of the next non-comment token at or after `idx`.
    pub fn skip_comments(&self, mut idx: usize) -> usize {
        while idx < self.tokens.len() && self.tokens[idx].is_comment() {
            idx += 1;
        }
        idx
    }

    /// The previous non-comment token before `idx`, if any.
    pub fn prev_code(&self, idx: usize) -> Option<&Token> {
        self.tokens[..idx].iter().rev().find(|t| !t.is_comment())
    }
}

/// Finds token ranges covered by `#[cfg(test)]` items: the attribute, any
/// further attributes, an optional visibility, then a `mod`/`fn`/`impl`
/// whose body braces delimit the range.
fn find_test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            if let Some((lo, hi)) = item_body_range(tokens, i) {
                ranges.push((lo, hi));
                i = hi + 1;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

/// True when tokens at `i` spell `#[cfg(test)]` (comments ignored would be
/// pathological inside an attribute; exact adjacency is required).
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    let expect: [&dyn Fn(&Token) -> bool; 7] = [
        &|t| t.is_punct('#'),
        &|t| t.is_punct('['),
        &|t| t.is_ident("cfg"),
        &|t| t.is_punct('('),
        &|t| t.is_ident("test"),
        &|t| t.is_punct(')'),
        &|t| t.is_punct(']'),
    ];
    expect
        .iter()
        .enumerate()
        .all(|(k, check)| tokens.get(i + k).is_some_and(check))
}

/// From the start of a `#[cfg(test)]` attribute, finds the brace-delimited
/// body of the item it decorates and returns the covered token range.
fn item_body_range(tokens: &[Token], attr_start: usize) -> Option<(usize, usize)> {
    let mut i = attr_start + 7;
    // Skip any further attributes.
    loop {
        let at = next_code(tokens, i)?;
        if tokens[at].is_punct('#') && tokens.get(at + 1).is_some_and(|t| t.is_punct('[')) {
            let mut depth = 0usize;
            i = at + 1;
            loop {
                let t = tokens.get(i)?;
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                i += 1;
            }
            i += 1;
        } else {
            i = at;
            break;
        }
    }
    // Find the opening brace of the item body (stopping at `;` for items
    // without one, e.g. `#[cfg(test)] use …;`).
    let mut open = None;
    let mut j = i;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('{') {
            open = Some(j);
            break;
        }
        if t.is_punct(';') {
            return Some((attr_start, j));
        }
        j += 1;
    }
    let open = open?;
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some((attr_start, k));
            }
        }
    }
    Some((attr_start, tokens.len() - 1))
}

fn next_code(tokens: &[Token], mut i: usize) -> Option<usize> {
    while tokens.get(i)?.is_comment() {
        i += 1;
    }
    Some(i)
}

/// Convenience used by several rules: true when the token is an ident and
/// its text equals any of `names`.
pub fn ident_in(tok: &Token, names: &[&str]) -> bool {
    tok.kind == TokKind::Ident && names.contains(&tok.text.as_str())
}
