//! A minimal hand-rolled Rust lexer — just enough fidelity that the rule
//! engine never mistakes the inside of a comment, string, raw string or
//! char literal for code (the hard 10% of lexing Rust), without pulling a
//! real parser into an offline container that has no crates.io.
//!
//! The token stream is lossy on purpose: numbers are one opaque token,
//! every punctuation byte is its own token, and no attempt is made to
//! glue multi-byte operators together. The rules only ever look for
//! identifier/punctuation sequences and comment text, so this is exactly
//! the level of detail they need — and nothing the lexer cannot classify
//! will ever silently disappear (unknown bytes still become tokens).

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `unwrap`, `Mutex`, …).
    Ident,
    /// A numeric literal (opaque; exact value is irrelevant to every rule).
    Number,
    /// A single punctuation byte (`.`, `:`, `{`, `!`, …).
    Punct,
    /// A `"…"` or `b"…"` string literal (text excludes the quotes).
    Str,
    /// A raw string literal `r"…"` / `r#"…"#` / `br##"…"##` (text excludes
    /// the delimiters).
    RawStr,
    /// A character or byte literal `'a'`, `b'\n'`, `'\u{1F600}'`.
    CharLit,
    /// A lifetime such as `'a` or `'static` (text excludes the quote).
    Lifetime,
    /// A `// …` comment, including doc comments (text includes the `//`).
    LineComment,
    /// A `/* … */` comment, nesting handled (text includes delimiters).
    BlockComment,
}

/// One lexed token with its 1-based starting line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification of the token.
    pub kind: TokKind,
    /// The token's text (see [`TokKind`] for what each kind includes).
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: usize,
}

impl Token {
    /// True for comment tokens of either flavor.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// True when this is punctuation matching `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == ch.len_utf8() && self.text.starts_with(ch)
    }

    /// True when this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }
}

/// Lexes `source` into a token stream. Never fails: unterminated literals
/// simply extend to end-of-file, and unclassifiable bytes become
/// single-byte [`TokKind::Punct`] tokens.
pub fn lex(source: &str) -> Vec<Token> {
    let mut cur = Cursor {
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = cur.peek(0) {
        let start = cur.pos;
        let line = cur.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                while let Some(n) = cur.peek(0) {
                    if n == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                push(&mut out, TokKind::LineComment, &cur, start, line);
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                push(&mut out, TokKind::BlockComment, &cur, start, line);
            }
            b'"' => {
                lex_string(&mut cur);
                push_span(&mut out, TokKind::Str, &cur, start + 1, line, 1);
            }
            b'\'' => lex_quote(&mut cur, &mut out, start, line),
            _ if is_ident_start(b) => {
                // `r"`/`r#"`/`b"`/`br#"` prefixes hand over to the string
                // lexers; `r#ident` is a raw identifier, not a raw string.
                if let Some(tok) = lex_maybe_prefixed_string(&mut cur, start, line) {
                    out.push(tok);
                    continue;
                }
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                push(&mut out, TokKind::Ident, &cur, start, line);
            }
            _ if b.is_ascii_digit() => {
                while let Some(n) = cur.peek(0) {
                    if is_ident_continue(n) {
                        cur.bump();
                    } else if n == b'.' && cur.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                        // `1.5` continues the number; `1..n` does not.
                        cur.bump();
                    } else {
                        break;
                    }
                }
                push(&mut out, TokKind::Number, &cur, start, line);
            }
            _ => {
                cur.bump();
                push(&mut out, TokKind::Punct, &cur, start, line);
            }
        }
    }
    out
}

fn push(out: &mut Vec<Token>, kind: TokKind, cur: &Cursor<'_>, start: usize, line: usize) {
    push_span(out, kind, cur, start, line, 0);
}

/// Pushes the token spanning `start..cur.pos`, trimming `trim` bytes off
/// both ends (used to strip quote delimiters from string-ish literals).
fn push_span(
    out: &mut Vec<Token>,
    kind: TokKind,
    cur: &Cursor<'_>,
    start: usize,
    line: usize,
    trim: usize,
) {
    let end = cur.pos.saturating_sub(trim).max(start);
    let text = String::from_utf8_lossy(&cur.bytes[start..end]).into_owned();
    out.push(Token { kind, text, line });
}

/// Consumes a `"…"` body (opening quote included), honoring `\` escapes.
fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(n) = cur.bump() {
        match n {
            b'\\' => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// Disambiguates `'` between char literals and lifetimes.
///
/// After the quote: `\` always means a char literal; an ident-start byte
/// is a char literal only when the very next character closes the quote
/// (`'a'`), otherwise it is a lifetime (`'a`, `'static`); anything else
/// (including multi-byte UTF-8) is a char literal.
fn lex_quote(cur: &mut Cursor<'_>, out: &mut Vec<Token>, start: usize, line: usize) {
    cur.bump(); // the quote
    match cur.peek(0) {
        Some(b'\\') => {
            cur.bump();
            cur.bump(); // the escaped byte ('\u{..}' keeps reading below)
            while let Some(n) = cur.bump() {
                if n == b'\'' {
                    break;
                }
            }
            push_span(out, TokKind::CharLit, cur, start + 1, line, 1);
        }
        Some(n) if is_ident_start(n) => {
            // Find where the ident run ends; a quote right after exactly
            // one character means a char literal, anything else a lifetime.
            let mut len = 0;
            while cur.peek(len).is_some_and(is_ident_continue) {
                len += 1;
            }
            if cur.peek(len) == Some(b'\'') {
                for _ in 0..=len {
                    cur.bump();
                }
                push_span(out, TokKind::CharLit, cur, start + 1, line, 1);
            } else {
                for _ in 0..len {
                    cur.bump();
                }
                push_span(out, TokKind::Lifetime, cur, start + 1, line, 0);
            }
        }
        Some(_) => {
            // Punctuation or multi-byte char literal: read to closing quote.
            while let Some(n) = cur.bump() {
                if n == b'\'' {
                    break;
                }
            }
            push_span(out, TokKind::CharLit, cur, start + 1, line, 1);
        }
        None => out.push(Token {
            kind: TokKind::Punct,
            text: "'".into(),
            line,
        }),
    }
}

/// Handles `r`/`b`/`br` prefixes that introduce string literals. Returns
/// `None` when the prefix turns out to be a plain identifier (including
/// raw identifiers like `r#match`), leaving the cursor untouched.
fn lex_maybe_prefixed_string(cur: &mut Cursor<'_>, start: usize, line: usize) -> Option<Token> {
    let b0 = cur.peek(0)?;
    let (raw, prefix_len) = match (b0, cur.peek(1)) {
        (b'r', _) => (true, 1),
        (b'b', Some(b'r')) => (true, 2),
        (b'b', Some(b'"')) => (false, 1),
        (b'b', Some(b'\'')) => {
            // Byte char literal b'x': delegate to the quote lexer from the
            // quote's own position.
            cur.bump();
            let mut tmp = Vec::new();
            let quote_at = cur.pos;
            lex_quote(cur, &mut tmp, quote_at, line);
            return tmp.pop();
        }
        _ => return None,
    };
    if !raw {
        // b"…": a plain string with a byte prefix.
        cur.bump();
        lex_string(cur);
        let end = cur.pos.saturating_sub(1).max(start + 2);
        return Some(Token {
            kind: TokKind::Str,
            text: String::from_utf8_lossy(&cur.bytes[start + 2..end]).into_owned(),
            line,
        });
    }
    // Count hashes after the r/br prefix; a quote must follow for this to
    // be a raw string (otherwise it's `r#ident` or the ident `r`).
    let mut hashes = 0;
    while cur.peek(prefix_len + hashes) == Some(b'#') {
        hashes += 1;
    }
    if cur.peek(prefix_len + hashes) != Some(b'"') {
        return None;
    }
    for _ in 0..prefix_len + hashes + 1 {
        cur.bump();
    }
    let body_start = cur.pos;
    let mut body_end = cur.pos;
    'scan: while let Some(n) = cur.bump() {
        if n == b'"' {
            // Close only on a quote followed by exactly `hashes` hashes.
            for h in 0..hashes {
                if cur.peek(h) != Some(b'#') {
                    continue 'scan;
                }
            }
            body_end = cur.pos - 1;
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
    }
    Some(Token {
        kind: TokKind::RawStr,
        text: String::from_utf8_lossy(&cur.bytes[body_start..body_end]).into_owned(),
        line,
    })
}
