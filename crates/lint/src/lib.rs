//! `camo-lint` — the workspace's own static-analysis pass.
//!
//! CI's e2e bit-identity tests catch determinism violations *after* they
//! ship; this crate catches the way they get introduced. A minimal
//! hand-rolled Rust [`lexer`] (comments, raw strings, char literals — the
//! part naive grep gets wrong) feeds a [`rules`] engine with per-rule,
//! per-path allowlists ([`config`]) and a checked-in baseline
//! ([`baseline`]) so pre-existing violations are visible debt, not
//! silence.
//!
//! The rules, each documented in `docs/ANALYSIS.md`:
//!
//! | rule          | contract it enforces |
//! |---------------|----------------------|
//! | `determinism` | no wall clock / ambient entropy in result-producing crates |
//! | `panics`      | no `unwrap`/`expect`/`panic!` in serve/runtime non-test code |
//! | `locks`       | declared global lock hierarchy; no descending acquisition; no IO under guard |
//! | `atomics`     | `Ordering::Relaxed` justified outside `stats.rs` |
//! | `unsafety`    | every `unsafe` carries a `// SAFETY:` comment |
//! | `drift`       | wire kinds ⊆ WIRE_PROTOCOL.md, CLI flags ⊆ README/docs |

#![deny(missing_docs)]

pub mod baseline;
pub mod config;
pub mod file;
pub mod lexer;
pub mod rules;

use config::Config;
use file::SourceFile;
use std::fs;
use std::path::{Path, PathBuf};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Trimmed text of the offending line (the baseline key content).
    pub line_text: String,
    /// Human-readable explanation with the fix or annotation to apply.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Everything the engine loaded from one workspace tree.
pub struct Workspace {
    /// Lexed Rust sources, config skips already applied.
    pub files: Vec<SourceFile>,
    /// `(rel-path, content)` for README.md and everything under `docs/`.
    pub docs: Vec<(String, String)>,
    /// The parsed `camo-lint.toml` (default when absent).
    pub config: Config,
}

/// Loads a workspace rooted at `root`: every `*.rs` under it (skipping
/// `target`, hidden directories and configured skips) plus the docs the
/// drift rule reads.
pub fn load(root: &Path) -> Result<Workspace, String> {
    let config = match fs::read_to_string(root.join("camo-lint.toml")) {
        Ok(text) => Config::parse(&text)?,
        Err(_) => Config::default(),
    };
    let mut rs_paths = Vec::new();
    let mut doc_paths = vec![root.join("README.md")];
    walk(root, root, &mut rs_paths, &mut doc_paths)?;
    rs_paths.sort();
    doc_paths.sort();
    doc_paths.dedup();

    let mut files = Vec::new();
    for path in rs_paths {
        let rel = relative(root, &path);
        if config.skipped(&rel) {
            continue;
        }
        let source = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        files.push(SourceFile::new(&rel, &source));
    }
    let mut docs = Vec::new();
    for path in doc_paths {
        if let Ok(content) = fs::read_to_string(&path) {
            docs.push((relative(root, &path), content));
        }
    }
    Ok(Workspace {
        files,
        docs,
        config,
    })
}

fn walk(
    root: &Path,
    dir: &Path,
    rs: &mut Vec<PathBuf>,
    docs: &mut Vec<PathBuf>,
) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, rs, docs)?;
        } else if name.ends_with(".rs") {
            rs.push(path);
        } else if name.ends_with(".md") && relative(root, &path).starts_with("docs/") {
            docs.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Runs every rule over a loaded workspace; findings are sorted by path,
/// line, then rule.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut registry = rules::locks::Registry::default();
    for file in &ws.files {
        if !ws.config.allowed("locks", &file.rel) {
            rules::locks::declare(file, &mut registry, &mut findings);
        }
    }
    for file in &ws.files {
        for (rule, check) in RULES {
            if ws.config.allowed(rule, &file.rel) {
                continue;
            }
            check(file, &ws.config, &mut findings);
        }
        rules::locks::check(file, &registry, &ws.config, &mut findings);
    }
    rules::drift::check(&ws.files, &ws.docs, &mut findings);
    findings.retain(|f| !ws.config.allowed(f.rule, &f.path));
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule)
            .partial_cmp(&(&b.path, b.line, b.rule))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    findings
}

type RuleFn = fn(&SourceFile, &Config, &mut Vec<Finding>);

/// The per-file token-scan rules (locks and drift run separately: one
/// needs a global registry, the other the docs).
const RULES: &[(&str, RuleFn)] = &[
    ("determinism", rules::determinism),
    ("panics", rules::panics),
    ("atomics", rules::atomics),
    ("unsafety", rules::unsafety),
];

/// Convenience for tests: load + run from a root directory.
pub fn run_root(root: &Path) -> Result<Vec<Finding>, String> {
    Ok(run(&load(root)?))
}
