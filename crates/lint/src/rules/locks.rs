//! Rule `locks`: a workspace-global lock hierarchy, declared at the field
//! and checked at every acquisition site.
//!
//! * Every `Mutex`/`RwLock` **field or static** declares its level with a
//!   `// lock-order: N` comment on the same or previous line. Levels are
//!   global: lower numbers are acquired first (outer), higher later
//!   (inner). Two declarations reusing one field name with different
//!   levels is itself a finding — the registry is keyed by field name, so
//!   names must mean one level workspace-wide.
//! * Inside one function body, acquiring ordered guards in **descending**
//!   level order is a finding (`// lock-ok:` justifies, e.g. when the
//!   earlier guard provably dropped first).
//! * A `let` guard binding that is still live (no `drop(guard)`, block
//!   not closed) when a `write_all`/`flush` happens is flagged as lock
//!   held across IO (`// io-ok:` justifies a writer mutex whose entire
//!   point is serializing socket writes).

use crate::config::Config;
use crate::file::SourceFile;
use crate::lexer::{TokKind, Token};
use crate::Finding;
use std::collections::BTreeMap;

/// One declared lock field.
#[derive(Debug, Clone)]
pub struct Declared {
    /// Hierarchy level from the `// lock-order: N` annotation.
    pub level: u32,
    /// File that declared it (for conflict diagnostics).
    pub path: String,
    /// Line of the declaration.
    pub line: usize,
}

/// Registry of lock fields collected across the whole workspace.
#[derive(Debug, Default)]
pub struct Registry {
    fields: BTreeMap<String, Declared>,
}

/// Pass 1: find `name: Mutex<…>` / `name: RwLock<…>` declarations, demand
/// the `lock-order` annotation, and populate the registry.
pub fn declare(file: &SourceFile, registry: &mut Registry, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if !is_lock_type(&toks[i]) {
            continue;
        }
        // Require `… < ` after and `name :` (with optional path segments
        // between) before, and reject reference types (`&Mutex<…>` is a
        // borrowed parameter, not a declaration site).
        let Some(next) = toks.get(file.skip_comments(i + 1)) else {
            continue;
        };
        if !next.is_punct('<') {
            continue;
        }
        let Some(name_idx) = declared_field_name(file, i) else {
            continue;
        };
        let name = toks[name_idx].text.clone();
        let line = toks[name_idx].line;
        let Some(level) = lock_order_annotation(file, line) else {
            out.push(Finding {
                rule: "locks",
                path: file.rel.clone(),
                line,
                line_text: file.line_text(line).to_string(),
                message: format!(
                    "lock field `{name}` has no `// lock-order: N` annotation; every \
                     Mutex/RwLock declares its place in the global hierarchy"
                ),
            });
            continue;
        };
        match registry.fields.get(&name) {
            Some(existing) if existing.level != level => {
                out.push(Finding {
                    rule: "locks",
                    path: file.rel.clone(),
                    line,
                    line_text: file.line_text(line).to_string(),
                    message: format!(
                        "lock field `{name}` declared with lock-order {level} here but \
                         {} at {}:{}; the hierarchy is keyed by field name, so rename \
                         the field or align the levels",
                        existing.level, existing.path, existing.line
                    ),
                });
            }
            Some(_) => {}
            None => {
                registry.fields.insert(
                    name,
                    Declared {
                        level,
                        path: file.rel.clone(),
                        line,
                    },
                );
            }
        }
    }
}

/// Pass 2: walk every function body checking acquisition order and the
/// held-across-IO heuristic.
pub fn check(file: &SourceFile, registry: &Registry, config: &Config, out: &mut Vec<Finding>) {
    if config.allowed("locks", &file.rel) {
        return;
    }
    for (body_start, body_end) in fn_bodies(file) {
        check_body(file, registry, body_start, body_end, out);
    }
}

fn is_lock_type(tok: &Token) -> bool {
    tok.is_ident("Mutex") || tok.is_ident("RwLock")
}

/// For a `Mutex`/`RwLock` ident at `i`, walks back across `::`-separated
/// path segments to the `:` of a field declaration and returns the index
/// of the field name. `None` when the shape is not `name: [path::]Lock<`.
fn declared_field_name(file: &SourceFile, i: usize) -> Option<usize> {
    let toks = &file.tokens;
    let mut j = i;
    // Walk back over `seg ::` pairs.
    loop {
        let prev = prev_code_idx(file, j)?;
        if toks[prev].is_punct(':') {
            let prev2 = prev_code_idx(file, prev)?;
            if toks[prev2].is_punct(':') {
                // `::` — skip the preceding path segment ident.
                let seg = prev_code_idx(file, prev2)?;
                if toks[seg].kind != TokKind::Ident {
                    return None;
                }
                j = seg;
                continue;
            }
            // Single `:` — the field-name separator.
            let name = prev_code_idx(file, prev)?;
            if toks[name].kind != TokKind::Ident {
                return None;
            }
            // Reject fn parameters: parameter lists put `(` or `,`+`(`
            // shapes before the name with types like `&Mutex<…>`; a `&`
            // anywhere between `:` and the lock type already bailed (the
            // walk above only crosses idents and `::`). Remaining
            // ambiguity (a `name: Mutex<…>` parameter by value) is rare
            // and harmless to annotate.
            return Some(name);
        }
        return None;
    }
}

/// The `N` of a `// lock-order: N` comment trailing `line`, or standing
/// alone on the line above. A trailing comment annotates only its own
/// line — otherwise two annotated fields on consecutive lines would leak
/// the first field's level onto the second.
fn lock_order_annotation(file: &SourceFile, line: usize) -> Option<u32> {
    let parse = |t: &Token| {
        let rest = t.text.split("lock-order:").nth(1)?;
        rest.split_whitespace().next()?.parse().ok()
    };
    let mut above = None;
    for t in file.tokens.iter().filter(|t| t.is_comment()) {
        if t.line == line {
            if let Some(level) = parse(t) {
                return Some(level);
            }
        } else if t.line + 1 == line && !has_code_on(file, t.line) {
            above = parse(t).or(above);
        }
    }
    above
}

/// True when any non-comment token sits on line `l`.
fn has_code_on(file: &SourceFile, l: usize) -> bool {
    file.tokens.iter().any(|t| !t.is_comment() && t.line == l)
}

/// Token-index ranges of `fn` bodies (the braces included).
fn fn_bodies(file: &SourceFile) -> Vec<(usize, usize)> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        // Find the body `{` at paren depth 0, stopping at `;` (trait
        // method declarations have no body).
        let mut j = i + 1;
        let mut paren = 0i32;
        let mut open = None;
        while let Some(t) = toks.get(j) {
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if paren == 0 && t.is_punct('{') {
                open = Some(j);
                break;
            } else if paren == 0 && t.is_punct(';') {
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        let mut depth = 0i32;
        let mut end = toks.len() - 1;
        for (k, t) in toks.iter().enumerate().skip(open) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    end = k;
                    break;
                }
            }
        }
        out.push((open, end));
        // Nested fns/closures are scanned as part of this body; that is
        // conservative in the right direction for ordering.
        i = end + 1;
    }
    out
}

/// One acquisition of a registered lock within a body.
struct Acquisition {
    name: String,
    level: u32,
    token: usize,
    line: usize,
    /// Name of the `let` binding holding the guard, when there is one.
    binding: Option<String>,
}

fn check_body(
    file: &SourceFile,
    registry: &Registry,
    start: usize,
    end: usize,
    out: &mut Vec<Finding>,
) {
    let toks = &file.tokens;
    let mut acquisitions: Vec<Acquisition> = Vec::new();
    let mut i = start;
    while i <= end {
        let tok = &toks[i];
        if tok.is_comment() {
            i += 1;
            continue;
        }
        // Match `.field.lock(` / `.field.read(` / `.field.write(`.
        if tok.is_punct('.') {
            if let Some(acq) = match_acquisition(file, i, registry) {
                // Descending order against the previous acquisition in
                // this body is a hierarchy violation.
                if let Some(prev) = acquisitions.last() {
                    if acq.level < prev.level && !file.justified(acq.token, "lock-ok:") {
                        out.push(Finding {
                            rule: "locks",
                            path: file.rel.clone(),
                            line: acq.line,
                            line_text: file.line_text(acq.line).to_string(),
                            message: format!(
                                "`{}` (lock-order {}) acquired after `{}` (lock-order {}, \
                                 line {}): descending acquisition invites deadlock; \
                                 acquire in ascending order or justify with `// lock-ok:`",
                                acq.name, acq.level, prev.name, prev.level, prev.line
                            ),
                        });
                    }
                }
                acquisitions.push(acq);
            }
        }
        i += 1;
    }
    check_io_under_guard(file, start, end, &acquisitions, out);
}

/// At a `.` token, recognizes `.name.lock()`/`.read()`/`.write()` for a
/// registered lock field and captures the `let` binding name if the
/// statement is `let [mut] g = …`.
fn match_acquisition(file: &SourceFile, dot: usize, registry: &Registry) -> Option<Acquisition> {
    let toks = &file.tokens;
    let name_idx = file.skip_comments(dot + 1);
    let name_tok = toks.get(name_idx)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let declared = registry.fields.get(&name_tok.text)?;
    let dot2 = file.skip_comments(name_idx + 1);
    if !toks.get(dot2)?.is_punct('.') {
        return None;
    }
    let method_idx = file.skip_comments(dot2 + 1);
    let method = toks.get(method_idx)?;
    if !(method.is_ident("lock") || method.is_ident("read") || method.is_ident("write")) {
        return None;
    }
    if !toks.get(file.skip_comments(method_idx + 1))?.is_punct('(') {
        return None;
    }
    Some(Acquisition {
        name: name_tok.text.clone(),
        level: declared.level,
        token: name_idx,
        line: name_tok.line,
        binding: binding_for(file, dot),
    })
}

/// Walks back from an acquisition to the start of its statement; returns
/// the bound name for `let [mut] g = …` statements.
fn binding_for(file: &SourceFile, from: usize) -> Option<String> {
    let toks = &file.tokens;
    let mut i = from;
    // Statement start: the token after the previous `;`, `{` or `}`.
    while i > 0 {
        let p = &toks[i - 1];
        if p.is_punct(';') || p.is_punct('{') || p.is_punct('}') {
            break;
        }
        i -= 1;
    }
    let mut j = file.skip_comments(i);
    if !toks.get(j)?.is_ident("let") {
        return None;
    }
    j = file.skip_comments(j + 1);
    if toks.get(j)?.is_ident("mut") {
        j = file.skip_comments(j + 1);
    }
    let name = toks.get(j)?;
    if name.kind != TokKind::Ident {
        return None;
    }
    Some(name.text.clone())
}

/// IO calls that put a syscall under any still-held guard binding.
const IO_CALLS: &[&str] = &["write_all", "flush"];

/// Flags `let guard = ….lock()` bindings still live when a `write_all` /
/// `flush` call happens in the same block.
fn check_io_under_guard(
    file: &SourceFile,
    _start: usize,
    end: usize,
    acquisitions: &[Acquisition],
    out: &mut Vec<Finding>,
) {
    let toks = &file.tokens;
    for acq in acquisitions {
        let Some(binding) = &acq.binding else {
            continue;
        };
        if file.justified(acq.token, "io-ok:") {
            continue;
        }
        // Scan forward from the acquisition to the end of its enclosing
        // block (depth would go negative), an explicit `drop(binding)`,
        // or the body end.
        let mut depth = 0i32;
        let mut i = acq.token;
        while i <= end {
            let t = &toks[i];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            } else if t.is_ident("drop")
                && toks
                    .get(file.skip_comments(i + 1))
                    .is_some_and(|n| n.is_punct('('))
                && toks
                    .get(file.skip_comments(file.skip_comments(i + 1) + 1))
                    .is_some_and(|n| n.is_ident(binding))
            {
                break;
            } else if t.kind == TokKind::Ident && IO_CALLS.contains(&t.text.as_str()) {
                out.push(Finding {
                    rule: "locks",
                    path: file.rel.clone(),
                    line: t.line,
                    line_text: file.line_text(t.line).to_string(),
                    message: format!(
                        "`{}` while guard `{binding}` (lock `{}`, line {}) is still \
                         held: socket IO under a lock stalls every other waiter; drop \
                         the guard first or justify with `// io-ok:`",
                        t.text, acq.name, acq.line
                    ),
                });
                break;
            }
            i += 1;
        }
    }
}

fn prev_code_idx(file: &SourceFile, idx: usize) -> Option<usize> {
    (0..idx).rev().find(|&k| !file.tokens[k].is_comment())
}
