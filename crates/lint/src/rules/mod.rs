//! The rule engine: each rule walks the shared token streams and emits
//! [`Finding`]s. Rules are deliberately heuristic token-level checks —
//! strong enough to catch the real contract violations this workspace has
//! actually shipped, honest enough to carry justification annotations
//! (`panic-ok:`, `relaxed-ok:`, `SAFETY:`, `lock-ok:`, `io-ok:`) where a
//! human has checked the exception.

pub mod drift;
pub mod locks;

use crate::config::{starts_with_path, Config};
use crate::file::{ident_in, SourceFile};
use crate::Finding;

/// Crates whose code produces served/replayed results: the determinism
/// contract (`(policy_version, seed, clip)` fully determines the outcome)
/// bans ambient time and entropy here.
const DETERMINISM_SCOPE: &[&str] = &[
    "crates/litho/src",
    "crates/rl/src",
    "crates/core/src",
    "crates/nn/src",
    "crates/geometry/src",
    "crates/runtime/src",
];

/// APIs that read the wall clock or ambient entropy, or iterate in a
/// process-random order.
const DETERMINISM_BANNED: &[&str] = &[
    "Instant",
    "SystemTime",
    "UNIX_EPOCH",
    "thread_rng",
    "from_entropy",
    "OsRng",
    "getrandom",
    "RandomState",
    "HashMap",
    "HashSet",
];

/// Crates whose long-lived processes must degrade with typed errors, not
/// panics (a panicking dispatcher takes the whole tier down with it).
const PANIC_SCOPE: &[&str] = &["crates/serve/src", "crates/runtime/src"];

fn in_scope(rule: &str, rel: &str, builtin: &[&str], config: &Config) -> bool {
    builtin.iter().any(|p| starts_with_path(rel, p))
        || config.extra_scope(rule).any(|p| starts_with_path(rel, p))
}

fn finding(file: &SourceFile, rule: &'static str, line: usize, message: String) -> Finding {
    Finding {
        rule,
        path: file.rel.clone(),
        line,
        line_text: file.line_text(line).to_string(),
        message,
    }
}

/// Rule `determinism`: no wall-clock or ambient-entropy API in
/// result-producing crates. `// determinism-ok:` justifies an exception
/// inline; timing/supervision modules belong in the config allowlist.
pub fn determinism(file: &SourceFile, config: &Config, out: &mut Vec<Finding>) {
    if !in_scope("determinism", &file.rel, DETERMINISM_SCOPE, config) {
        return;
    }
    for (i, tok) in file.tokens.iter().enumerate() {
        if !ident_in(tok, DETERMINISM_BANNED) || file.is_test(i) {
            continue;
        }
        // `use std::time::Instant;` inside cfg(test) is covered by
        // is_test; a bare import outside any item is still a finding —
        // importing the type is how the violation starts.
        if file.justified(i, "determinism-ok:") {
            continue;
        }
        out.push(finding(
            file,
            "determinism",
            tok.line,
            format!(
                "`{}` breaks the (seed, clip) determinism contract in a result-producing \
                 crate; derive values from the request instead, or justify with \
                 `// determinism-ok:`",
                tok.text
            ),
        ));
    }
}

/// Rule `panics`: no `.unwrap()` / `.expect(…)` / `panic!` / `todo!` /
/// `unimplemented!` in non-test code of the serving and runtime crates.
pub fn panics(file: &SourceFile, config: &Config, out: &mut Vec<Finding>) {
    if !in_scope("panics", &file.rel, PANIC_SCOPE, config) {
        return;
    }
    for (i, tok) in file.tokens.iter().enumerate() {
        if file.is_test(i) {
            continue;
        }
        let method_call = ident_in(tok, &["unwrap", "expect"])
            && file.prev_code(i).is_some_and(|p| p.is_punct('.'))
            && file
                .tokens
                .get(file.skip_comments(i + 1))
                .is_some_and(|t| t.is_punct('('));
        let macro_call = ident_in(tok, &["panic", "todo", "unimplemented"])
            && file
                .tokens
                .get(file.skip_comments(i + 1))
                .is_some_and(|t| t.is_punct('!'));
        if !(method_call || macro_call) {
            continue;
        }
        if file.justified(i, "panic-ok:") {
            continue;
        }
        out.push(finding(
            file,
            "panics",
            tok.line,
            format!(
                "`{}` can panic a long-lived serving process; return a typed error \
                 (ServeError / pool error), or justify an invariant with `// panic-ok:`",
                tok.text
            ),
        ));
    }
}

/// Rule `atomics`: `Ordering::Relaxed` outside `stats.rs` needs a
/// `// relaxed-ok:` justification naming why the weak ordering is sound.
pub fn atomics(file: &SourceFile, _config: &Config, out: &mut Vec<Finding>) {
    if file.rel.ends_with("/stats.rs") {
        return;
    }
    for (i, tok) in file.tokens.iter().enumerate() {
        if !tok.is_ident("Relaxed") || file.is_test(i) {
            continue;
        }
        let after_ordering = matches!(
            (file.prev_code(i), prev_code_n(file, i, 2)),
            (Some(c), Some(o)) if c.is_punct(':') && (o.is_punct(':') || o.is_ident("Ordering"))
        );
        if !after_ordering || file.justified(i, "relaxed-ok:") {
            continue;
        }
        out.push(finding(
            file,
            "atomics",
            tok.line,
            "`Ordering::Relaxed` outside stats.rs requires a `// relaxed-ok:` comment \
             stating why no other memory access depends on this value"
                .to_string(),
        ));
    }
}

/// Rule `unsafety`: every `unsafe` token (block, fn, impl) is preceded by
/// a `// SAFETY:` comment. The rule is workspace-wide with no allowlist:
/// it covers the SIMD intrinsic backends under `crates/geometry` and
/// `crates/litho` as well as test code — a test allocator's contract
/// deserves the same sentence as production code.
pub fn unsafety(file: &SourceFile, _config: &Config, out: &mut Vec<Finding>) {
    for (i, tok) in file.tokens.iter().enumerate() {
        if !tok.is_ident("unsafe") {
            continue;
        }
        // `unsafe fn` items inside an `unsafe impl` inherit the impl's
        // SAFETY comment only if they carry their own or sit within two
        // lines of one; keep the requirement uniform and simple.
        if file.justified(i, "SAFETY:") {
            continue;
        }
        out.push(finding(
            file,
            "unsafety",
            tok.line,
            "`unsafe` without a preceding `// SAFETY:` comment stating the invariant \
             that makes it sound"
                .to_string(),
        ));
    }
}

fn prev_code_n(file: &SourceFile, idx: usize, n: usize) -> Option<&crate::lexer::Token> {
    file.tokens[..idx]
        .iter()
        .rev()
        .filter(|t| !t.is_comment())
        .nth(n - 1)
}
