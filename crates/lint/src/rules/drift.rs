//! Rule `drift`: documentation that third parties implement against must
//! track the code, mechanically.
//!
//! * Every request/response kind string returned by the two `fn kind`
//!   bodies in `crates/serve/src/wire.rs` — and every v2 opcode name
//!   returned by `fn opcode_name` — must appear (as a whole word) in
//!   `docs/WIRE_PROTOCOL.md`, so an undocumented binary opcode fails CI
//!   exactly like an undocumented text kind.
//! * Every `--flag` string literal parsed by the `serve` and
//!   `camo-client` binaries must appear in `README.md` or any file under
//!   `docs/`.

use crate::file::SourceFile;
use crate::lexer::TokKind;
use crate::Finding;

/// Path of the wire codec whose kind strings define the protocol.
pub const WIRE_SOURCE: &str = "crates/serve/src/wire.rs";
/// Document that must cover every wire kind.
pub const WIRE_DOC: &str = "docs/WIRE_PROTOCOL.md";
/// Directory of binaries whose flags must be documented.
pub const BIN_DIR: &str = "crates/serve/src/bin";

/// Runs both drift checks. `docs` holds `(rel-path, content)` pairs for
/// `README.md` and everything under `docs/`.
pub fn check(files: &[SourceFile], docs: &[(String, String)], out: &mut Vec<Finding>) {
    wire_kinds(files, docs, out);
    cli_flags(files, docs, out);
}

fn wire_kinds(files: &[SourceFile], docs: &[(String, String)], out: &mut Vec<Finding>) {
    let Some(wire) = files.iter().find(|f| f.rel == WIRE_SOURCE) else {
        return; // Fixture trees without a wire module skip the check.
    };
    let Some(doc) = docs.iter().find(|(rel, _)| rel == WIRE_DOC) else {
        out.push(Finding {
            rule: "drift",
            path: WIRE_SOURCE.to_string(),
            line: 1,
            line_text: String::new(),
            message: format!("{WIRE_DOC} is missing but {WIRE_SOURCE} exists"),
        });
        return;
    };
    for (line, kind) in kind_strings(wire) {
        if !contains_word(&doc.1, &kind) {
            out.push(Finding {
                rule: "drift",
                path: WIRE_SOURCE.to_string(),
                line,
                line_text: wire.line_text(line).to_string(),
                message: format!(
                    "wire kind \"{kind}\" is not documented in {WIRE_DOC}; the protocol \
                     spec is third-party-implementable and must never fall behind wire.rs"
                ),
            });
        }
    }
}

/// String literals inside the bodies of `fn kind` and `fn opcode_name`
/// functions — exactly the request/response kind vocabulary of the
/// protocol, across both wire versions (the v2 opcode table reuses the v1
/// kind names, so both feed the same documentation check).
fn kind_strings(wire: &SourceFile) -> Vec<(usize, String)> {
    let toks = &wire.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn")
            && toks
                .get(i + 1)
                .is_some_and(|t| t.is_ident("kind") || t.is_ident("opcode_name"))
        {
            // Find the body and collect string literals within it.
            let mut depth = 0i32;
            let mut entered = false;
            let mut j = i + 2;
            while let Some(t) = toks.get(j) {
                if t.is_punct('{') {
                    depth += 1;
                    entered = true;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if entered && depth == 0 {
                        break;
                    }
                } else if entered && t.kind == TokKind::Str {
                    out.push((t.line, t.text.clone()));
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
    out
}

fn cli_flags(files: &[SourceFile], docs: &[(String, String)], out: &mut Vec<Finding>) {
    for file in files
        .iter()
        .filter(|f| f.rel.starts_with(BIN_DIR) && f.rel.ends_with(".rs"))
    {
        for tok in &file.tokens {
            if tok.kind != TokKind::Str || !is_flag(&tok.text) {
                continue;
            }
            let documented = docs.iter().any(|(_, content)| content.contains(&tok.text));
            if !documented {
                out.push(Finding {
                    rule: "drift",
                    path: file.rel.clone(),
                    line: tok.line,
                    line_text: file.line_text(tok.line).to_string(),
                    message: format!(
                        "flag `{}` is parsed here but documented nowhere in README.md or \
                         docs/; add it to the flag reference",
                        tok.text
                    ),
                });
            }
        }
    }
}

/// `--flag` shape: two dashes then a lowercase kebab-case name (filters
/// out `"--"` prefix probes and separator literals).
fn is_flag(text: &str) -> bool {
    let Some(name) = text.strip_prefix("--") else {
        return false;
    };
    !name.is_empty()
        && name.starts_with(|c: char| c.is_ascii_lowercase())
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
}

/// Whole-word containment: `kind` present and not embedded in a larger
/// `[a-z0-9_]` word (so `case` does not match `showcase`).
fn contains_word(haystack: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(at) = haystack[from..].find(word) {
        let start = from + at;
        let end = start + word.len();
        let before = haystack[..start].chars().next_back();
        let after = haystack[end..].chars().next();
        let boundary = |c: Option<char>| c.is_none_or(|c| !(c.is_ascii_alphanumeric() || c == '_'));
        if boundary(before) && boundary(after) {
            return true;
        }
        from = end;
    }
    false
}
