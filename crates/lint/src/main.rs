//! The `camo-lint` binary: runs the workspace static-analysis pass and
//! gates CI on new findings.
//!
//! ```text
//! camo-lint                      # print every finding (baseline marked)
//! camo-lint --deny-new           # exit 1 on findings not in the baseline
//! camo-lint --write-baseline     # rewrite lint-baseline.txt from scratch
//! camo-lint --root DIR           # lint a different tree (default: cwd)
//! camo-lint --baseline FILE      # non-default baseline path
//! ```

use camo_lint::{baseline, load, run};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut baseline_path = None;
    let mut deny_new = false;
    let mut write_baseline = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                root = PathBuf::from(args.get(i).map(String::as_str).unwrap_or("."));
            }
            "--baseline" => {
                i += 1;
                baseline_path = args.get(i).map(PathBuf::from);
            }
            "--deny-new" => deny_new = true,
            "--write-baseline" => write_baseline = true,
            other => {
                eprintln!("camo-lint: unknown argument {other}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.txt"));

    let ws = match load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("camo-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let findings = run(&ws);
    let keys = baseline::keys_for(&findings);

    if write_baseline {
        if let Err(e) = std::fs::write(&baseline_path, baseline::render(&keys)) {
            eprintln!("camo-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "camo-lint: wrote {} entries to {}",
            keys.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let known = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match baseline::parse(&text) {
            Ok(keys) => keys,
            Err(e) => {
                eprintln!("camo-lint: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => Vec::new(),
    };

    let mut new = 0usize;
    let mut baselined = 0usize;
    let mut used = vec![false; known.len()];
    for (finding, key) in findings.iter().zip(&keys) {
        let slot = known
            .iter()
            .enumerate()
            .position(|(k, b)| !used[k] && *b == *key);
        match slot {
            Some(k) => {
                used[k] = true;
                baselined += 1;
                if !deny_new {
                    println!("{finding} [baseline]");
                }
            }
            None => {
                new += 1;
                println!("{finding}");
            }
        }
    }
    for (k, stale) in known.iter().enumerate() {
        if !used[k] {
            eprintln!(
                "camo-lint: stale baseline entry (debt paid — remove the line): \
                 {} {} #{} `{}`",
                stale.rule, stale.path, stale.occurrence, stale.line_text
            );
        }
    }
    eprintln!(
        "camo-lint: {} finding(s) — {new} new, {baselined} baselined, over {} files",
        findings.len(),
        ws.files.len()
    );
    if deny_new && new > 0 {
        eprintln!("camo-lint: --deny-new: failing on {new} new finding(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
