//! The checked-in lint configuration (`camo-lint.toml`): a line-based
//! format (not actual TOML — the container has no TOML parser and the
//! grammar here is three directives) holding path skips and per-rule,
//! per-path allowlists.
//!
//! ```text
//! # comment
//! skip <path-prefix>            — exclude the subtree from every rule
//! allow <rule> <path-prefix>    — exclude the subtree from one rule
//! scope <rule> <path-prefix>    — add a subtree to a scoped rule's paths
//! ```
//!
//! Allowlists answer "this code is exempt on purpose, forever" (e.g. the
//! supervision tier may read wall clocks); the baseline answers "this is
//! pre-existing debt we can see" — see [`crate::baseline`].

/// Parsed lint configuration.
#[derive(Debug, Default, Clone)]
pub struct Config {
    /// Path prefixes excluded from every rule.
    pub skips: Vec<String>,
    /// `(rule, path-prefix)` pairs excluded from one rule.
    pub allows: Vec<(String, String)>,
    /// `(rule, path-prefix)` pairs *added* to a scoped rule's coverage.
    pub scopes: Vec<(String, String)>,
}

impl Config {
    /// Parses the configuration text; unknown directives are errors so a
    /// typo cannot silently disable an allowlist.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut config = Config::default();
        for (n, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let directive = parts.next().unwrap_or("");
            let rest: Vec<&str> = parts.collect();
            match (directive, rest.as_slice()) {
                ("skip", [path]) => config.skips.push(normalize(path)),
                ("allow", [rule, path]) => {
                    config.allows.push((rule.to_string(), normalize(path)));
                }
                ("scope", [rule, path]) => {
                    config.scopes.push((rule.to_string(), normalize(path)));
                }
                _ => {
                    return Err(format!(
                        "camo-lint.toml:{}: unrecognized directive: {raw}",
                        n + 1
                    ))
                }
            }
        }
        Ok(config)
    }

    /// True when `rel` is excluded from every rule.
    pub fn skipped(&self, rel: &str) -> bool {
        self.skips.iter().any(|p| starts_with_path(rel, p))
    }

    /// True when `rel` is allowlisted for `rule`.
    pub fn allowed(&self, rule: &str, rel: &str) -> bool {
        self.allows
            .iter()
            .any(|(r, p)| r == rule && starts_with_path(rel, p))
    }

    /// Extra path prefixes the config adds to `rule`'s scope.
    pub fn extra_scope<'a>(&'a self, rule: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.scopes
            .iter()
            .filter(move |(r, _)| r == rule)
            .map(|(_, p)| p.as_str())
    }
}

fn normalize(path: &str) -> String {
    path.trim_matches('/').to_string()
}

/// Prefix match on whole path segments (`crates/li` must not match
/// `crates/litho`).
pub fn starts_with_path(rel: &str, prefix: &str) -> bool {
    rel == prefix
        || rel
            .strip_prefix(prefix)
            .is_some_and(|rest| rest.starts_with('/'))
}
