//! Edge cases for the hand-rolled lexer: exactly the constructs a naive
//! grep-based linter misclassifies (comment markers inside strings, raw
//! strings, nested block comments, char-vs-lifetime quotes).

use camo_lint::lexer::{lex, TokKind};

fn kinds(src: &str) -> Vec<TokKind> {
    lex(src).into_iter().map(|t| t.kind).collect()
}

fn texts_of(src: &str, kind: TokKind) -> Vec<String> {
    lex(src)
        .into_iter()
        .filter(|t| t.kind == kind)
        .map(|t| t.text)
        .collect()
}

#[test]
fn raw_string_with_hashes_swallows_quotes_and_comment_markers() {
    let src = r####"let s = r##"quote " hash "# and // no comment"##;"####;
    let toks = lex(src);
    assert_eq!(
        texts_of(src, TokKind::RawStr),
        vec![r##"quote " hash "# and // no comment"##.to_string()]
    );
    assert!(
        toks.iter().all(|t| !t.is_comment()),
        "comment markers inside a raw string must not produce comment tokens"
    );
    // The trailing `;` after the closing delimiter is still seen as code.
    assert!(toks.last().unwrap().is_punct(';'));
}

#[test]
fn byte_raw_strings_and_byte_strings_are_string_tokens() {
    assert_eq!(
        texts_of(r###"let a = br#"x"#;"###, TokKind::RawStr),
        vec!["x".to_string()]
    );
    assert_eq!(
        texts_of(r#"let b = b"bytes";"#, TokKind::Str),
        vec!["bytes".to_string()]
    );
}

#[test]
fn nested_block_comments_stay_one_comment() {
    let src = "/* outer /* inner // deep */ tail */ fn after() {}";
    let toks = lex(src);
    assert_eq!(toks[0].kind, TokKind::BlockComment);
    assert!(toks[0].text.contains("inner"));
    assert!(toks[0].text.ends_with("*/"));
    // Only the *balanced* close ends the comment: `fn` is real code.
    assert!(toks[1].is_ident("fn"));
}

#[test]
fn char_literal_versus_lifetime() {
    let src = "let c = 'a'; fn f<'a>(x: &'a str, y: &'static str) -> char { '\\n' }";
    assert_eq!(
        texts_of(src, TokKind::CharLit),
        vec!["a".to_string(), "\\n".to_string()]
    );
    assert_eq!(
        texts_of(src, TokKind::Lifetime),
        vec!["a".to_string(), "a".to_string(), "static".to_string()]
    );
}

#[test]
fn comment_markers_inside_plain_strings_are_not_comments() {
    let src = "let s = \"// not a comment\"; // but this is";
    let toks = lex(src);
    assert_eq!(
        texts_of(src, TokKind::Str),
        vec!["// not a comment".to_string()]
    );
    let comments: Vec<&str> = toks
        .iter()
        .filter(|t| t.is_comment())
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(comments, vec!["// but this is"]);
}

#[test]
fn escaped_quote_does_not_end_a_string() {
    let src = r#"let s = "a\"b // still string"; let t = 1;"#;
    assert_eq!(
        texts_of(src, TokKind::Str),
        vec![r#"a\"b // still string"#.to_string()]
    );
}

#[test]
fn lines_advance_through_multiline_raw_strings() {
    let src = "let s = r#\"one\ntwo\nthree\"#;\nfn f() {}";
    let toks = lex(src);
    let fn_tok = toks.iter().find(|t| t.is_ident("fn")).unwrap();
    assert_eq!(fn_tok.line, 4);
    let raw = toks.iter().find(|t| t.kind == TokKind::RawStr).unwrap();
    assert_eq!(raw.line, 1, "a token starts on its opening line");
}

#[test]
fn unterminated_literals_extend_to_eof_without_panicking() {
    for src in ["let s = \"never closed", "let c = '", "/* never closed"] {
        let toks = lex(src);
        assert!(!toks.is_empty(), "{src:?} must still lex");
    }
}

#[test]
fn raw_identifiers_are_idents_not_strings() {
    let src = "let r#match = 1; let r = 2; let b = 3;";
    assert!(texts_of(src, TokKind::RawStr).is_empty());
    assert!(texts_of(src, TokKind::Str).is_empty());
    assert_eq!(kinds("r"), vec![TokKind::Ident]);
}

#[test]
fn byte_char_literal_is_a_char_token() {
    let src = "let nl = b'\\n'; let q = b'q';";
    assert_eq!(
        texts_of(src, TokKind::CharLit),
        vec!["\\n".to_string(), "q".to_string()]
    );
}
