//! End-to-end rule-engine test over a deliberately-bad fixture workspace:
//! every rule must fire on its seeded violation — and *only* there.

use camo_lint::{load, run, Finding};
use std::fs;
use std::path::{Path, PathBuf};

/// A fresh fixture root under the system temp dir, unique per test.
fn fixture_root(name: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("camo-lint-fixture-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&root).unwrap();
    root
}

fn put(root: &Path, rel: &str, content: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().unwrap()).unwrap();
    fs::write(path, content).unwrap();
}

fn findings_at(root: &Path) -> Vec<Finding> {
    run(&load(root).unwrap())
}

#[test]
fn every_rule_fires_on_its_seeded_violation() {
    let root = fixture_root("all-rules");

    // determinism: a banned wall-clock import, plus a justified use that
    // must stay silent.
    put(
        &root,
        "crates/core/src/lib.rs",
        "use std::time::Instant;\n\
         // determinism-ok: absolute timestamps never reach result bits.\n\
         pub fn stamp() -> std::time::SystemTime { std::time::SystemTime::now() }\n",
    );

    // panics + atomics + unsafety + locks (missing annotation and one
    // descending acquisition pair), all inside the serve scope; the
    // cfg(test) module at the bottom is exempt from the panic rule.
    put(
        &root,
        "crates/serve/src/lib.rs",
        "use std::sync::atomic::{AtomicUsize, Ordering};\n\
         use std::sync::Mutex;\n\
         \n\
         pub struct S {\n\
             lo: Mutex<u32>, // lock-order: 10\n\
             hi: Mutex<u32>, // lock-order: 20\n\
             unranked: Mutex<u32>,\n\
         }\n\
         \n\
         pub static COUNT: AtomicUsize = AtomicUsize::new(0);\n\
         \n\
         impl S {\n\
             pub fn descending(&self) {\n\
                 let _second = self.hi.lock().unwrap();\n\
                 let _first = self.lo.lock().unwrap();\n\
             }\n\
         }\n\
         \n\
         pub fn bump() -> usize {\n\
             COUNT.fetch_add(1, Ordering::Relaxed)\n\
         }\n\
         \n\
         pub fn first(v: &[u8]) -> u8 {\n\
             unsafe { *v.get_unchecked(0) }\n\
         }\n\
         \n\
         #[cfg(test)]\n\
         mod tests {\n\
             #[test]\n\
             fn exempt_from_panic_rule() {\n\
                 let v: Vec<u32> = vec![1];\n\
                 assert_eq!(v.first().copied().unwrap(), 1);\n\
             }\n\
         }\n",
    );

    // drift (wire): `zorble` is served by `fn kind` but absent from the
    // protocol doc; `ping` is documented and stays silent. The v2 opcode
    // table is scanned the same way: the undocumented `blit` opcode name
    // must fire while the documented `ping` stays silent.
    put(
        &root,
        "crates/serve/src/wire.rs",
        "pub enum Request {\n\
             Ping,\n\
             Zorble,\n\
         }\n\
         \n\
         impl Request {\n\
             pub fn kind(&self) -> &'static str {\n\
                 match self {\n\
                     Request::Ping => \"ping\",\n\
                     Request::Zorble => \"zorble\",\n\
                 }\n\
             }\n\
         }\n\
         \n\
         pub enum Opcode {\n\
             Ping,\n\
             Blit,\n\
         }\n\
         \n\
         impl Opcode {\n\
             pub fn opcode_name(self) -> &'static str {\n\
                 match self {\n\
                     Opcode::Ping => \"ping\",\n\
                     Opcode::Blit => \"blit\",\n\
                 }\n\
             }\n\
         }\n",
    );

    // drift (flags): `--mystery-knob` is parsed but undocumented.
    put(
        &root,
        "crates/serve/src/bin/tool.rs",
        "fn main() {\n\
             let args: Vec<String> = std::env::args().collect();\n\
             let known = args.iter().any(|a| a == \"--known-flag\");\n\
             let mystery = args.iter().any(|a| a == \"--mystery-knob\");\n\
             println!(\"{known} {mystery}\");\n\
         }\n",
    );

    // locks (IO under a live guard), outside the panic scope so the
    // `.expect` here stays silent; unsafety on a SAFETY-less SIMD
    // intrinsic call — the annotated twin below it must stay silent.
    put(
        &root,
        "crates/litho/src/lib.rs",
        "use std::io::Write;\n\
         use std::sync::Mutex;\n\
         \n\
         pub struct Channel {\n\
             sink: Mutex<Vec<u8>>, // lock-order: 30\n\
         }\n\
         \n\
         pub fn blast(ch: &Channel, bytes: &[u8]) -> std::io::Result<()> {\n\
             let mut guard = ch.sink.lock().expect(\"poisoned\");\n\
             guard.write_all(bytes)\n\
         }\n\
         \n\
         pub fn lane0(v: &[f64]) -> f64 {\n\
             unsafe { std::arch::x86_64::_mm_cvtsd_f64(std::arch::x86_64::_mm_loadu_pd(v.as_ptr())) }\n\
         }\n\
         \n\
         pub fn lane0_justified(v: &[f64]) -> f64 {\n\
             // SAFETY: every caller passes at least two lanes.\n\
             unsafe { std::arch::x86_64::_mm_cvtsd_f64(std::arch::x86_64::_mm_loadu_pd(v.as_ptr())) }\n\
         }\n",
    );

    put(
        &root,
        "README.md",
        "Flags: `--known-flag` toggles a thing.\n",
    );
    put(&root, "docs/WIRE_PROTOCOL.md", "Requests: `ping`.\n");

    let found: Vec<(String, usize, &str)> = findings_at(&root)
        .into_iter()
        .map(|f| (f.path, f.line, f.rule))
        .collect();
    let expected: Vec<(String, usize, &str)> = [
        ("crates/core/src/lib.rs", 1, "determinism"),
        ("crates/litho/src/lib.rs", 10, "locks"),
        ("crates/litho/src/lib.rs", 14, "unsafety"),
        ("crates/serve/src/bin/tool.rs", 4, "drift"),
        ("crates/serve/src/lib.rs", 7, "locks"),
        ("crates/serve/src/lib.rs", 14, "panics"),
        ("crates/serve/src/lib.rs", 15, "locks"),
        ("crates/serve/src/lib.rs", 15, "panics"),
        ("crates/serve/src/lib.rs", 20, "atomics"),
        ("crates/serve/src/lib.rs", 24, "unsafety"),
        ("crates/serve/src/wire.rs", 10, "drift"),
        ("crates/serve/src/wire.rs", 24, "drift"),
    ]
    .into_iter()
    .map(|(p, l, r)| (p.to_string(), l, r))
    .collect();
    assert_eq!(found, expected);

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn config_allows_and_skips_silence_findings() {
    let root = fixture_root("config");
    put(
        &root,
        "crates/serve/src/lib.rs",
        "pub fn boom(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
    );
    put(&root, "crates/core/src/lib.rs", "use std::time::Instant;\n");
    put(&root, "README.md", "nothing\n");

    // Without config: one panics finding and one determinism finding.
    let rules: Vec<&str> = findings_at(&root).iter().map(|f| f.rule).collect();
    assert_eq!(rules, vec!["determinism", "panics"]);

    // An allow silences one rule under one tree; a skip removes the file.
    put(
        &root,
        "camo-lint.toml",
        "allow panics crates/serve/src\nskip crates/core\n",
    );
    assert!(findings_at(&root).is_empty());

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn missing_wire_doc_is_itself_drift() {
    let root = fixture_root("missing-doc");
    put(
        &root,
        "crates/serve/src/wire.rs",
        "pub fn kind() -> &'static str {\n    \"ping\"\n}\n",
    );
    put(&root, "README.md", "no protocol doc here\n");

    let findings = findings_at(&root);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "drift");
    assert!(findings[0].message.contains("WIRE_PROTOCOL.md"));

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn conflicting_lock_levels_for_one_name_are_flagged() {
    let root = fixture_root("lock-conflict");
    put(
        &root,
        "crates/serve/src/a.rs",
        "pub struct A {\n    state: std::sync::Mutex<u32>, // lock-order: 10\n}\n",
    );
    put(
        &root,
        "crates/serve/src/b.rs",
        "pub struct B {\n    state: std::sync::Mutex<u32>, // lock-order: 20\n}\n",
    );
    put(&root, "README.md", "\n");

    let findings = findings_at(&root);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "locks");
    assert!(findings[0].message.contains("rename the field or align"));

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn whole_file_test_trees_are_exempt_from_panic_rule() {
    let root = fixture_root("test-tree");
    put(
        &root,
        "crates/serve/tests/e2e.rs",
        "#[test]\nfn t() {\n    let v: Option<u32> = Some(1);\n    assert_eq!(v.unwrap(), 1);\n}\n",
    );
    put(&root, "README.md", "\n");
    assert!(findings_at(&root).is_empty());
    let _ = fs::remove_dir_all(&root);
}
