//! A long-lived worker pool with graceful shutdown.
//!
//! [`parallel_map`](crate::parallel_map) covers fork-join batches, but a
//! serving process needs workers that outlive any one batch: threads started
//! once, fed through a [`BoundedQueue`] of jobs, and torn down in a
//! controlled way. [`ServicePool::shutdown`] implements the contract every
//! long-lived front-end wants:
//!
//! 1. **drain** — the queue is closed, so no new work is accepted, but every
//!    job already submitted still runs;
//! 2. **join** — all workers are joined after the drain;
//! 3. **propagate** — the first job panic (in submission-observation order)
//!    is resurfaced on the caller's thread, after all workers are joined, so
//!    a poisoned job can neither be silently swallowed nor strand siblings.
//!
//! A panicking job does **not** kill its worker: jobs run under
//! `catch_unwind`, the first payload is parked, and the worker keeps
//! serving. A server therefore stays up through a poisoned request and
//! still reports the failure at shutdown.

use crate::queue::{BoundedQueue, PushError};
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;
type PanicPayload = Box<dyn Any + Send + 'static>;

/// Why a [`ServicePool`] could not be built: the OS refused to spawn one
/// of the worker threads (typically resource exhaustion on the host).
#[derive(Debug)]
pub struct PoolSpawnError {
    /// Index of the worker whose thread could not be started.
    pub worker: usize,
    /// The underlying spawn failure.
    pub source: std::io::Error,
}

impl std::fmt::Display for PoolSpawnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "could not spawn service worker {}: {}",
            self.worker, self.source
        )
    }
}

impl std::error::Error for PoolSpawnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

#[derive(Debug, Default)]
struct PanicSlot {
    first: Mutex<Option<PanicPayload>>, // lock-order: 80
}

impl PanicSlot {
    fn park(&self, payload: PanicPayload) {
        let mut slot = self.first.lock().unwrap_or_else(PoisonError::into_inner);
        slot.get_or_insert(payload);
    }

    fn take(&self) -> Option<PanicPayload> {
        self.first
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    }
}

/// A fixed set of worker threads consuming jobs from a bounded queue.
pub struct ServicePool {
    queue: Arc<BoundedQueue<Job>>,
    panic_slot: Arc<PanicSlot>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServicePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServicePool")
            .field("workers", &self.workers.len())
            .field("queued", &self.queue.len())
            .finish()
    }
}

impl ServicePool {
    /// Starts `threads` workers over a job queue of depth `queue_depth`.
    /// A spawn refusal from the OS tears down any workers already started
    /// (none of them can have claimed work yet) and returns typed.
    ///
    /// # Panics
    ///
    /// Panics if `threads` or `queue_depth` is zero.
    pub fn new(threads: usize, queue_depth: usize) -> Result<Self, PoolSpawnError> {
        assert!(threads > 0, "a pool needs at least one worker");
        let queue = Arc::new(BoundedQueue::new(queue_depth));
        let panic_slot = Arc::new(PanicSlot::default());
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let worker_queue = Arc::clone(&queue);
            let worker_slot = Arc::clone(&panic_slot);
            let spawned = std::thread::Builder::new()
                .name(format!("camo-service-{i}"))
                .spawn(move || {
                    while let Some(job) = worker_queue.pop() {
                        if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                            worker_slot.park(payload);
                        }
                    }
                });
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(source) => {
                    // Close the (still empty) queue so the workers that
                    // did start exit, then join them before reporting.
                    queue.close();
                    for handle in workers {
                        let _ = handle.join();
                    }
                    return Err(PoolSpawnError { worker: i, source });
                }
            }
        }
        Ok(Self {
            queue,
            panic_slot,
            workers,
        })
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Jobs queued but not yet claimed by a worker.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Submits a job, blocking while the queue is full. Fails only after
    /// [`Self::shutdown`] began (the job is returned inside the error).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), PushError<Job>> {
        self.queue.push(Box::new(job))
    }

    /// Submits without blocking; `Err(Full)` is the backpressure signal.
    pub fn try_submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), PushError<Job>> {
        self.queue.try_push(Box::new(job))
    }

    /// Gracefully shuts down: drains all submitted work, joins every
    /// worker, then propagates the first job panic (if any) on this thread.
    pub fn shutdown(mut self) {
        self.queue.close();
        let workers = std::mem::take(&mut self.workers);
        for handle in workers {
            // Workers never panic themselves (jobs run under
            // catch_unwind), so a join error indicates a bug in the pool;
            // park it like a job panic so it is surfaced after every
            // sibling is joined instead of stranding them.
            if let Err(payload) = handle.join() {
                self.panic_slot.park(payload);
            }
        }
        if let Some(payload) = self.panic_slot.take() {
            resume_unwind(payload);
        }
    }
}

impl Drop for ServicePool {
    /// Dropping without [`Self::shutdown`] still drains and joins (so work
    /// is never abandoned), but swallows parked panics — explicit shutdown
    /// is the observable path.
    fn drop(&mut self) {
        self.queue.close();
        for handle in std::mem::take(&mut self.workers) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn shutdown_drains_all_submitted_work() {
        let pool = ServicePool::new(2, 64).expect("spawn pool");
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                done.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn submit_after_shutdown_begins_is_rejected() {
        let pool = ServicePool::new(1, 4).expect("spawn pool");
        pool.queue.close();
        assert!(matches!(pool.submit(|| {}), Err(PushError::Closed(_))));
    }

    #[test]
    fn try_submit_signals_backpressure_when_full() {
        // One worker parked on a gate keeps the queue from draining.
        let gate = Arc::new(BoundedQueue::<()>::new(1));
        let pool = ServicePool::new(1, 1).expect("spawn pool");
        let worker_gate = Arc::clone(&gate);
        pool.submit(move || {
            let _ = worker_gate.pop();
        })
        .unwrap();
        // Wait until the worker has claimed the gate job, fill the single
        // queue slot, then observe Full without blocking.
        while pool.queued() > 0 {
            std::thread::yield_now();
        }
        pool.try_submit(|| {}).unwrap();
        assert!(matches!(pool.try_submit(|| {}), Err(PushError::Full(_))));
        gate.close();
        pool.shutdown();
    }

    #[test]
    fn shutdown_propagates_the_first_job_panic_after_draining() {
        let pool = ServicePool::new(2, 16).expect("spawn pool");
        let done = Arc::new(AtomicUsize::new(0));
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        pool.submit(|| panic!("poisoned request")).unwrap();
        for _ in 0..10 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                done.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        let result = catch_unwind(AssertUnwindSafe(|| pool.shutdown()));
        std::panic::set_hook(prev);
        let payload = result.expect_err("the job panic must propagate");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("poisoned request")
        );
        // The panic did not abort the drain: every later job still ran.
        assert_eq!(done.load(Ordering::Relaxed), 10);
    }
}
