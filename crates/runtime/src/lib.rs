//! Deterministic parallel batch runtime for CAMO-RS.
//!
//! Every benchmark table, training epoch and workload sweep in this
//! workspace iterates over a set of independent clips, and each clip's
//! [`MaskEvaluator`](camo_litho::MaskEvaluator) session is self-contained —
//! multi-clip parallelism is therefore the cheapest large speedup
//! available. This crate provides it without sacrificing reproducibility:
//!
//! * [`pool`] — a hand-rolled scoped worker pool on `std::thread` (the
//!   build is offline, so no `rayon`), exposing [`scope`] and
//!   [`parallel_map`] with dynamic work claiming but input-ordered results;
//! * [`batch`] — [`optimize_batch`] / [`sweep_cases`] for multi-clip
//!   inference, and [`imitation_epoch`] / [`reinforce_epoch`] / [`train`]
//!   for training with per-clip episodes computed concurrently;
//! * [`layout`] — [`evaluate_layout`] / [`sweep_layout`] for layouts larger
//!   than one clip, tiled by [`camo_litho::tiling`] and swept as an
//!   ordinary clip batch;
//! * [`queue`] — a bounded MPMC [`BoundedQueue`] whose `try_push` is the
//!   backpressure primitive long-lived front-ends build *reject with
//!   retry-after* on, and whose close-then-drain semantics make graceful
//!   shutdown possible;
//! * [`service`] — [`ServicePool`], a long-lived worker pool over that
//!   queue with drain/join/propagate-first-panic shutdown (the scheduling
//!   substrate of the `camo-serve` front-end).
//!
//! Every clip (or tile) in a batch shares one immutable
//! [`camo_litho::LithoContext`] — kernel taps are derived once per
//! configuration, never per clip — and scratch buffers come from the
//! simulator's [`camo_litho::WorkspacePool`], so a sweep holds at most one
//! workspace per live session regardless of batch size.
//!
//! # Determinism contract
//!
//! Results are **bit-identical to the serial path at any thread count**,
//! property-tested in `tests/properties.rs`:
//!
//! * inference engines decide greedily and are cloned per clip, so no state
//!   crosses clips;
//! * training episodes sample from generators derived from
//!   `(seed, epoch, clip_index)` (see `CamoConfig::seed`) instead of one
//!   mutable stream threaded across clips;
//! * epoch gradients are reduced in clip order on the caller's thread, so
//!   floating-point summation order never depends on scheduling.
//!
//! ```
//! use camo::{CamoConfig, CamoEngine};
//! use camo_baselines::OpcConfig;
//! use camo_geometry::{Clip, Rect};
//! use camo_litho::{LithoConfig, LithoSimulator};
//! use camo_runtime::optimize_batch;
//!
//! let clips: Vec<Clip> = (0..3)
//!     .map(|i| {
//!         let mut clip = Clip::new(Rect::new(0, 0, 800, 800));
//!         let x = 305 + 30 * i;
//!         clip.add_target(Rect::new(x, 365, x + 70, 435).to_polygon());
//!         clip
//!     })
//!     .collect();
//! let simulator = LithoSimulator::new(LithoConfig::fast());
//! let mut opc = OpcConfig::via_layer();
//! opc.max_steps = 2;
//! let engine = CamoEngine::new(opc, CamoConfig::fast());
//!
//! let outcomes = optimize_batch(&engine, &clips, &simulator, 2);
//! assert_eq!(outcomes.len(), clips.len());
//! ```

#![deny(missing_docs)]

pub mod batch;
pub mod layout;
pub mod pool;
pub mod queue;
pub mod service;

pub use batch::{
    imitation_epoch, optimize_batch, reinforce_epoch, reinforce_epoch_at, sweep_cases, train,
};
pub use layout::{evaluate_layout, sweep_layout};
pub use pool::{available_threads, parallel_map, scope, Scope};
pub use queue::{BoundedQueue, PushError};
pub use service::ServicePool;
