//! A hand-rolled scoped worker pool on `std::thread`.
//!
//! The build environment is offline, so instead of `rayon` this module
//! vendors the one primitive the batch runtime needs: [`parallel_map`], a
//! deterministic fork-join map over a slice. Workers claim items through an
//! atomic cursor (cheap dynamic load balancing — clips vary widely in
//! cost), and results are always returned **in input order**, so callers
//! observe the same output for any thread count.
//!
//! [`scope`] is re-exported from `std::thread` for callers that want raw
//! scoped spawning alongside the map.

use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};

pub use std::thread::{scope, Scope};

/// Number of hardware threads available to this process (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to `threads` scoped worker threads and
/// returns the results in input order.
///
/// `f` receives `(index, &item)`. A `threads` of 0 uses
/// [`available_threads`]; a `threads` of 1 (or a slice of at most one item)
/// runs inline on the caller's thread. Work is claimed dynamically through
/// an atomic cursor, so thread count affects only wall-clock time, never
/// the result: `f` is called exactly once per item and the output vector is
/// ordered by item index.
///
/// # Panics
///
/// If `f` panics on any item the panic is resurfaced on the caller's thread
/// after every worker has drained — one poisoned task never deadlocks the
/// scope or strands other workers.
pub fn parallel_map<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = if threads == 0 {
        available_threads()
    } else {
        threads
    };
    let threads = threads.min(items.len().max(1));
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let n = items.len();
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);

    scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        // relaxed-ok: the counter only hands out distinct
                        // indices; item data is published by the join, not
                        // by this atomic.
                        let i = cursor.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter; reads are reporting-only
                        if i >= n {
                            break;
                        }
                        produced.push((i, f(i, &items[i])));
                    }
                    produced
                })
            })
            .collect();
        let mut poisoned = None;
        for handle in handles {
            match handle.join() {
                Ok(produced) => {
                    for (i, value) in produced {
                        slots[i] = Some(value);
                    }
                }
                // Defer the resurfacing until every worker has been joined,
                // so a panicking task cannot strand its siblings.
                Err(payload) => poisoned = Some(payload),
            }
        }
        if let Some(payload) = poisoned {
            panic::resume_unwind(payload);
        }
    });

    slots
        .into_iter()
        // A None slot is impossible by construction: the scope above joins
        // every worker, each index is claimed exactly once by the atomic
        // cursor, and a worker panic already resumed unwinding.
        // panic-ok: unreachable by the join/claim invariant above.
        .map(|slot| slot.expect("every item is claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order_for_any_thread_count() {
        let items: Vec<usize> = (0..37).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for threads in [0, 1, 2, 3, 8] {
            let got = parallel_map(threads, &items, |i, &x| {
                assert_eq!(i, x);
                x * x
            });
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs_run_inline() {
        let none: Vec<u8> = Vec::new();
        assert!(parallel_map(4, &none, |_, &x| x).is_empty());
        assert_eq!(parallel_map(4, &[7], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn task_panic_propagates_without_deadlocking() {
        let items: Vec<usize> = (0..16).collect();
        // Silence the worker's default panic report; the panic still
        // propagates through the scope join below.
        let prev = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));
        let result = panic::catch_unwind(|| {
            parallel_map(4, &items, |i, &x| {
                if i == 5 {
                    panic!("poisoned task");
                }
                x
            })
        });
        panic::set_hook(prev);
        let payload = result.expect_err("the task panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-str payload");
        assert_eq!(message, "poisoned task");
    }
}
