//! A bounded MPMC queue with non-blocking backpressure and cooperative
//! shutdown.
//!
//! This is the scheduling spine shared by the service pool and the serving
//! front-end: producers either block until space frees ([`BoundedQueue::push`])
//! or observe fullness immediately ([`BoundedQueue::try_push`], the
//! backpressure path — a server answers *reject with retry-after* instead of
//! stalling its reader threads), and consumers block until work arrives or
//! the queue is closed and drained. Closing never discards items: everything
//! enqueued before [`BoundedQueue::close`] is still handed out, which is what
//! makes graceful drain-then-join shutdown possible.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Why a push did not enqueue.
#[derive(PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back (backpressure).
    Full(T),
    /// The queue was closed; the item is handed back.
    Closed(T),
}

/// Manual so queues of non-`Debug` items (boxed jobs) still produce useful
/// errors.
impl<T> std::fmt::Debug for PushError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Full(_) => f.write_str("PushError::Full(..)"),
            Self::Closed(_) => f.write_str("PushError::Closed(..)"),
        }
    }
}

impl<T> PushError<T> {
    /// The rejected item.
    pub fn into_inner(self) -> T {
        match self {
            Self::Full(item) | Self::Closed(item) => item,
        }
    }
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Deepest the queue has ever been — a backpressure gauge for the
    /// metrics plane, updated under the same lock as the push itself so it
    /// is exact, not sampled.
    high_water: usize,
}

/// A bounded multi-producer/multi-consumer FIFO on `Mutex` + `Condvar`.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>, // lock-order: 55
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity queue cannot accept work");
        Self {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                high_water: 0,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    /// True once [`Self::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// The deepest the queue has ever been (exact: tracked under the queue
    /// lock at every successful push). Never resets.
    pub fn high_water(&self) -> usize {
        self.lock().high_water
    }

    /// Enqueues without blocking, or reports fullness/closure immediately —
    /// the backpressure path.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() == self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        state.high_water = state.high_water.max(state.items.len());
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues, blocking while the queue is full; fails only when the
    /// queue is (or becomes) closed.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.lock();
        loop {
            if state.closed {
                return Err(PushError::Closed(item));
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                state.high_water = state.high_water.max(state.items.len());
                drop(state);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Dequeues, blocking until an item arrives. Returns `None` only when
    /// the queue is closed **and** drained, so no enqueued item is lost to
    /// shutdown.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Dequeues without blocking (`None` when nothing is queued right now —
    /// callers that must distinguish emptiness from closure use [`Self::pop`]).
    pub fn try_pop(&self) -> Option<T> {
        let item = self.lock().items.pop_front();
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Closes the queue: later pushes fail, and consumers drain what is
    /// already queued before observing `None`. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// The queue state is plain data; recover from poisoning instead of
    /// cascading a producer's panic into every consumer.
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_push_reports_fullness_with_the_item() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()));
    }

    #[test]
    fn high_water_tracks_deepest_occupancy_and_never_resets() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.high_water(), 0);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.push(3).unwrap();
        assert_eq!(q.high_water(), 3);
        // Draining does not lower the mark...
        while q.try_pop().is_some() {}
        assert_eq!(q.high_water(), 3);
        // ...and a rejected push does not raise it.
        q.try_push(1).unwrap();
        assert_eq!(q.high_water(), 3);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_push_waits_for_space_and_pop_waits_for_items() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0u32).unwrap();
        std::thread::scope(|s| {
            let producer = {
                let q = Arc::clone(&q);
                s.spawn(move || q.push(1).is_ok())
            };
            // The consumer frees space; the blocked producer finishes.
            assert_eq!(q.pop(), Some(0));
            assert!(producer.join().unwrap());
            assert_eq!(q.pop(), Some(1));
        });
    }

    #[test]
    fn close_unblocks_waiting_consumers() {
        let q = Arc::new(BoundedQueue::<u8>::new(1));
        std::thread::scope(|s| {
            let consumer = {
                let q = Arc::clone(&q);
                s.spawn(move || q.pop())
            };
            q.close();
            assert_eq!(consumer.join().unwrap(), None);
        });
    }
}
