//! Layout-scale sweeps on the worker pool: tile a large layout with
//! [`camo_litho::tiling`], evaluate or optimise the tiles as an ordinary
//! clip batch, and stitch the results back into one layout-level report.
//!
//! Everything here inherits both determinism contracts: tile evaluation is
//! bit-identical to whole-layout evaluation (the tiler's guarantee), and
//! the pool returns results in tile order, so any thread count produces the
//! identical stitched report.

use crate::pool::parallel_map;
use camo_baselines::{OpcEngine, OpcOutcome};
use camo_geometry::MaskState;
use camo_litho::tiling::{evaluate_tile, stitch_layout, tile_layout};
use camo_litho::{LayoutReport, LithoSimulator, Tiler};

/// Evaluates a layout mask by sweeping its tiles over up to `threads`
/// workers and stitching the per-tile results. Bit-identical to
/// [`camo_litho::tiling::evaluate_layout`] (and therefore to whole-layout
/// evaluation) at any thread count; the whole sweep shares the simulator's
/// context and at most `threads` pooled workspaces.
pub fn evaluate_layout(
    sim: &LithoSimulator,
    layout: &MaskState,
    tiler: &Tiler,
    threads: usize,
) -> LayoutReport {
    let tiles = tile_layout(layout, sim.config(), tiler);
    let evals = parallel_map(threads, &tiles, |_, tile| evaluate_tile(sim, tile));
    stitch_layout(layout, &tiles, &evals, sim.config().epe_search_range)
}

/// Optimises a layout tile-by-tile: every tile clip is handed to its own
/// clone of `engine` on the worker pool (exactly like
/// [`crate::sweep_cases`]), returning `(tile name, outcome)` pairs in tile
/// order. Halo regions overlap between neighbouring tiles, so outcomes
/// describe per-tile masks; interior measure points are authoritative for
/// their owning tile.
///
/// Engines receive only the tile **clip** and build their own initial mask
/// from it (per [`OpcEngine::optimize`]'s contract), so any segment offsets
/// already applied to `layout` seed tiled *evaluation*
/// ([`evaluate_layout`]) but are not a starting point for optimisation —
/// exactly as [`crate::optimize_batch`] treats ordinary clips.
pub fn sweep_layout<E>(
    engine: &E,
    layout: &MaskState,
    tiler: &Tiler,
    sim: &LithoSimulator,
    threads: usize,
) -> Vec<(String, OpcOutcome)>
where
    E: OpcEngine + Clone + Sync,
{
    let tiles = tile_layout(layout, sim.config(), tiler);
    let outcomes = parallel_map(threads, &tiles, |_, tile| {
        let mut worker = engine.clone();
        worker.optimize(tile.mask.clip(), sim)
    });
    tiles
        .iter()
        .map(|t| t.mask.clip().name().to_string())
        .zip(outcomes)
        .collect()
}
