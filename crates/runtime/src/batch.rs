//! Batch APIs over the worker pool: multi-clip inference, parallel training
//! epochs and named-case workload sweeps.
//!
//! Everything here is **bit-identical to the serial path at any thread
//! count**. Inference engines are cloned per task and decide greedily;
//! training episodes derive their random streams from
//! `(seed, clip_index)` and the epoch reduction always sums episode
//! gradients in clip order (see [`CamoTrainer`]'s epoch documentation).

use crate::pool::parallel_map;
use camo::{CamoEngine, CamoTrainer, TrainingReport};
use camo_baselines::{OpcEngine, OpcOutcome};
use camo_geometry::Clip;
use camo_litho::LithoSimulator;

/// Optimises every clip with its own clone of `engine`, on up to `threads`
/// worker threads, returning outcomes in clip order.
///
/// The engine template is cloned once per clip, so per-run state (scratch
/// activations, evaluation sessions) never leaks between clips and the
/// result is bit-identical to calling `engine.clone().optimize(..)` in a
/// serial loop — the property the runtime's tests assert for 1–4 threads.
pub fn optimize_batch<E>(
    engine: &E,
    clips: &[Clip],
    simulator: &LithoSimulator,
    threads: usize,
) -> Vec<OpcOutcome>
where
    E: OpcEngine + Clone + Sync,
{
    parallel_map(threads, clips, |_, clip| {
        let mut worker = engine.clone();
        worker.optimize(clip, simulator)
    })
}

/// Optimises a set of named benchmark cases (a workload sweep), returning
/// `(name, outcome)` pairs in case order.
pub fn sweep_cases<E>(
    engine: &E,
    cases: &[(String, Clip)],
    simulator: &LithoSimulator,
    threads: usize,
) -> Vec<(String, OpcOutcome)>
where
    E: OpcEngine + Clone + Sync,
{
    let outcomes = parallel_map(threads, cases, |_, (_, clip)| {
        let mut worker = engine.clone();
        worker.optimize(clip, simulator)
    });
    cases
        .iter()
        .map(|(name, _)| name.clone())
        .zip(outcomes)
        .collect()
}

/// One Phase-1 (behaviour cloning) epoch with per-clip episodes computed
/// concurrently; returns the mean cross-entropy loss.
///
/// Episodes are gradients against the epoch-start policy snapshot, so they
/// are independent; the reduction and the single parameter update happen in
/// clip order on the caller's thread, making the result bit-identical to
/// [`CamoTrainer::imitation_epoch`].
pub fn imitation_epoch(
    trainer: &CamoTrainer,
    engine: &mut CamoEngine,
    clips: &[Clip],
    simulator: &LithoSimulator,
    threads: usize,
) -> f64 {
    let snapshot: &CamoEngine = engine;
    let episodes = parallel_map(threads, clips, |_, clip| {
        trainer.imitation_episode(snapshot, clip, simulator)
    });
    CamoTrainer::finish_imitation_epoch(engine, &episodes)
}

/// One Phase-2 (modulated REINFORCE) epoch (as epoch 0) with per-clip
/// episodes computed concurrently; returns the summed episode reward.
/// Multi-epoch schedules should use [`reinforce_epoch_at`].
pub fn reinforce_epoch(
    trainer: &CamoTrainer,
    engine: &mut CamoEngine,
    clips: &[Clip],
    simulator: &LithoSimulator,
    threads: usize,
) -> f64 {
    reinforce_epoch_at(trainer, engine, clips, simulator, threads, 0)
}

/// One Phase-2 (modulated REINFORCE) epoch with per-clip episodes computed
/// concurrently; returns the summed episode reward.
///
/// Each episode samples from its `(seed, epoch * clips.len() + clip_index)`
/// derived generator, so scheduling cannot change the streams; the
/// fixed-order reduction makes the result bit-identical to
/// [`CamoTrainer::reinforce_epoch_at`].
pub fn reinforce_epoch_at(
    trainer: &CamoTrainer,
    engine: &mut CamoEngine,
    clips: &[Clip],
    simulator: &LithoSimulator,
    threads: usize,
    epoch: usize,
) -> f64 {
    let snapshot: &CamoEngine = engine;
    let base = epoch * clips.len();
    let episodes = parallel_map(threads, clips, |clip_index, clip| {
        trainer.reinforce_episode(snapshot, base + clip_index, clip, simulator)
    });
    CamoTrainer::finish_reinforce_epoch(engine, &episodes)
}

/// The full two-phase training schedule with every epoch's episodes run on
/// the pool; bit-identical to [`CamoTrainer::train`] at any thread count.
pub fn train(
    trainer: &CamoTrainer,
    engine: &mut CamoEngine,
    clips: &[Clip],
    simulator: &LithoSimulator,
    threads: usize,
) -> TrainingReport {
    let imitation_epochs = engine.config().imitation_epochs;
    let rl_epochs = engine.config().rl_epochs;
    let mut report = TrainingReport::default();
    for _ in 0..imitation_epochs {
        report
            .imitation_losses
            .push(imitation_epoch(trainer, engine, clips, simulator, threads));
    }
    for epoch in 0..rl_epochs {
        report.rl_rewards.push(reinforce_epoch_at(
            trainer, engine, clips, simulator, threads, epoch,
        ));
    }
    report
}
