//! Determinism properties of the batch runtime: everything the pool
//! computes must be bit-identical to the serial path for 1–4 threads.

use camo::{CamoConfig, CamoEngine, CamoTrainer};
use camo_baselines::{CalibreLikeOpc, OpcConfig, OpcEngine, RlOpc, RlOpcConfig};
use camo_geometry::{Clip, FeatureConfig, Rect};
use camo_litho::{LithoConfig, LithoSimulator, Tiler};
use camo_runtime::{
    evaluate_layout, imitation_epoch, optimize_batch, reinforce_epoch, sweep_cases, sweep_layout,
};
use proptest::prelude::*;

/// A small via grid with `count` vias spread over the clip.
fn batch_clips(count: usize, size: i64) -> Vec<Clip> {
    (0..count)
        .map(|i| {
            let mut clip = Clip::new(Rect::new(0, 0, 900, 900));
            let x = 205 + 60 * (i as i64 % 5);
            let y = 255 + 90 * (i as i64 / 5);
            clip.add_target(Rect::new(x, y, x + size, y + size).to_polygon());
            if i % 2 == 1 {
                clip.add_target(
                    Rect::new(x + 280, y + 140, x + 280 + size, y + 140 + size).to_polygon(),
                );
            }
            clip
        })
        .collect()
}

fn fast_opc(max_steps: usize) -> OpcConfig {
    let mut opc = OpcConfig::via_layer();
    opc.max_steps = max_steps;
    opc
}

fn assert_outcomes_bit_identical(
    serial: &[camo_baselines::OpcOutcome],
    parallel: &[camo_baselines::OpcOutcome],
    threads: usize,
) {
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(parallel).enumerate() {
        assert_eq!(
            s.mask.offsets(),
            p.mask.offsets(),
            "clip {i} offsets diverged at {threads} threads"
        );
        assert_eq!(
            s.result.epe.per_point, p.result.epe.per_point,
            "clip {i} EPE diverged at {threads} threads"
        );
        assert_eq!(
            s.result.pv_band.to_bits(),
            p.result.pv_band.to_bits(),
            "clip {i} PV band diverged at {threads} threads"
        );
        assert_eq!(s.steps, p.steps, "clip {i} step count diverged");
        assert_eq!(
            s.epe_trajectory, p.epe_trajectory,
            "clip {i} trajectory diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `optimize_batch` with a CAMO engine template matches the serial loop
    /// bit for bit, whatever the clip count and thread count.
    #[test]
    fn camo_optimize_batch_is_bit_identical_to_serial(
        count in 2usize..6,
        size in 60i64..90,
        threads in 1usize..=4,
    ) {
        let clips = batch_clips(count, size);
        let sim = LithoSimulator::new(LithoConfig::fast());
        let engine = CamoEngine::new(fast_opc(2), CamoConfig::fast());
        let serial: Vec<_> = clips
            .iter()
            .map(|clip| engine.clone().optimize(clip, &sim))
            .collect();
        let parallel = optimize_batch(&engine, &clips, &sim, threads);
        assert_outcomes_bit_identical(&serial, &parallel, threads);
    }

    /// Parallel Phase-1 and Phase-2 epochs leave the policy in exactly the
    /// state the serial trainer produces, for 1–4 threads.
    #[test]
    fn parallel_training_epochs_are_bit_identical_to_serial(threads in 1usize..=4) {
        let clips = batch_clips(3, 70);
        let sim = LithoSimulator::new(LithoConfig::fast());

        let mut serial_engine = CamoEngine::new(fast_opc(2), CamoConfig::fast());
        let mut serial_trainer = CamoTrainer::new(&serial_engine);
        let mut pool_engine = CamoEngine::new(fast_opc(2), CamoConfig::fast());
        let pool_trainer = CamoTrainer::new(&pool_engine);

        for epoch in 0..2 {
            let serial_loss = serial_trainer.imitation_epoch(&mut serial_engine, &clips, &sim);
            let pool_loss = imitation_epoch(&pool_trainer, &mut pool_engine, &clips, &sim, threads);
            assert_eq!(
                serial_loss.to_bits(),
                pool_loss.to_bits(),
                "imitation loss diverged in epoch {epoch} at {threads} threads"
            );
        }
        let serial_reward = serial_trainer.reinforce_epoch(&mut serial_engine, &clips, &sim);
        let pool_reward = reinforce_epoch(&pool_trainer, &mut pool_engine, &clips, &sim, threads);
        assert_eq!(
            serial_reward.to_bits(),
            pool_reward.to_bits(),
            "REINFORCE reward diverged at {threads} threads"
        );

        let mask = serial_engine.opc_config().initial_mask(&clips[0]);
        let graph = serial_engine.graph(&mask);
        let features = serial_engine.node_features(&mask);
        let serial_logits = serial_engine
            .policy()
            .forward_inference(&features, graph.adjacency());
        let pool_logits = pool_engine
            .policy()
            .forward_inference(&features, graph.adjacency());
        assert_eq!(
            serial_logits, pool_logits,
            "trained policies diverged at {threads} threads"
        );
    }
}

#[test]
fn baseline_engines_run_bit_identically_through_the_pool() {
    let clips = batch_clips(4, 70);
    let sim = LithoSimulator::new(LithoConfig::fast());

    let calibre = CalibreLikeOpc::new(fast_opc(3));
    let serial: Vec<_> = clips
        .iter()
        .map(|clip| calibre.clone().optimize(clip, &sim))
        .collect();
    for threads in 1..=4 {
        let parallel = optimize_batch(&calibre, &clips, &sim, threads);
        assert_outcomes_bit_identical(&serial, &parallel, threads);
    }

    let rl = RlOpc::new(
        fast_opc(2),
        RlOpcConfig {
            features: FeatureConfig {
                window: 300,
                tensor_size: 8,
            },
            hidden: 16,
            ..RlOpcConfig::default()
        },
    );
    let serial: Vec<_> = clips
        .iter()
        .map(|clip| rl.clone().optimize(clip, &sim))
        .collect();
    let parallel = optimize_batch(&rl, &clips, &sim, 3);
    assert_outcomes_bit_identical(&serial, &parallel, 3);
}

#[test]
fn parallel_layout_evaluation_is_bit_identical_at_any_thread_count() {
    let case =
        camo_workloads::generate_layout("L-test", &camo_workloads::LayoutParams::smoke(), 4242);
    let mut mask = case.initial_mask();
    let moves: Vec<i64> = (0..mask.segment_count())
        .map(|i| [2, -1, 0, 3][i % 4])
        .collect();
    mask.apply_moves(&moves);

    let sim = LithoSimulator::new(LithoConfig::fast());
    let tiler = Tiler::new(1000);
    // Whole-layout evaluation is the ground truth; every thread count of
    // the tiled parallel sweep must reproduce it bit for bit.
    let whole = sim.evaluate(&mask);
    for threads in 1..=4 {
        let report = evaluate_layout(&sim, &mask, &tiler, threads);
        assert!(report.tiles > 1, "smoke layout must span several tiles");
        assert_eq!(
            report.epe.per_point.len(),
            whole.epe.per_point.len(),
            "stitched report must cover every measure point"
        );
        for (i, (t, w)) in report
            .epe
            .per_point
            .iter()
            .zip(&whole.epe.per_point)
            .enumerate()
        {
            assert_eq!(
                t.to_bits(),
                w.to_bits(),
                "EPE {i} diverged at {threads} threads: {t} vs {w}"
            );
        }
        assert_eq!(
            report.pv_band.to_bits(),
            whole.pv_band.to_bits(),
            "PV band diverged at {threads} threads"
        );
    }
}

#[test]
fn sweep_layout_matches_serial_tile_optimisation() {
    let case = camo_workloads::generate_layout("L-opt", &camo_workloads::LayoutParams::smoke(), 77);
    let mask = case.initial_mask();
    let sim = LithoSimulator::new(LithoConfig::fast());
    let tiler = Tiler::new(1200);
    let engine = CalibreLikeOpc::new(fast_opc(2));

    let serial = sweep_layout(&engine, &mask, &tiler, &sim, 1);
    assert!(serial.len() > 1);
    for threads in 2..=4 {
        let parallel = sweep_layout(&engine, &mask, &tiler, &sim, threads);
        assert_eq!(serial.len(), parallel.len());
        for ((sn, s), (pn, p)) in serial.iter().zip(&parallel) {
            assert_eq!(sn, pn, "tile order diverged at {threads} threads");
            assert_eq!(s.mask.offsets(), p.mask.offsets());
            assert_eq!(s.result.epe.per_point, p.result.epe.per_point);
        }
    }
    // Tile names are derived from the layout name and grid position.
    assert!(serial[0].0.starts_with("L-opt/t"));
}

#[test]
fn sweep_cases_preserves_names_and_order() {
    let clips = batch_clips(3, 70);
    let sim = LithoSimulator::new(LithoConfig::fast());
    let engine = CalibreLikeOpc::new(fast_opc(1));
    let cases: Vec<(String, Clip)> = clips
        .into_iter()
        .enumerate()
        .map(|(i, c)| (format!("case-{i}"), c))
        .collect();
    let results = sweep_cases(&engine, &cases, &sim, 2);
    let names: Vec<&str> = results.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, vec!["case-0", "case-1", "case-2"]);
}
