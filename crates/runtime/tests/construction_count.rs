//! Construction-count accounting for the shared litho context: one batch —
//! any clip count, any thread count — builds exactly one [`LithoContext`]
//! and derives kernel taps exactly once per (kernel, corner blur).
//!
//! This file deliberately holds a single `#[test]` so it runs alone in its
//! process: the assertions are exact deltas of process-wide counters, which
//! concurrent tests would perturb.

use camo::{CamoConfig, CamoEngine};
use camo_baselines::OpcConfig;
use camo_geometry::{Clip, Rect};
use camo_litho::{tap_derivation_count, LithoConfig, LithoContext, LithoSimulator};
use camo_runtime::optimize_batch;

#[test]
fn one_batch_builds_one_context_and_derives_taps_once() {
    let clips: Vec<Clip> = (0..6)
        .map(|i| {
            let mut clip = Clip::new(Rect::new(0, 0, 900, 900));
            let x = 300 + 20 * i;
            clip.add_target(Rect::new(x, 415, x + 70, 485).to_polygon());
            clip
        })
        .collect();

    let contexts_before = LithoContext::build_count();
    let taps_before = tap_derivation_count();

    let config = LithoConfig::fast();
    let kernels = config.optical.kernels().len();
    let simulator = LithoSimulator::new(config);

    // Building the simulator derives taps for the corner blur set (0.0
    // shared by nominal + outer, plus the inner corner's defocus) — and
    // nothing else ever does.
    let distinct_blurs = 2;
    assert_eq!(LithoContext::build_count() - contexts_before, 1);
    assert_eq!(
        tap_derivation_count() - taps_before,
        kernels * distinct_blurs
    );

    let mut opc = OpcConfig::via_layer();
    opc.max_steps = 2;
    let engine = CamoEngine::new(opc, CamoConfig::fast());
    for threads in [1, 2, 4] {
        let outcomes = optimize_batch(&engine, &clips, &simulator, threads);
        assert_eq!(outcomes.len(), clips.len());
    }

    // The entire batch — 6 clips × 3 thread counts, every one of which
    // opens evaluator sessions — shared the one context: no further
    // context builds, no per-clip tap derivation.
    assert_eq!(
        LithoContext::build_count() - contexts_before,
        1,
        "the batch must share a single LithoContext"
    );
    assert_eq!(
        tap_derivation_count() - taps_before,
        kernels * distinct_blurs,
        "no clip may re-derive kernel taps"
    );

    // And the workspace pool bounds live workspaces by concurrency, not by
    // clip count: 18 clip optimisations needed at most a handful of
    // allocations (serial reuse guarantees strictly fewer than one per
    // clip).
    let pool = simulator.pool();
    assert!(
        pool.allocation_count() < clips.len(),
        "workspaces must be recycled across the batch (allocated {}, reused {})",
        pool.allocation_count(),
        pool.reuse_count()
    );
    assert!(pool.reuse_count() > 0);
}
