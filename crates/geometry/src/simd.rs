//! Lane-width-generic SIMD kernels with runtime dispatch.
//!
//! The dense inner loops of the serving hot path — separable convolution,
//! area-coverage row fills, threshold sweeps — are written **once**, generic
//! over an [`Arch`] backend. Three backends exist: [`Scalar`] (portable,
//! always available), [`Sse2`] (2 × f64 lanes) and [`Avx2`] (4 × f64 lanes).
//! The active backend is selected exactly once per process by [`active`]:
//! the widest instruction set `is_x86_feature_detected!` reports, or the
//! `CAMO_SIMD` override (`scalar`, `sse2`, `avx2` or `auto`) for testing.
//! Requesting an undetected backend falls back to `scalar`; on targets other
//! than x86-64 every [`ArchId`] resolves to the scalar implementation.
//!
//! # Bit-identity contract
//!
//! Every backend produces **bit-identical** `f64` results to [`Scalar`]:
//! each output element is computed by the same sequence of IEEE-754
//! operations in the same order, only on independent lanes in parallel.
//! Concretely, [`Arch::convolve_interior`] accumulates taps in ascending
//! index order *per output pixel* (lanes are output pixels, so each lane
//! runs the scalar tap loop verbatim), [`Arch::axpy`] and
//! [`Arch::square_weighted_add`] are element-wise mul/add chains with the
//! scalar association, and the comparison kernels use the same ordered `>`
//! predicate. The parity tests below and the litho-level proptests assert
//! `to_bits` equality on every backend the host detects, and CI diffs a
//! `CAMO_SIMD=scalar` against a `CAMO_SIMD=auto` benchmark run bit for bit.
//! This is what lets the serving tier's determinism contract
//! (`(policy_version, seed, clip)` fully determines the result) survive the
//! SIMD specialisation: heterogeneous shards agree as long as they share a
//! CPU baseline, and `CAMO_SIMD=scalar` is the portable escape hatch.

use std::sync::OnceLock;

/// Identifier of one SIMD backend — the runtime half of the static [`Arch`]
/// trait. Order is ascending capability; `detected()` always lists backends
/// in this order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchId {
    /// Portable scalar loops; the semantics reference.
    Scalar,
    /// 128-bit SSE2, 2 × f64 lanes (baseline on x86-64).
    Sse2,
    /// 256-bit AVX2, 4 × f64 lanes.
    Avx2,
}

impl ArchId {
    /// Stable lower-case name (`scalar` / `sse2` / `avx2`) used by the
    /// `CAMO_SIMD` override, benchmark rows and the serving metrics report.
    pub fn name(self) -> &'static str {
        match self {
            ArchId::Scalar => Scalar::NAME,
            ArchId::Sse2 => Sse2::NAME,
            ArchId::Avx2 => Avx2::NAME,
        }
    }
}

/// Backends usable on this host, in ascending capability order; the first
/// entry is always [`ArchId::Scalar`]. Parity tests iterate this list.
pub fn detected() -> &'static [ArchId] {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            &[ArchId::Scalar, ArchId::Sse2, ArchId::Avx2]
        } else if std::arch::is_x86_feature_detected!("sse2") {
            &[ArchId::Scalar, ArchId::Sse2]
        } else {
            &[ArchId::Scalar]
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        &[ArchId::Scalar]
    }
}

static ACTIVE: OnceLock<ArchId> = OnceLock::new();

/// The backend every dispatched kernel call uses, selected once per process:
/// the `CAMO_SIMD` environment override when set (an undetected request
/// falls back to `scalar`; unknown values mean `auto`), otherwise the widest
/// backend [`detected`] reports.
pub fn active() -> ArchId {
    *ACTIVE.get_or_init(select)
}

fn select() -> ArchId {
    let best = *detected().last().unwrap_or(&ArchId::Scalar);
    match std::env::var("CAMO_SIMD").as_deref() {
        Ok("scalar") => ArchId::Scalar,
        Ok("sse2") if detected().contains(&ArchId::Sse2) => ArchId::Sse2,
        Ok("avx2") if detected().contains(&ArchId::Avx2) => ArchId::Avx2,
        Ok("sse2") | Ok("avx2") => ArchId::Scalar,
        _ => best,
    }
}

/// One SIMD backend: the dense f64 kernels of the hot path, written once
/// per lane width. Default methods are the scalar reference loops, so a
/// backend only overrides what it accelerates — and the scalar bodies *are*
/// the semantics every override must reproduce bit for bit.
///
/// Non-scalar implementations must only run on hosts where the matching CPU
/// feature was detected; [`active`] and [`detected`] enforce this, and the
/// dispatching wrappers ([`convolve_interior`] & co.) are the only intended
/// entry points.
pub trait Arch {
    /// Lower-case backend name (matches [`ArchId::name`]).
    const NAME: &'static str;
    /// f64 lanes processed per vector operation.
    const LANES: usize;

    /// `dst[i] += c` — the fully-covered interior span of an area-coverage
    /// row fill, where every pixel gains the same coverage contribution.
    fn add_constant(dst: &mut [f64], c: f64) {
        for d in dst {
            *d += c;
        }
    }

    /// `acc[i] += t · src[i]` — one tap of the vertical convolution pass.
    /// Per element this is exactly the scalar `acc += t * s` (mul then add,
    /// two roundings; never an FMA, which would round once and diverge).
    fn axpy(acc: &mut [f64], t: f64, src: &[f64]) {
        for (a, s) in acc.iter_mut().zip(src) {
            *a += t * s;
        }
    }

    /// `out[i] = acc[i] / norm` — the normalisation store of a convolution
    /// row.
    fn div_into(out: &mut [f64], acc: &[f64], norm: f64) {
        for (o, a) in out.iter_mut().zip(acc) {
            *o = a / norm;
        }
    }

    /// `out[i] += weight · amp[i] · amp[i]` — the SOCS intensity
    /// accumulation, associated exactly as the scalar `(weight * v) * v`.
    fn square_weighted_add(out: &mut [f64], weight: f64, amp: &[f64]) {
        for (o, &v) in out.iter_mut().zip(amp) {
            *o += weight * v * v;
        }
    }

    /// The interior span `[il, ih)` of one convolution row: for each output
    /// pixel `x`, the dot product of `taps` against
    /// `row_in[x-radius ..= x+radius]` accumulated in ascending tap order,
    /// divided by `taps_sum`. Callers guarantee full tap support:
    /// `il ≥ radius` and `ih + radius < row_in.len() + 1`.
    ///
    /// Vector backends assign consecutive *output pixels* to lanes, so each
    /// lane still runs the ascending tap loop verbatim — the reduction
    /// design that keeps SIMD bit-identical to scalar.
    fn convolve_interior(
        row_in: &[f64],
        row_out: &mut [f64],
        taps: &[f64],
        taps_sum: f64,
        il: usize,
        ih: usize,
    ) {
        let len = taps.len();
        let radius = len / 2;
        for x in il..ih {
            let window = &row_in[x - radius..x - radius + len];
            let mut acc = 0.0;
            for (t, v) in taps.iter().zip(window) {
                acc += t * v;
            }
            row_out[x] = acc / taps_sum;
        }
    }

    /// Number of elements printed under the outer corner but not the inner:
    /// `outer[i] > t_out && !(inner[i] > t_in)` — one PV-band row.
    // The negation is load-bearing: vector backends realise it as ANDNOT of
    // an ordered `>` compare, so `!(x > t)` — not `x <= t` — is the predicate
    // every backend must share (they differ on NaN).
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn band_count(inner: &[f64], t_in: f64, outer: &[f64], t_out: f64) -> usize {
        let mut count = 0;
        for (&i_in, &i_out) in inner.iter().zip(outer) {
            if i_out > t_out && !(i_in > t_in) {
                count += 1;
            }
        }
        count
    }

    /// Threshold sweep to a bitmask: bit `j` of `words[i]` is
    /// `src[64·i + j] > threshold`. Trailing bits of the last touched word
    /// are zero; `words` beyond the touched prefix are left untouched.
    fn mask_gt(src: &[f64], threshold: f64, words: &mut [u64]) {
        for (word, chunk) in words.iter_mut().zip(src.chunks(64)) {
            let mut w = 0u64;
            for (j, &v) in chunk.iter().enumerate() {
                if v > threshold {
                    w |= 1 << j;
                }
            }
            *word = w;
        }
    }
}

/// Portable scalar backend — the reference implementation of every kernel.
pub struct Scalar;

impl Arch for Scalar {
    const NAME: &'static str = "scalar";
    const LANES: usize = 1;
}

/// 2-lane SSE2 backend. On non-x86-64 targets the type exists but runs the
/// scalar defaults, so [`ArchId`] stays portable.
pub struct Sse2;

/// 4-lane AVX2 backend. On non-x86-64 targets the type exists but runs the
/// scalar defaults, so [`ArchId`] stays portable.
pub struct Avx2;

#[cfg(not(target_arch = "x86_64"))]
impl Arch for Sse2 {
    const NAME: &'static str = "sse2";
    const LANES: usize = 2;
}

#[cfg(not(target_arch = "x86_64"))]
impl Arch for Avx2 {
    const NAME: &'static str = "avx2";
    const LANES: usize = 4;
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{Arch, Avx2, Scalar, Sse2};
    use std::arch::x86_64::*;

    impl Arch for Sse2 {
        const NAME: &'static str = "sse2";
        const LANES: usize = 2;

        fn add_constant(dst: &mut [f64], c: f64) {
            debug_assert!(std::arch::is_x86_feature_detected!("sse2"));
            // SAFETY: the dispatch layer selects `Sse2` only on hosts where
            // `is_x86_feature_detected!("sse2")` held (debug-asserted above).
            unsafe { add_constant_sse2(dst, c) }
        }

        fn axpy(acc: &mut [f64], t: f64, src: &[f64]) {
            debug_assert!(std::arch::is_x86_feature_detected!("sse2"));
            // SAFETY: dispatch selects `Sse2` only after SSE2 detection.
            unsafe { axpy_sse2(acc, t, src) }
        }

        fn div_into(out: &mut [f64], acc: &[f64], norm: f64) {
            debug_assert!(std::arch::is_x86_feature_detected!("sse2"));
            // SAFETY: dispatch selects `Sse2` only after SSE2 detection.
            unsafe { div_into_sse2(out, acc, norm) }
        }

        fn square_weighted_add(out: &mut [f64], weight: f64, amp: &[f64]) {
            debug_assert!(std::arch::is_x86_feature_detected!("sse2"));
            // SAFETY: dispatch selects `Sse2` only after SSE2 detection.
            unsafe { square_weighted_add_sse2(out, weight, amp) }
        }

        fn convolve_interior(
            row_in: &[f64],
            row_out: &mut [f64],
            taps: &[f64],
            taps_sum: f64,
            il: usize,
            ih: usize,
        ) {
            debug_assert!(std::arch::is_x86_feature_detected!("sse2"));
            // SAFETY: dispatch selects `Sse2` only after SSE2 detection.
            unsafe { convolve_interior_sse2(row_in, row_out, taps, taps_sum, il, ih) }
        }

        fn band_count(inner: &[f64], t_in: f64, outer: &[f64], t_out: f64) -> usize {
            debug_assert!(std::arch::is_x86_feature_detected!("sse2"));
            // SAFETY: dispatch selects `Sse2` only after SSE2 detection.
            unsafe { band_count_sse2(inner, t_in, outer, t_out) }
        }

        fn mask_gt(src: &[f64], threshold: f64, words: &mut [u64]) {
            debug_assert!(std::arch::is_x86_feature_detected!("sse2"));
            // SAFETY: dispatch selects `Sse2` only after SSE2 detection.
            unsafe { mask_gt_sse2(src, threshold, words) }
        }
    }

    impl Arch for Avx2 {
        const NAME: &'static str = "avx2";
        const LANES: usize = 4;

        fn add_constant(dst: &mut [f64], c: f64) {
            debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
            // SAFETY: dispatch selects `Avx2` only after AVX2 detection.
            unsafe { add_constant_avx2(dst, c) }
        }

        fn axpy(acc: &mut [f64], t: f64, src: &[f64]) {
            debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
            // SAFETY: dispatch selects `Avx2` only after AVX2 detection.
            unsafe { axpy_avx2(acc, t, src) }
        }

        fn div_into(out: &mut [f64], acc: &[f64], norm: f64) {
            debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
            // SAFETY: dispatch selects `Avx2` only after AVX2 detection.
            unsafe { div_into_avx2(out, acc, norm) }
        }

        fn square_weighted_add(out: &mut [f64], weight: f64, amp: &[f64]) {
            debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
            // SAFETY: dispatch selects `Avx2` only after AVX2 detection.
            unsafe { square_weighted_add_avx2(out, weight, amp) }
        }

        fn convolve_interior(
            row_in: &[f64],
            row_out: &mut [f64],
            taps: &[f64],
            taps_sum: f64,
            il: usize,
            ih: usize,
        ) {
            debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
            // SAFETY: dispatch selects `Avx2` only after AVX2 detection.
            unsafe { convolve_interior_avx2(row_in, row_out, taps, taps_sum, il, ih) }
        }

        fn band_count(inner: &[f64], t_in: f64, outer: &[f64], t_out: f64) -> usize {
            debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
            // SAFETY: dispatch selects `Avx2` only after AVX2 detection.
            unsafe { band_count_avx2(inner, t_in, outer, t_out) }
        }

        fn mask_gt(src: &[f64], threshold: f64, words: &mut [u64]) {
            debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
            // SAFETY: dispatch selects `Avx2` only after AVX2 detection.
            unsafe { mask_gt_avx2(src, threshold, words) }
        }
    }

    // SAFETY: requires SSE2; all loads/stores are within `dst` (chunks of 2).
    #[target_feature(enable = "sse2")]
    unsafe fn add_constant_sse2(dst: &mut [f64], c: f64) {
        let cv = _mm_set1_pd(c);
        let mut chunks = dst.chunks_exact_mut(2);
        for d in chunks.by_ref() {
            let v = _mm_loadu_pd(d.as_ptr());
            _mm_storeu_pd(d.as_mut_ptr(), _mm_add_pd(v, cv));
        }
        Scalar::add_constant(chunks.into_remainder(), c);
    }

    // SAFETY: requires AVX2; all loads/stores are within `dst` (chunks of 4).
    #[target_feature(enable = "avx2")]
    unsafe fn add_constant_avx2(dst: &mut [f64], c: f64) {
        let cv = _mm256_set1_pd(c);
        let mut chunks = dst.chunks_exact_mut(4);
        for d in chunks.by_ref() {
            let v = _mm256_loadu_pd(d.as_ptr());
            _mm256_storeu_pd(d.as_mut_ptr(), _mm256_add_pd(v, cv));
        }
        Scalar::add_constant(chunks.into_remainder(), c);
    }

    // Mul then add per lane — never an FMA.
    // SAFETY: requires SSE2; lanes stay in the zipped prefix of `acc`/`src`.
    #[target_feature(enable = "sse2")]
    unsafe fn axpy_sse2(acc: &mut [f64], t: f64, src: &[f64]) {
        let n = acc.len().min(src.len());
        let tv = _mm_set1_pd(t);
        let mut x = 0;
        while x + 2 <= n {
            let a = _mm_loadu_pd(acc.as_ptr().add(x));
            let s = _mm_loadu_pd(src.as_ptr().add(x));
            _mm_storeu_pd(acc.as_mut_ptr().add(x), _mm_add_pd(a, _mm_mul_pd(tv, s)));
            x += 2;
        }
        Scalar::axpy(&mut acc[x..n], t, &src[x..n]);
    }

    // Mul then add per lane — never an FMA.
    // SAFETY: requires AVX2; lanes stay in the zipped prefix of `acc`/`src`.
    #[target_feature(enable = "avx2")]
    unsafe fn axpy_avx2(acc: &mut [f64], t: f64, src: &[f64]) {
        let n = acc.len().min(src.len());
        let tv = _mm256_set1_pd(t);
        let mut x = 0;
        while x + 4 <= n {
            let a = _mm256_loadu_pd(acc.as_ptr().add(x));
            let s = _mm256_loadu_pd(src.as_ptr().add(x));
            _mm256_storeu_pd(
                acc.as_mut_ptr().add(x),
                _mm256_add_pd(a, _mm256_mul_pd(tv, s)),
            );
            x += 4;
        }
        Scalar::axpy(&mut acc[x..n], t, &src[x..n]);
    }

    // SAFETY: requires SSE2; lanes stay in the zipped prefix of `out`/`acc`.
    #[target_feature(enable = "sse2")]
    unsafe fn div_into_sse2(out: &mut [f64], acc: &[f64], norm: f64) {
        let n = out.len().min(acc.len());
        let nv = _mm_set1_pd(norm);
        let mut x = 0;
        while x + 2 <= n {
            let a = _mm_loadu_pd(acc.as_ptr().add(x));
            _mm_storeu_pd(out.as_mut_ptr().add(x), _mm_div_pd(a, nv));
            x += 2;
        }
        Scalar::div_into(&mut out[x..n], &acc[x..n], norm);
    }

    // SAFETY: requires AVX2; lanes stay in the zipped prefix of `out`/`acc`.
    #[target_feature(enable = "avx2")]
    unsafe fn div_into_avx2(out: &mut [f64], acc: &[f64], norm: f64) {
        let n = out.len().min(acc.len());
        let nv = _mm256_set1_pd(norm);
        let mut x = 0;
        while x + 4 <= n {
            let a = _mm256_loadu_pd(acc.as_ptr().add(x));
            _mm256_storeu_pd(out.as_mut_ptr().add(x), _mm256_div_pd(a, nv));
            x += 4;
        }
        Scalar::div_into(&mut out[x..n], &acc[x..n], norm);
    }

    // Association matches the scalar `(weight * v) * v`.
    // SAFETY: requires SSE2; lanes stay in the zipped prefix of `out`/`amp`.
    #[target_feature(enable = "sse2")]
    unsafe fn square_weighted_add_sse2(out: &mut [f64], weight: f64, amp: &[f64]) {
        let n = out.len().min(amp.len());
        let wv = _mm_set1_pd(weight);
        let mut x = 0;
        while x + 2 <= n {
            let o = _mm_loadu_pd(out.as_ptr().add(x));
            let v = _mm_loadu_pd(amp.as_ptr().add(x));
            let term = _mm_mul_pd(_mm_mul_pd(wv, v), v);
            _mm_storeu_pd(out.as_mut_ptr().add(x), _mm_add_pd(o, term));
            x += 2;
        }
        Scalar::square_weighted_add(&mut out[x..n], weight, &amp[x..n]);
    }

    // Association matches the scalar `(weight * v) * v`.
    // SAFETY: requires AVX2; lanes stay in the zipped prefix of `out`/`amp`.
    #[target_feature(enable = "avx2")]
    unsafe fn square_weighted_add_avx2(out: &mut [f64], weight: f64, amp: &[f64]) {
        let n = out.len().min(amp.len());
        let wv = _mm256_set1_pd(weight);
        let mut x = 0;
        while x + 4 <= n {
            let o = _mm256_loadu_pd(out.as_ptr().add(x));
            let v = _mm256_loadu_pd(amp.as_ptr().add(x));
            let term = _mm256_mul_pd(_mm256_mul_pd(wv, v), v);
            _mm256_storeu_pd(out.as_mut_ptr().add(x), _mm256_add_pd(o, term));
            x += 4;
        }
        Scalar::square_weighted_add(&mut out[x..n], weight, &amp[x..n]);
    }

    // Lanes are output pixels x..x+2 with x+1 < ih; the widest load covers
    // indices (x+1) - radius ..= (x+1) + radius, all ≤ ih - 1 + radius <
    // row_in.len() by the caller-guaranteed full-support invariant of
    // `Arch::convolve_interior`. Each lane accumulates taps in ascending
    // order with mul-then-add, exactly the scalar loop.
    // SAFETY: requires SSE2; every load is in bounds as argued above.
    #[target_feature(enable = "sse2")]
    unsafe fn convolve_interior_sse2(
        row_in: &[f64],
        row_out: &mut [f64],
        taps: &[f64],
        taps_sum: f64,
        il: usize,
        ih: usize,
    ) {
        let radius = taps.len() / 2;
        let sum = _mm_set1_pd(taps_sum);
        let mut x = il;
        while x + 2 <= ih {
            let base = x - radius;
            let mut acc = _mm_setzero_pd();
            for (k, &t) in taps.iter().enumerate() {
                let v = _mm_loadu_pd(row_in.as_ptr().add(base + k));
                acc = _mm_add_pd(acc, _mm_mul_pd(_mm_set1_pd(t), v));
            }
            _mm_storeu_pd(row_out.as_mut_ptr().add(x), _mm_div_pd(acc, sum));
            x += 2;
        }
        Scalar::convolve_interior(row_in, row_out, taps, taps_sum, x, ih);
    }

    // Lanes are output pixels x..x+4 with x+3 < ih; the widest load covers
    // indices (x+3) - radius ..= (x+3) + radius, all ≤ ih - 1 + radius <
    // row_in.len() by the caller-guaranteed full-support invariant of
    // `Arch::convolve_interior`. Each lane accumulates taps in ascending
    // order with mul-then-add, exactly the scalar loop.
    // SAFETY: requires AVX2; every load is in bounds as argued above.
    #[target_feature(enable = "avx2")]
    unsafe fn convolve_interior_avx2(
        row_in: &[f64],
        row_out: &mut [f64],
        taps: &[f64],
        taps_sum: f64,
        il: usize,
        ih: usize,
    ) {
        let radius = taps.len() / 2;
        let sum = _mm256_set1_pd(taps_sum);
        let mut x = il;
        while x + 4 <= ih {
            let base = x - radius;
            let mut acc = _mm256_setzero_pd();
            for (k, &t) in taps.iter().enumerate() {
                let v = _mm256_loadu_pd(row_in.as_ptr().add(base + k));
                acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(t), v));
            }
            _mm256_storeu_pd(row_out.as_mut_ptr().add(x), _mm256_div_pd(acc, sum));
            x += 4;
        }
        Scalar::convolve_interior(row_in, row_out, taps, taps_sum, x, ih);
    }

    // `_mm_cmpgt_pd` is the same ordered `>` predicate as the scalar
    // comparison (false on NaN).
    // SAFETY: requires SSE2; lanes stay in the zipped prefix of the slices.
    #[target_feature(enable = "sse2")]
    unsafe fn band_count_sse2(inner: &[f64], t_in: f64, outer: &[f64], t_out: f64) -> usize {
        let n = inner.len().min(outer.len());
        let ti = _mm_set1_pd(t_in);
        let to = _mm_set1_pd(t_out);
        let mut count = 0usize;
        let mut x = 0;
        while x + 2 <= n {
            let vi = _mm_loadu_pd(inner.as_ptr().add(x));
            let vo = _mm_loadu_pd(outer.as_ptr().add(x));
            let printed_outer = _mm_cmpgt_pd(vo, to);
            let printed_inner = _mm_cmpgt_pd(vi, ti);
            let band = _mm_andnot_pd(printed_inner, printed_outer);
            count += (_mm_movemask_pd(band) as u32).count_ones() as usize;
            x += 2;
        }
        count + Scalar::band_count(&inner[x..n], t_in, &outer[x..n], t_out)
    }

    // `_CMP_GT_OQ` is the same ordered `>` predicate as the scalar
    // comparison (false on NaN).
    // SAFETY: requires AVX2; lanes stay in the zipped prefix of the slices.
    #[target_feature(enable = "avx2")]
    unsafe fn band_count_avx2(inner: &[f64], t_in: f64, outer: &[f64], t_out: f64) -> usize {
        let n = inner.len().min(outer.len());
        let ti = _mm256_set1_pd(t_in);
        let to = _mm256_set1_pd(t_out);
        let mut count = 0usize;
        let mut x = 0;
        while x + 4 <= n {
            let vi = _mm256_loadu_pd(inner.as_ptr().add(x));
            let vo = _mm256_loadu_pd(outer.as_ptr().add(x));
            let printed_outer = _mm256_cmp_pd::<_CMP_GT_OQ>(vo, to);
            let printed_inner = _mm256_cmp_pd::<_CMP_GT_OQ>(vi, ti);
            let band = _mm256_andnot_pd(printed_inner, printed_outer);
            count += (_mm256_movemask_pd(band) as u32).count_ones() as usize;
            x += 4;
        }
        count + Scalar::band_count(&inner[x..n], t_in, &outer[x..n], t_out)
    }

    // 32 × 2-lane compares per word; `_mm_cmpgt_pd` matches the scalar
    // ordered `>`, and the remainder is handled by the scalar reference.
    // SAFETY: requires SSE2; reads whole 64-element chunks of `src`.
    #[target_feature(enable = "sse2")]
    unsafe fn mask_gt_sse2(src: &[f64], threshold: f64, words: &mut [u64]) {
        let t = _mm_set1_pd(threshold);
        let mut chunks = src.chunks_exact(64);
        let mut wi = 0;
        for chunk in chunks.by_ref() {
            let mut w = 0u64;
            for b in 0..32 {
                let v = _mm_loadu_pd(chunk.as_ptr().add(2 * b));
                let m = _mm_movemask_pd(_mm_cmpgt_pd(v, t)) as u64;
                w |= m << (2 * b);
            }
            words[wi] = w;
            wi += 1;
        }
        Scalar::mask_gt(chunks.remainder(), threshold, &mut words[wi..]);
    }

    // 16 × 4-lane compares per word; `_CMP_GT_OQ` matches the scalar
    // ordered `>`, and the remainder is handled by the scalar reference.
    // SAFETY: requires AVX2; reads whole 64-element chunks of `src`.
    #[target_feature(enable = "avx2")]
    unsafe fn mask_gt_avx2(src: &[f64], threshold: f64, words: &mut [u64]) {
        let t = _mm256_set1_pd(threshold);
        let mut chunks = src.chunks_exact(64);
        let mut wi = 0;
        for chunk in chunks.by_ref() {
            let mut w = 0u64;
            for b in 0..16 {
                let v = _mm256_loadu_pd(chunk.as_ptr().add(4 * b));
                let m = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_GT_OQ>(v, t)) as u64;
                w |= m << (4 * b);
            }
            words[wi] = w;
            wi += 1;
        }
        Scalar::mask_gt(chunks.remainder(), threshold, &mut words[wi..]);
    }
}

/// Invokes one method of the backend `$arch` names. The only place the
/// `ArchId` → type mapping exists.
macro_rules! dispatch {
    ($arch:expr, $method:ident ( $($arg:expr),* $(,)? )) => {
        match $arch {
            ArchId::Scalar => <Scalar as Arch>::$method($($arg),*),
            ArchId::Sse2 => <Sse2 as Arch>::$method($($arg),*),
            ArchId::Avx2 => <Avx2 as Arch>::$method($($arg),*),
        }
    };
}

/// Dispatched [`Arch::add_constant`].
pub fn add_constant(arch: ArchId, dst: &mut [f64], c: f64) {
    dispatch!(arch, add_constant(dst, c))
}

/// Dispatched [`Arch::axpy`].
pub fn axpy(arch: ArchId, acc: &mut [f64], t: f64, src: &[f64]) {
    dispatch!(arch, axpy(acc, t, src))
}

/// Dispatched [`Arch::div_into`].
pub fn div_into(arch: ArchId, out: &mut [f64], acc: &[f64], norm: f64) {
    dispatch!(arch, div_into(out, acc, norm))
}

/// Dispatched [`Arch::square_weighted_add`].
pub fn square_weighted_add(arch: ArchId, out: &mut [f64], weight: f64, amp: &[f64]) {
    dispatch!(arch, square_weighted_add(out, weight, amp))
}

/// Dispatched [`Arch::convolve_interior`].
pub fn convolve_interior(
    arch: ArchId,
    row_in: &[f64],
    row_out: &mut [f64],
    taps: &[f64],
    taps_sum: f64,
    il: usize,
    ih: usize,
) {
    dispatch!(
        arch,
        convolve_interior(row_in, row_out, taps, taps_sum, il, ih)
    )
}

/// Dispatched [`Arch::band_count`].
pub fn band_count(arch: ArchId, inner: &[f64], t_in: f64, outer: &[f64], t_out: f64) -> usize {
    dispatch!(arch, band_count(inner, t_in, outer, t_out))
}

/// Dispatched [`Arch::mask_gt`].
pub fn mask_gt(arch: ArchId, src: &[f64], threshold: f64, words: &mut [u64]) {
    dispatch!(arch, mask_gt(src, threshold, words))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random f64s in (-1, 1) — no external RNG, no
    /// ambient entropy, so the parity corpus is identical on every run.
    fn noise(len: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
            })
            .collect()
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn detected_starts_with_scalar_and_contains_active() {
        let archs = detected();
        assert_eq!(archs.first(), Some(&ArchId::Scalar));
        assert!(archs.contains(&active()));
    }

    #[test]
    fn arch_names_round_trip() {
        assert_eq!(ArchId::Scalar.name(), "scalar");
        assert_eq!(ArchId::Sse2.name(), "sse2");
        assert_eq!(ArchId::Avx2.name(), "avx2");
    }

    #[test]
    fn elementwise_kernels_are_bit_identical_across_detected_archs() {
        // Lengths straddle every lane boundary, including the scalar tails.
        for len in [0, 1, 2, 3, 4, 5, 7, 8, 63, 64, 65, 130] {
            let src = noise(len, 41 + len as u64);
            let base = noise(len, 97 + len as u64);
            for &arch in detected() {
                let mut a = base.clone();
                let mut b = base.clone();
                Scalar::add_constant(&mut a, 0.8125);
                add_constant(arch, &mut b, 0.8125);
                assert_eq!(bits(&a), bits(&b), "{:?} add_constant len {len}", arch);

                let mut a = base.clone();
                let mut b = base.clone();
                Scalar::axpy(&mut a, 0.3331, &src);
                axpy(arch, &mut b, 0.3331, &src);
                assert_eq!(bits(&a), bits(&b), "{:?} axpy len {len}", arch);

                let mut a = vec![0.0; len];
                let mut b = vec![0.0; len];
                Scalar::div_into(&mut a, &src, 0.7713);
                div_into(arch, &mut b, &src, 0.7713);
                assert_eq!(bits(&a), bits(&b), "{:?} div_into len {len}", arch);

                let mut a = base.clone();
                let mut b = base.clone();
                Scalar::square_weighted_add(&mut a, 1.77, &src);
                square_weighted_add(arch, &mut b, 1.77, &src);
                assert_eq!(
                    bits(&a),
                    bits(&b),
                    "{:?} square_weighted_add len {len}",
                    arch
                );
            }
        }
    }

    #[test]
    fn convolve_interior_is_bit_identical_across_detected_archs() {
        for (w, tap_len) in [(9, 3), (40, 7), (129, 21), (257, 1)] {
            let row_in = noise(w, 7 + w as u64);
            let taps = noise(tap_len, 11)
                .iter()
                .map(|t| t.abs() + 0.01)
                .collect::<Vec<_>>();
            let taps_sum: f64 = taps.iter().sum();
            let radius = tap_len / 2;
            let il = radius;
            let ih = w + radius + 1 - tap_len;
            let mut reference = vec![0.0; w];
            Scalar::convolve_interior(&row_in, &mut reference, &taps, taps_sum, il, ih);
            for &arch in detected() {
                let mut out = vec![0.0; w];
                convolve_interior(arch, &row_in, &mut out, &taps, taps_sum, il, ih);
                assert_eq!(
                    bits(&reference),
                    bits(&out),
                    "{:?} w={w} taps={tap_len}",
                    arch
                );
            }
        }
    }

    #[test]
    fn comparison_kernels_are_bit_identical_across_detected_archs() {
        for len in [0, 1, 2, 5, 63, 64, 65, 200] {
            let inner = noise(len, 3 + len as u64);
            let outer = noise(len, 5 + len as u64);
            let expected = Scalar::band_count(&inner, 0.1, &outer, -0.1);
            let words = len.div_ceil(64).max(1);
            let mut reference = vec![0u64; words];
            Scalar::mask_gt(&outer, 0.05, &mut reference);
            for &arch in detected() {
                assert_eq!(
                    band_count(arch, &inner, 0.1, &outer, -0.1),
                    expected,
                    "{:?} band_count len {len}",
                    arch
                );
                let mut got = vec![0u64; words];
                mask_gt(arch, &outer, 0.05, &mut got);
                assert_eq!(reference, got, "{:?} mask_gt len {len}", arch);
            }
        }
    }

    #[test]
    fn scalar_override_forces_scalar() {
        // `select` honours an explicit scalar request regardless of what the
        // host supports; exercised directly since `active` latches once.
        std::env::set_var("CAMO_SIMD", "scalar");
        assert_eq!(select(), ArchId::Scalar);
        std::env::remove_var("CAMO_SIMD");
        assert_eq!(select(), *detected().last().unwrap());
    }
}
