//! Layout geometry substrate for the CAMO-RS workspace.
//!
//! This crate provides the geometric foundation every other crate builds on:
//!
//! * integer-nanometre [`Point`]/[`Rect`]/[`Polygon`] primitives,
//! * [`Clip`]s (layout windows holding target patterns and SRAFs),
//! * boundary [`fragment`](segment::fragment_polygon)ation into movable
//!   [`Segment`]s with control points and EPE measure points,
//! * [`MaskState`]: a target clip plus per-segment offsets, reconstructable
//!   into concrete mask polygons,
//! * scanline [`Raster`]isation of rectilinear polygons, and
//! * [`squish`] pattern encoding (Figure 3 of the CAMO paper) including the
//!   fixed-size adaptive squish tensor used as policy-network input.
//!
//! All coordinates are in integer nanometres ([`Coord`]); masks are therefore
//! updated exactly, with no floating-point drift across OPC iterations.
//!
//! # Example
//!
//! ```
//! use camo_geometry::{Clip, Rect, FragmentationParams};
//!
//! // A 2 µm clip with a single 70 nm via.
//! let mut clip = Clip::new(Rect::new(0, 0, 2000, 2000));
//! clip.add_target(Rect::new(965, 965, 1035, 1035).to_polygon());
//! let frags = clip.fragment(&FragmentationParams::via_layer());
//! assert_eq!(frags.segments.len(), 4); // one segment per via edge
//! ```

pub mod features;
pub mod grid;
pub mod mask;
pub mod point;
pub mod polygon;
pub mod rect;
pub mod segment;
pub mod simd;
pub mod squish;

pub use features::{
    segment_features_basic, segment_features_stacked, segment_window, FeatureConfig,
};
pub use grid::{CoverageScratch, PixelWindow, Raster};
pub use mask::MaskState;
pub use point::{Coord, Point, Vector};
pub use polygon::Polygon;
pub use rect::Rect;
pub use segment::{
    fragment_polygon, ControlPoint, Direction, FragmentationParams, Fragments, MeasurePoint,
    Orientation, Segment, SegmentId,
};
pub use squish::{AdaptiveSquishTensor, SquishPattern};

/// A rectangular layout window ("clip") holding target patterns and SRAFs.
///
/// A clip corresponds to one benchmark case in the CAMO paper (a 2 µm × 2 µm
/// via-layer clip or a 1.5 µm × 1.5 µm metal-layer clip).
#[derive(Debug, Clone, PartialEq)]
pub struct Clip {
    /// Region covered by this clip.
    region: Rect,
    /// Target (design-intent) patterns.
    targets: Vec<Polygon>,
    /// Sub-resolution assist features. These are part of the mask but are
    /// never measured and never moved by the OPC engines.
    srafs: Vec<Rect>,
    /// Human-readable name, e.g. `"V3"` or `"M10"`.
    name: String,
}

impl Clip {
    /// Creates an empty clip covering `region`.
    pub fn new(region: Rect) -> Self {
        Self {
            region,
            targets: Vec::new(),
            srafs: Vec::new(),
            name: String::new(),
        }
    }

    /// Creates an empty named clip covering `region`.
    pub fn with_name(region: Rect, name: impl Into<String>) -> Self {
        let mut c = Self::new(region);
        c.name = name.into();
        c
    }

    /// The clip region.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// The clip name (may be empty).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the clip name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds a target pattern. The polygon is normalised to counter-clockwise
    /// orientation.
    pub fn add_target(&mut self, polygon: Polygon) {
        self.targets.push(polygon.normalized());
    }

    /// Adds a sub-resolution assist feature rectangle.
    pub fn add_sraf(&mut self, rect: Rect) {
        self.srafs.push(rect);
    }

    /// Target patterns.
    pub fn targets(&self) -> &[Polygon] {
        &self.targets
    }

    /// SRAF rectangles.
    pub fn srafs(&self) -> &[Rect] {
        &self.srafs
    }

    /// Removes all SRAFs.
    pub fn clear_srafs(&mut self) {
        self.srafs.clear();
    }

    /// Total target area in nm².
    pub fn target_area(&self) -> i64 {
        self.targets.iter().map(|p| p.area()).sum()
    }

    /// Fragments every target boundary into segments according to `params`.
    pub fn fragment(&self, params: &FragmentationParams) -> Fragments {
        let mut all = Fragments::default();
        for (poly_id, poly) in self.targets.iter().enumerate() {
            let frags = fragment_polygon(poly, poly_id, params);
            all.extend(frags);
        }
        all
    }

    /// Builds the initial [`MaskState`] for this clip (all offsets zero).
    pub fn initial_mask(&self, params: &FragmentationParams) -> MaskState {
        MaskState::new(self.clone(), self.fragment(params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clip_roundtrip() {
        let mut clip = Clip::with_name(Rect::new(0, 0, 2000, 2000), "V1");
        clip.add_target(Rect::new(100, 100, 170, 170).to_polygon());
        clip.add_sraf(Rect::new(300, 100, 320, 170));
        assert_eq!(clip.name(), "V1");
        assert_eq!(clip.targets().len(), 1);
        assert_eq!(clip.srafs().len(), 1);
        assert_eq!(clip.target_area(), 70 * 70);
        assert_eq!(clip.region().width(), 2000);
    }

    #[test]
    fn clip_fragment_counts_via() {
        let mut clip = Clip::new(Rect::new(0, 0, 2000, 2000));
        clip.add_target(Rect::new(0, 0, 70, 70).to_polygon());
        clip.add_target(Rect::new(500, 500, 570, 570).to_polygon());
        let frags = clip.fragment(&FragmentationParams::via_layer());
        // Via layer: each edge is a single segment, 4 per via.
        assert_eq!(frags.segments.len(), 8);
        assert_eq!(frags.measure_points.len(), 8);
    }

    #[test]
    fn clear_srafs_removes_all() {
        let mut clip = Clip::new(Rect::new(0, 0, 100, 100));
        clip.add_sraf(Rect::new(0, 0, 10, 10));
        clip.add_sraf(Rect::new(20, 0, 30, 10));
        clip.clear_srafs();
        assert!(clip.srafs().is_empty());
    }
}
