//! Per-segment feature encoding shared by the learning-based OPC engines.
//!
//! Every learning-based engine in this workspace (RL-OPC and CAMO) observes a
//! segment through a square window centred at its control point, encoded as
//! an adaptive squish tensor:
//!
//! * RL-OPC uses the 3-channel encoding of the *current mask* (plus SRAFs),
//! * CAMO concatenates a second 3-channel tensor whose grid additionally
//!   carries scanlines at the *target* edges, highlighting how far each edge
//!   has moved (6 channels total, as described in Section 3.2 of the paper).

use crate::mask::MaskState;
use crate::point::Coord;
use crate::rect::Rect;
use crate::squish::{AdaptiveSquishTensor, SquishPattern};

/// Configuration of the segment feature encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureConfig {
    /// Window side length centred at the control point, nm (the paper uses
    /// 500 nm).
    pub window: Coord,
    /// Side length of the fixed-size adaptive squish tensor.
    pub tensor_size: usize,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        Self {
            window: 500,
            tensor_size: 16,
        }
    }
}

impl FeatureConfig {
    /// Length of the 3-channel feature vector.
    pub fn basic_len(&self) -> usize {
        3 * self.tensor_size * self.tensor_size
    }

    /// Length of the 6-channel (CAMO) feature vector.
    pub fn stacked_len(&self) -> usize {
        2 * self.basic_len()
    }
}

/// The window rectangle observed by `segment` of `mask`.
pub fn segment_window(mask: &MaskState, segment: usize, config: &FeatureConfig) -> Rect {
    let cp = mask.fragments().segments[segment].control_point();
    Rect::centered_at(cp, config.window, config.window)
}

/// 3-channel adaptive squish encoding of the mask geometry around `segment`
/// (the RL-OPC observation).
///
/// # Panics
///
/// Panics if `segment` is out of range.
pub fn segment_features_basic(
    mask: &MaskState,
    segment: usize,
    config: &FeatureConfig,
) -> Vec<f64> {
    let window = segment_window(mask, segment, config);
    let polys = mask.mask_polygons();
    let pattern = SquishPattern::encode(window, &polys, mask.sraf_rects(), &[], &[]);
    AdaptiveSquishTensor::from_pattern(&pattern, config.tensor_size)
        .data
        .clone()
}

/// 6-channel CAMO encoding: the mask tensor concatenated with a second tensor
/// whose grid also carries scanlines at the target-pattern edges inside the
/// window, so that the relative movement of every edge is visible to the
/// policy.
///
/// # Panics
///
/// Panics if `segment` is out of range.
pub fn segment_features_stacked(
    mask: &MaskState,
    segment: usize,
    config: &FeatureConfig,
) -> Vec<f64> {
    let window = segment_window(mask, segment, config);
    let polys = mask.mask_polygons();
    let srafs = mask.sraf_rects();

    let mask_pattern = SquishPattern::encode(window, &polys, srafs, &[], &[]);
    let mask_tensor = AdaptiveSquishTensor::from_pattern(&mask_pattern, config.tensor_size);

    // Collect target-edge scanlines within the window.
    let mut extra_x = Vec::new();
    let mut extra_y = Vec::new();
    for target in mask.clip().targets() {
        for (a, b) in target.edges() {
            if a.x == b.x {
                extra_x.push(a.x);
            } else {
                extra_y.push(a.y);
            }
        }
    }
    let target_pattern = SquishPattern::encode(window, &polys, srafs, &extra_x, &extra_y);
    let target_tensor = AdaptiveSquishTensor::from_pattern(&target_pattern, config.tensor_size);

    mask_tensor.concat(&target_tensor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::FragmentationParams;
    use crate::Clip;

    fn via_mask() -> MaskState {
        let mut clip = Clip::new(Rect::new(0, 0, 2000, 2000));
        clip.add_target(Rect::new(965, 965, 1035, 1035).to_polygon());
        clip.add_target(Rect::new(1265, 965, 1335, 1035).to_polygon());
        MaskState::from_clip(&clip, &FragmentationParams::via_layer())
    }

    #[test]
    fn feature_lengths_match_config() {
        let mask = via_mask();
        let cfg = FeatureConfig::default();
        assert_eq!(
            segment_features_basic(&mask, 0, &cfg).len(),
            cfg.basic_len()
        );
        assert_eq!(
            segment_features_stacked(&mask, 0, &cfg).len(),
            cfg.stacked_len()
        );
        assert_eq!(cfg.stacked_len(), 2 * cfg.basic_len());
    }

    #[test]
    fn features_are_bounded() {
        let mask = via_mask();
        let cfg = FeatureConfig {
            window: 400,
            tensor_size: 8,
        };
        for seg in 0..mask.segment_count() {
            for v in segment_features_stacked(&mask, seg, &cfg) {
                assert!((0.0..=1.0).contains(&v), "feature {v} out of range");
            }
        }
    }

    #[test]
    fn moving_a_segment_changes_its_features() {
        let mut mask = via_mask();
        let cfg = FeatureConfig::default();
        let before = segment_features_stacked(&mask, 0, &cfg);
        mask.move_segment(0, 2);
        let after = segment_features_stacked(&mask, 0, &cfg);
        assert_ne!(
            before, after,
            "edge movement must be visible in the encoding"
        );
    }

    #[test]
    fn window_is_centred_on_control_point() {
        let mask = via_mask();
        let cfg = FeatureConfig::default();
        let window = segment_window(&mask, 0, &cfg);
        assert_eq!(window.width(), cfg.window);
        let cp = mask.fragments().segments[0].control_point();
        assert!(window.contains_point(cp));
    }

    #[test]
    fn neighbouring_pattern_appears_in_window() {
        // Segment windows are 500 nm wide, so the 300 nm-away neighbour via
        // must contribute occupancy to the encoding.
        let mask = via_mask();
        let cfg = FeatureConfig::default();
        let right_seg = mask
            .fragments()
            .segments
            .iter()
            .find(|s| s.control_point().x == 1035)
            .expect("right edge of the first via");
        let features = segment_features_basic(&mask, right_seg.id, &cfg);
        let occupancy_sum: f64 = features[..cfg.tensor_size * cfg.tensor_size].iter().sum();
        assert!(
            occupancy_sum >= 2.0,
            "expected both vias visible, sum={occupancy_sum}"
        );
    }
}
