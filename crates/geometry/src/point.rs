//! Integer-nanometre points and vectors.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// Coordinate type: signed integer nanometres.
pub type Coord = i64;

/// A point on the layout grid, in nanometres.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Point {
    /// Horizontal coordinate in nm.
    pub x: Coord,
    /// Vertical coordinate in nm.
    pub y: Coord,
}

/// A displacement between two [`Point`]s, in nanometres.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Vector {
    /// Horizontal component in nm.
    pub dx: Coord,
    /// Vertical component in nm.
    pub dy: Coord,
}

impl Point {
    /// Creates a point at `(x, y)` nm.
    pub const fn new(x: Coord, y: Coord) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const fn origin() -> Self {
        Self { x: 0, y: 0 }
    }

    /// Manhattan (L1) distance to `other`.
    pub fn manhattan_distance(&self, other: Point) -> Coord {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Squared Euclidean distance to `other`.
    pub fn distance_squared(&self, other: Point) -> i128 {
        let dx = (self.x - other.x) as i128;
        let dy = (self.y - other.y) as i128;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other` as `f64`.
    pub fn distance(&self, other: Point) -> f64 {
        (self.distance_squared(other) as f64).sqrt()
    }

    /// Chebyshev (L∞) distance to `other`.
    pub fn chebyshev_distance(&self, other: Point) -> Coord {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }
}

impl Vector {
    /// Creates a vector `(dx, dy)`.
    pub const fn new(dx: Coord, dy: Coord) -> Self {
        Self { dx, dy }
    }

    /// The zero vector.
    pub const fn zero() -> Self {
        Self { dx: 0, dy: 0 }
    }

    /// Scales both components by `k`.
    pub fn scaled(self, k: Coord) -> Self {
        Self::new(self.dx * k, self.dy * k)
    }

    /// Rotates the vector 90° counter-clockwise.
    pub fn rotated_ccw(self) -> Self {
        Self::new(-self.dy, self.dx)
    }

    /// Rotates the vector 90° clockwise.
    pub fn rotated_cw(self) -> Self {
        Self::new(self.dy, -self.dx)
    }

    /// Manhattan length of the vector.
    pub fn manhattan_length(self) -> Coord {
        self.dx.abs() + self.dy.abs()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.dx, self.dy)
    }
}

impl Add<Vector> for Point {
    type Output = Point;
    fn add(self, v: Vector) -> Point {
        Point::new(self.x + v.dx, self.y + v.dy)
    }
}

impl AddAssign<Vector> for Point {
    fn add_assign(&mut self, v: Vector) {
        self.x += v.dx;
        self.y += v.dy;
    }
}

impl Sub<Vector> for Point {
    type Output = Point;
    fn sub(self, v: Vector) -> Point {
        Point::new(self.x - v.dx, self.y - v.dy)
    }
}

impl SubAssign<Vector> for Point {
    fn sub_assign(&mut self, v: Vector) {
        self.x -= v.dx;
        self.y -= v.dy;
    }
}

impl Sub<Point> for Point {
    type Output = Vector;
    fn sub(self, other: Point) -> Vector {
        Vector::new(self.x - other.x, self.y - other.y)
    }
}

impl Add<Vector> for Vector {
    type Output = Vector;
    fn add(self, other: Vector) -> Vector {
        Vector::new(self.dx + other.dx, self.dy + other.dy)
    }
}

impl Sub<Vector> for Vector {
    type Output = Vector;
    fn sub(self, other: Vector) -> Vector {
        Vector::new(self.dx - other.dx, self.dy - other.dy)
    }
}

impl Neg for Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        Vector::new(-self.dx, -self.dy)
    }
}

impl Mul<Coord> for Vector {
    type Output = Vector;
    fn mul(self, k: Coord) -> Vector {
        self.scaled(k)
    }
}

impl From<(Coord, Coord)> for Point {
    fn from((x, y): (Coord, Coord)) -> Self {
        Point::new(x, y)
    }
}

impl From<(Coord, Coord)> for Vector {
    fn from((dx, dy): (Coord, Coord)) -> Self {
        Vector::new(dx, dy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_arithmetic() {
        let p = Point::new(10, 20);
        let v = Vector::new(3, -4);
        assert_eq!(p + v, Point::new(13, 16));
        assert_eq!(p - v, Point::new(7, 24));
        assert_eq!(Point::new(13, 16) - p, v);
    }

    #[test]
    fn distances() {
        let a = Point::new(0, 0);
        let b = Point::new(3, 4);
        assert_eq!(a.manhattan_distance(b), 7);
        assert_eq!(a.chebyshev_distance(b), 4);
        assert_eq!(a.distance_squared(b), 25);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn vector_rotation() {
        let v = Vector::new(1, 0);
        assert_eq!(v.rotated_ccw(), Vector::new(0, 1));
        assert_eq!(v.rotated_cw(), Vector::new(0, -1));
        assert_eq!(v.rotated_ccw().rotated_cw(), v);
    }

    #[test]
    fn vector_ops() {
        let v = Vector::new(2, -3);
        assert_eq!(-v, Vector::new(-2, 3));
        assert_eq!(v * 3, Vector::new(6, -9));
        assert_eq!(v + Vector::new(1, 1), Vector::new(3, -2));
        assert_eq!(v.manhattan_length(), 5);
    }

    #[test]
    fn conversions_and_display() {
        let p: Point = (5, 6).into();
        assert_eq!(p, Point::new(5, 6));
        assert_eq!(format!("{p}"), "(5, 6)");
        let v: Vector = (1, 2).into();
        assert_eq!(format!("{v}"), "<1, 2>");
    }

    #[test]
    fn assign_ops() {
        let mut p = Point::new(1, 1);
        p += Vector::new(2, 3);
        assert_eq!(p, Point::new(3, 4));
        p -= Vector::new(1, 1);
        assert_eq!(p, Point::new(2, 3));
    }
}
