//! Axis-aligned rectangles in nanometres.

use crate::point::{Coord, Point, Vector};
use crate::polygon::Polygon;
use std::fmt;

/// An axis-aligned rectangle `[x0, x1) × [y0, y1)` in nanometres.
///
/// Rectangles are half-open on the upper edges when rasterised, but all
/// geometric queries (`contains_point`, `intersects`) treat them as closed
/// regions, which matches typical layout-tool semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rect {
    /// Left edge (minimum x).
    pub x0: Coord,
    /// Bottom edge (minimum y).
    pub y0: Coord,
    /// Right edge (maximum x).
    pub x1: Coord,
    /// Top edge (maximum y).
    pub y1: Coord,
}

impl Rect {
    /// Creates a rectangle from two corners. Coordinates are normalised so
    /// that `x0 <= x1` and `y0 <= y1`.
    pub fn new(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Self {
        Self {
            x0: x0.min(x1),
            y0: y0.min(y1),
            x1: x0.max(x1),
            y1: y0.max(y1),
        }
    }

    /// Creates a rectangle centred at `center` with the given width and height.
    ///
    /// Width/height remainders are split as evenly as possible.
    pub fn centered_at(center: Point, width: Coord, height: Coord) -> Self {
        let hw = width / 2;
        let hh = height / 2;
        Self::new(
            center.x - hw,
            center.y - hh,
            center.x - hw + width,
            center.y - hh + height,
        )
    }

    /// Width (x extent) in nm.
    pub fn width(&self) -> Coord {
        self.x1 - self.x0
    }

    /// Height (y extent) in nm.
    pub fn height(&self) -> Coord {
        self.y1 - self.y0
    }

    /// Area in nm².
    pub fn area(&self) -> i64 {
        self.width() * self.height()
    }

    /// True when the rectangle has zero area.
    pub fn is_empty(&self) -> bool {
        self.width() == 0 || self.height() == 0
    }

    /// Centre point (rounded down on odd extents).
    pub fn center(&self) -> Point {
        Point::new((self.x0 + self.x1) / 2, (self.y0 + self.y1) / 2)
    }

    /// Lower-left corner.
    pub fn lower_left(&self) -> Point {
        Point::new(self.x0, self.y0)
    }

    /// Upper-right corner.
    pub fn upper_right(&self) -> Point {
        Point::new(self.x1, self.y1)
    }

    /// True when `p` lies inside or on the boundary.
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.x0 && p.x <= self.x1 && p.y >= self.y0 && p.y <= self.y1
    }

    /// True when `other` is entirely inside (or equal to) `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.x0 >= self.x0 && other.x1 <= self.x1 && other.y0 >= self.y0 && other.y1 <= self.y1
    }

    /// True when the two closed rectangles share any point.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x0 <= other.x1 && other.x0 <= self.x1 && self.y0 <= other.y1 && other.y0 <= self.y1
    }

    /// Intersection of the two rectangles, or `None` when they are disjoint
    /// or the overlap is degenerate (zero area).
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let r = Rect {
            x0: self.x0.max(other.x0),
            y0: self.y0.max(other.y0),
            x1: self.x1.min(other.x1),
            y1: self.y1.min(other.y1),
        };
        if r.x0 < r.x1 && r.y0 < r.y1 {
            Some(r)
        } else {
            None
        }
    }

    /// Smallest rectangle containing both inputs.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// Rectangle grown by `margin` on every side (shrunk for negative margins).
    pub fn expanded(&self, margin: Coord) -> Rect {
        Rect::new(
            self.x0 - margin,
            self.y0 - margin,
            self.x1 + margin,
            self.y1 + margin,
        )
    }

    /// Rectangle translated by `v`.
    pub fn translated(&self, v: Vector) -> Rect {
        Rect {
            x0: self.x0 + v.dx,
            y0: self.y0 + v.dy,
            x1: self.x1 + v.dx,
            y1: self.y1 + v.dy,
        }
    }

    /// Minimum edge-to-edge spacing to `other` (0 when they touch or overlap).
    pub fn spacing_to(&self, other: &Rect) -> Coord {
        let dx = (other.x0 - self.x1).max(self.x0 - other.x1).max(0);
        let dy = (other.y0 - self.y1).max(self.y0 - other.y1).max(0);
        // Rectilinear spacing convention: the max of the axis gaps (covers
        // both the diagonal case and the single-axis case).
        dx.max(dy)
    }

    /// Converts this rectangle into a counter-clockwise rectilinear polygon.
    pub fn to_polygon(&self) -> Polygon {
        Polygon::new(vec![
            Point::new(self.x0, self.y0),
            Point::new(self.x1, self.y0),
            Point::new(self.x1, self.y1),
            Point::new(self.x0, self.y1),
        ])
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}; {}, {}]", self.x0, self.y0, self.x1, self.y1)
    }
}

impl From<(Coord, Coord, Coord, Coord)> for Rect {
    fn from((x0, y0, x1, y1): (Coord, Coord, Coord, Coord)) -> Self {
        Rect::new(x0, y0, x1, y1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalises() {
        let r = Rect::new(10, 20, 0, 5);
        assert_eq!(r, Rect::new(0, 5, 10, 20));
        assert_eq!(r.width(), 10);
        assert_eq!(r.height(), 15);
        assert_eq!(r.area(), 150);
    }

    #[test]
    fn centered_at_has_requested_size() {
        let r = Rect::centered_at(Point::new(100, 100), 70, 70);
        assert_eq!(r.width(), 70);
        assert_eq!(r.height(), 70);
        assert_eq!(r.center(), Point::new(100, 100));
    }

    #[test]
    fn containment_and_intersection() {
        let a = Rect::new(0, 0, 100, 100);
        let b = Rect::new(50, 50, 150, 150);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), Some(Rect::new(50, 50, 100, 100)));
        assert!(a.contains_point(Point::new(100, 100)));
        assert!(!a.contains_point(Point::new(101, 100)));
        assert!(a.contains_rect(&Rect::new(10, 10, 20, 20)));
        assert!(!a.contains_rect(&b));
        assert_eq!(a.union(&b), Rect::new(0, 0, 150, 150));
    }

    #[test]
    fn disjoint_rects_have_no_intersection() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(20, 20, 30, 30);
        assert!(!a.intersects(&b));
        assert_eq!(a.intersection(&b), None);
        assert_eq!(a.spacing_to(&b), 10);
    }

    #[test]
    fn expansion_and_translation() {
        let r = Rect::new(10, 10, 20, 20);
        assert_eq!(r.expanded(5), Rect::new(5, 5, 25, 25));
        assert_eq!(r.expanded(-2), Rect::new(12, 12, 18, 18));
        assert_eq!(r.translated(Vector::new(-10, 5)), Rect::new(0, 15, 10, 25));
    }

    #[test]
    fn to_polygon_is_ccw_with_matching_area() {
        let r = Rect::new(0, 0, 70, 70);
        let p = r.to_polygon();
        assert_eq!(p.area(), r.area());
        assert!(p.is_counter_clockwise());
    }

    #[test]
    fn spacing_when_touching_is_zero() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(10, 0, 20, 10);
        assert_eq!(a.spacing_to(&b), 0);
    }
}
