//! Boundary fragmentation: segments, control points and EPE measure points.
//!
//! Following the conventional OPC flow described in the CAMO paper, each
//! target-pattern boundary is split into movable *segments*. Via-layer
//! patterns keep one segment per edge; metal-layer edges along the primary
//! direction are split so that each EPE measure point (60 nm spacing) sits at
//! the centre of its segment, with remainders absorbed by line ends.

use crate::point::{Coord, Point, Vector};
use crate::polygon::Polygon;

/// Identifier of a segment within a [`Fragments`] collection.
pub type SegmentId = usize;

/// Axis orientation of a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// The segment runs parallel to the x axis.
    Horizontal,
    /// The segment runs parallel to the y axis.
    Vertical,
}

/// Outward direction of a segment (the direction a positive offset moves it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Outward normal points in +x.
    East,
    /// Outward normal points in -x.
    West,
    /// Outward normal points in +y.
    North,
    /// Outward normal points in -y.
    South,
}

impl Direction {
    /// Unit vector of the outward normal.
    pub fn unit(self) -> Vector {
        match self {
            Direction::East => Vector::new(1, 0),
            Direction::West => Vector::new(-1, 0),
            Direction::North => Vector::new(0, 1),
            Direction::South => Vector::new(0, -1),
        }
    }

    /// Orientation of a segment whose outward normal is `self`.
    pub fn segment_orientation(self) -> Orientation {
        match self {
            Direction::East | Direction::West => Orientation::Vertical,
            Direction::North | Direction::South => Orientation::Horizontal,
        }
    }
}

/// A movable fragment of a target-pattern edge.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Segment {
    /// Index of this segment in its [`Fragments`] collection.
    pub id: SegmentId,
    /// Index of the owning polygon within the clip.
    pub polygon: usize,
    /// Index of the owning edge within the polygon's edge loop.
    pub edge: usize,
    /// Segment start point on the *target* boundary (loop order).
    pub start: Point,
    /// Segment end point on the *target* boundary (loop order).
    pub end: Point,
    /// Outward normal direction: positive offsets move the segment this way.
    pub outward: Direction,
    /// True when this segment is a line end (metal layer) or a via edge.
    pub is_line_end: bool,
}

impl Segment {
    /// The control point: midpoint of the segment on the target boundary.
    pub fn control_point(&self) -> Point {
        Point::new(
            (self.start.x + self.end.x) / 2,
            (self.start.y + self.end.y) / 2,
        )
    }

    /// Segment length in nm.
    pub fn length(&self) -> Coord {
        self.start.manhattan_distance(self.end)
    }

    /// Orientation of the segment itself.
    pub fn orientation(&self) -> Orientation {
        self.outward.segment_orientation()
    }
}

/// A control point: the midpoint of a segment, used as the centre of its
/// squish-pattern window and as the graph-node location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ControlPoint {
    /// Segment this control point belongs to.
    pub segment: SegmentId,
    /// Location on the target boundary.
    pub location: Point,
}

/// An EPE measure point on the target boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeasurePoint {
    /// Segment whose EPE this point measures.
    pub segment: SegmentId,
    /// Location on the target boundary.
    pub location: Point,
    /// Outward direction at this point (EPE is signed along this direction).
    pub outward: Direction,
}

/// Parameters controlling boundary fragmentation.
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentationParams {
    /// Spacing between EPE measure points along primary-direction edges, nm.
    /// Each interior segment is centred on one measure point.
    pub measure_spacing: Coord,
    /// When true, every polygon edge becomes exactly one segment regardless
    /// of its length (via-layer convention).
    pub edge_as_single_segment: bool,
    /// Minimum length for a line-end segment before the remainder is merged
    /// into its neighbour, nm.
    pub min_segment_length: Coord,
}

impl FragmentationParams {
    /// Via-layer convention: each via edge is one segment with the measure
    /// point at the edge centre.
    pub fn via_layer() -> Self {
        Self {
            measure_spacing: 70,
            edge_as_single_segment: true,
            min_segment_length: 10,
        }
    }

    /// Metal-layer convention from the paper: measure points every 60 nm
    /// along primary-direction edges, remainders absorbed by line ends.
    pub fn metal_layer() -> Self {
        Self {
            measure_spacing: 60,
            edge_as_single_segment: false,
            min_segment_length: 10,
        }
    }
}

impl Default for FragmentationParams {
    fn default() -> Self {
        Self::metal_layer()
    }
}

/// The result of fragmenting one or more polygons.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Fragments {
    /// All segments, indexed by [`SegmentId`].
    pub segments: Vec<Segment>,
    /// One measure point per segment, in segment order.
    pub measure_points: Vec<MeasurePoint>,
}

impl Fragments {
    /// Control points of all segments, in segment order.
    pub fn control_points(&self) -> Vec<ControlPoint> {
        self.segments
            .iter()
            .map(|s| ControlPoint {
                segment: s.id,
                location: s.control_point(),
            })
            .collect()
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when no segments are present.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Appends another collection, re-indexing its segments.
    pub fn extend(&mut self, other: Fragments) {
        let base = self.segments.len();
        for mut s in other.segments {
            s.id += base;
            self.segments.push(s);
        }
        for mut m in other.measure_points {
            m.segment += base;
            self.measure_points.push(m);
        }
    }

    /// Segments belonging to polygon `polygon`, in boundary order.
    pub fn segments_of_polygon(&self, polygon: usize) -> Vec<&Segment> {
        self.segments
            .iter()
            .filter(|s| s.polygon == polygon)
            .collect()
    }
}

/// Outward normal of edge `(a, b)` of a counter-clockwise polygon.
fn outward_of_edge(a: Point, b: Point) -> Direction {
    // For a CCW loop the interior lies to the left of the directed edge, so
    // the outward normal is the right-hand normal.
    if a.x == b.x {
        // vertical edge
        if b.y > a.y {
            Direction::East
        } else {
            Direction::West
        }
    } else if b.x > a.x {
        Direction::South
    } else {
        Direction::North
    }
}

/// Splits one directed edge into segments so that measure points at
/// `spacing` intervals sit at segment centres; remainders go to the ends.
fn split_edge(a: Point, b: Point, spacing: Coord, min_len: Coord) -> Vec<(Point, Point)> {
    let length = a.manhattan_distance(b);
    if length <= spacing + min_len {
        return vec![(a, b)];
    }
    // Number of interior measure points that fit with full spacing.
    let n_points = (length / spacing).max(1);
    let covered = n_points * spacing;
    let remainder = length - covered;
    let lead = remainder / 2;
    let trail = remainder - lead;
    // Walk along the edge: first segment of (lead + spacing/2 .. ), interior
    // segments of `spacing`, last segment absorbing the trailing remainder.
    let dir = Vector::new((b.x - a.x).signum(), (b.y - a.y).signum());
    let mut cuts: Vec<Coord> = Vec::new();
    // The first measure point sits at lead + spacing/2; segment boundaries
    // are halfway between measure points.
    let first_center = lead + spacing / 2;
    let mut c = first_center + spacing / 2;
    while c < length {
        cuts.push(c);
        c += spacing;
    }
    // Drop a trailing cut that would create a sliver shorter than min_len.
    while let Some(&last) = cuts.last() {
        if length - last < min_len.max(trail.min(spacing / 2)) && cuts.len() > 1 {
            cuts.pop();
        } else {
            break;
        }
    }
    let mut out = Vec::with_capacity(cuts.len() + 1);
    let mut prev = 0;
    for &cut in &cuts {
        out.push((a + dir.scaled(prev), a + dir.scaled(cut)));
        prev = cut;
    }
    out.push((a + dir.scaled(prev), b));
    out
}

/// Fragments a single counter-clockwise polygon's boundary.
///
/// `polygon_index` is recorded in every produced [`Segment`] so that segments
/// from several polygons can be collected into one [`Fragments`] set.
///
/// # Panics
///
/// Panics if `polygon` is not counter-clockwise (call
/// [`Polygon::normalized`] first).
pub fn fragment_polygon(
    polygon: &Polygon,
    polygon_index: usize,
    params: &FragmentationParams,
) -> Fragments {
    assert!(
        polygon.is_counter_clockwise(),
        "fragment_polygon requires a counter-clockwise polygon"
    );
    let mut frags = Fragments::default();
    let edges: Vec<(Point, Point)> = polygon.edges().collect();
    for (edge_idx, &(a, b)) in edges.iter().enumerate() {
        let outward = outward_of_edge(a, b);
        let pieces = if params.edge_as_single_segment {
            vec![(a, b)]
        } else {
            split_edge(a, b, params.measure_spacing, params.min_segment_length)
        };
        let n_pieces = pieces.len();
        for (k, (s, e)) in pieces.into_iter().enumerate() {
            let id = frags.segments.len();
            let is_line_end = params.edge_as_single_segment || k == 0 || k + 1 == n_pieces;
            let seg = Segment {
                id,
                polygon: polygon_index,
                edge: edge_idx,
                start: s,
                end: e,
                outward,
                is_line_end,
            };
            let mp = MeasurePoint {
                segment: id,
                location: seg.control_point(),
                outward,
            };
            frags.segments.push(seg);
            frags.measure_points.push(mp);
        }
    }
    frags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Rect;

    #[test]
    fn via_edge_is_single_segment() {
        let poly = Rect::new(0, 0, 70, 70).to_polygon();
        let frags = fragment_polygon(&poly, 0, &FragmentationParams::via_layer());
        assert_eq!(frags.segments.len(), 4);
        for s in &frags.segments {
            assert_eq!(s.length(), 70);
            assert_eq!(s.control_point(), frags.measure_points[s.id].location);
        }
        // Check outward directions cover all four sides.
        let dirs: std::collections::HashSet<_> = frags.segments.iter().map(|s| s.outward).collect();
        assert_eq!(dirs.len(), 4);
    }

    #[test]
    fn outward_directions_point_away_from_interior() {
        let poly = Rect::new(0, 0, 70, 70).to_polygon();
        let frags = fragment_polygon(&poly, 0, &FragmentationParams::via_layer());
        for s in &frags.segments {
            let cp = s.control_point();
            let outside = cp + s.outward.unit().scaled(5);
            let inside = cp + (-s.outward.unit()).scaled(5);
            assert!(
                !poly.contains_point(outside),
                "outward of {s:?} points inside"
            );
            assert!(
                poly.contains_point(inside),
                "inward of {s:?} points outside"
            );
        }
    }

    #[test]
    fn metal_edge_splits_at_measure_spacing() {
        // A 300 nm long, 50 nm wide wire: long edges split every 60 nm.
        let poly = Rect::new(0, 0, 300, 50).to_polygon();
        let frags = fragment_polygon(&poly, 0, &FragmentationParams::metal_layer());
        // Long edges are 300 nm -> 5 measure points each; short edges single.
        let bottom: Vec<_> = frags
            .segments
            .iter()
            .filter(|s| s.outward == Direction::South)
            .collect();
        assert!(
            bottom.len() >= 4,
            "expected >=4 bottom segments, got {}",
            bottom.len()
        );
        let total: Coord = bottom.iter().map(|s| s.length()).sum();
        assert_eq!(total, 300);
        // First/last flagged as line ends.
        assert!(bottom.first().unwrap().is_line_end);
        assert!(bottom.last().unwrap().is_line_end);
    }

    #[test]
    fn fragments_extend_reindexes() {
        let p1 = Rect::new(0, 0, 70, 70).to_polygon();
        let p2 = Rect::new(200, 0, 270, 70).to_polygon();
        let mut a = fragment_polygon(&p1, 0, &FragmentationParams::via_layer());
        let b = fragment_polygon(&p2, 1, &FragmentationParams::via_layer());
        a.extend(b);
        assert_eq!(a.segments.len(), 8);
        for (i, s) in a.segments.iter().enumerate() {
            assert_eq!(s.id, i);
            assert_eq!(a.measure_points[i].segment, i);
        }
        assert_eq!(a.segments_of_polygon(1).len(), 4);
    }

    #[test]
    fn segment_lengths_cover_edge_exactly() {
        for len in [120_i64, 180, 250, 333, 601] {
            let poly = Rect::new(0, 0, len, 50).to_polygon();
            let frags = fragment_polygon(&poly, 0, &FragmentationParams::metal_layer());
            let south: Coord = frags
                .segments
                .iter()
                .filter(|s| s.outward == Direction::South)
                .map(|s| s.length())
                .sum();
            assert_eq!(south, len, "edge length {len} not fully covered");
        }
    }

    #[test]
    fn direction_units_are_consistent() {
        assert_eq!(Direction::East.unit(), Vector::new(1, 0));
        assert_eq!(
            Direction::North.segment_orientation(),
            Orientation::Horizontal
        );
        assert_eq!(Direction::West.segment_orientation(), Orientation::Vertical);
    }
}
