//! Rectilinear polygons (Manhattan geometry).

use crate::point::{Coord, Point};
use crate::rect::Rect;
use std::fmt;

/// A simple rectilinear (Manhattan) polygon given by its vertex loop.
///
/// Consecutive vertices must differ in exactly one coordinate (axis-parallel
/// edges). The loop is implicitly closed: the last vertex connects back to
/// the first. Use [`Polygon::normalized`] to obtain a counter-clockwise copy.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from a vertex loop.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 vertices are supplied or if any edge is not
    /// axis-parallel.
    pub fn new(vertices: Vec<Point>) -> Self {
        assert!(
            vertices.len() >= 4,
            "a rectilinear polygon needs at least 4 vertices"
        );
        let n = vertices.len();
        for i in 0..n {
            let a = vertices[i];
            let b = vertices[(i + 1) % n];
            assert!(
                a.x == b.x || a.y == b.y,
                "polygon edge {a} -> {b} is not axis-parallel"
            );
            assert!(a != b, "degenerate zero-length edge at vertex {i}");
        }
        Self { vertices }
    }

    /// The vertex loop.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Always false: polygons have at least four vertices.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterator over directed edges `(start, end)` around the loop.
    pub fn edges(&self) -> impl Iterator<Item = (Point, Point)> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| (self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Signed area (positive for counter-clockwise loops), via the shoelace
    /// formula.
    pub fn signed_area(&self) -> i64 {
        let n = self.vertices.len();
        let mut twice: i128 = 0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            twice += a.x as i128 * b.y as i128 - b.x as i128 * a.y as i128;
        }
        (twice / 2) as i64
    }

    /// Absolute enclosed area in nm².
    pub fn area(&self) -> i64 {
        self.signed_area().abs()
    }

    /// True when the vertex loop is counter-clockwise.
    pub fn is_counter_clockwise(&self) -> bool {
        self.signed_area() > 0
    }

    /// Returns a counter-clockwise copy (reverses the loop when needed).
    pub fn normalized(&self) -> Polygon {
        if self.is_counter_clockwise() {
            self.clone()
        } else {
            let mut v = self.vertices.clone();
            v.reverse();
            Polygon { vertices: v }
        }
    }

    /// Axis-aligned bounding box.
    pub fn bounding_box(&self) -> Rect {
        let mut x0 = Coord::MAX;
        let mut y0 = Coord::MAX;
        let mut x1 = Coord::MIN;
        let mut y1 = Coord::MIN;
        for v in &self.vertices {
            x0 = x0.min(v.x);
            y0 = y0.min(v.y);
            x1 = x1.max(v.x);
            y1 = y1.max(v.y);
        }
        Rect::new(x0, y0, x1, y1)
    }

    /// Point-in-polygon test (even-odd rule). Points exactly on the boundary
    /// are reported as inside.
    pub fn contains_point(&self, p: Point) -> bool {
        if self.on_boundary(p) {
            return true;
        }
        // Cast a ray in +x at y = p.y + 0.5 conceptually; because the polygon
        // is rectilinear with integer coordinates we count crossings of
        // vertical edges that span the half-integer line.
        let mut inside = false;
        for (a, b) in self.edges() {
            if a.x == b.x {
                // vertical edge
                let (ylo, yhi) = if a.y < b.y { (a.y, b.y) } else { (b.y, a.y) };
                if a.x > p.x && p.y >= ylo && p.y < yhi {
                    inside = !inside;
                }
            }
        }
        inside
    }

    /// True when `p` lies exactly on one of the polygon's edges.
    pub fn on_boundary(&self, p: Point) -> bool {
        for (a, b) in self.edges() {
            if a.x == b.x {
                let (ylo, yhi) = if a.y < b.y { (a.y, b.y) } else { (b.y, a.y) };
                if p.x == a.x && p.y >= ylo && p.y <= yhi {
                    return true;
                }
            } else {
                let (xlo, xhi) = if a.x < b.x { (a.x, b.x) } else { (b.x, a.x) };
                if p.y == a.y && p.x >= xlo && p.x <= xhi {
                    return true;
                }
            }
        }
        false
    }

    /// Total boundary length in nm.
    pub fn perimeter(&self) -> Coord {
        self.edges().map(|(a, b)| a.manhattan_distance(b)).sum()
    }

    /// Creates an L-shaped polygon — a convenience constructor for tests and
    /// metal-pattern generation. The L occupies `outer` minus the rectangle
    /// cut from its upper-right corner with the given `notch_w` × `notch_h`.
    ///
    /// # Panics
    ///
    /// Panics if the notch does not fit strictly inside the outer rectangle
    /// extents.
    pub fn l_shape(outer: Rect, notch_w: Coord, notch_h: Coord) -> Polygon {
        assert!(notch_w > 0 && notch_h > 0);
        assert!(notch_w < outer.width() && notch_h < outer.height());
        Polygon::new(vec![
            Point::new(outer.x0, outer.y0),
            Point::new(outer.x1, outer.y0),
            Point::new(outer.x1, outer.y1 - notch_h),
            Point::new(outer.x1 - notch_w, outer.y1 - notch_h),
            Point::new(outer.x1 - notch_w, outer.y1),
            Point::new(outer.x0, outer.y1),
        ])
    }
}

impl fmt::Display for Polygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Polygon[")?;
        for (i, v) in self.vertices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

impl From<Rect> for Polygon {
    fn from(r: Rect) -> Self {
        r.to_polygon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Polygon {
        Rect::new(0, 0, 10, 10).to_polygon()
    }

    #[test]
    fn square_area_and_orientation() {
        let p = square();
        assert_eq!(p.area(), 100);
        assert!(p.is_counter_clockwise());
        assert_eq!(p.perimeter(), 40);
    }

    #[test]
    fn normalization_fixes_clockwise_loops() {
        let cw = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(0, 10),
            Point::new(10, 10),
            Point::new(10, 0),
        ]);
        assert!(!cw.is_counter_clockwise());
        let ccw = cw.normalized();
        assert!(ccw.is_counter_clockwise());
        assert_eq!(ccw.area(), cw.area());
    }

    #[test]
    fn point_containment() {
        let p = square();
        assert!(p.contains_point(Point::new(5, 5)));
        assert!(p.contains_point(Point::new(0, 0))); // boundary
        assert!(p.contains_point(Point::new(10, 5))); // boundary
        assert!(!p.contains_point(Point::new(11, 5)));
        assert!(!p.contains_point(Point::new(-1, 5)));
    }

    #[test]
    fn l_shape_area() {
        let l = Polygon::l_shape(Rect::new(0, 0, 100, 60), 40, 30);
        assert_eq!(l.area(), 100 * 60 - 40 * 30);
        assert!(l.is_counter_clockwise());
        assert!(l.contains_point(Point::new(10, 10)));
        // Point inside the notch (upper right) is outside the L.
        assert!(!l.contains_point(Point::new(90, 50)));
    }

    #[test]
    fn bounding_box_covers_all_vertices() {
        let l = Polygon::l_shape(Rect::new(5, 5, 105, 65), 40, 30);
        assert_eq!(l.bounding_box(), Rect::new(5, 5, 105, 65));
    }

    #[test]
    #[should_panic(expected = "axis-parallel")]
    fn diagonal_edges_are_rejected() {
        let _ = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(10, 10),
            Point::new(0, 10),
            Point::new(0, 5),
        ]);
    }
}
