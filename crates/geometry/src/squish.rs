//! Squish-pattern encoding (Figure 3 of the CAMO paper).
//!
//! Layout windows are sparse, so instead of rasterising them into large pixel
//! images, the *squish pattern* places scanlines only at geometry edges. The
//! window becomes a small occupancy matrix `M` plus two spacing vectors
//! `δx`/`δy` holding the physical width of every grid interval in nm.
//!
//! The policy network needs a fixed input size, so the variable-size squish
//! pattern is converted to an [`AdaptiveSquishTensor`] of `d × d × 3`
//! channels (occupancy, x-spacing, y-spacing), padding or merging grid
//! intervals as required — the "adaptive squish pattern" of Yang et al.
//! (ASPDAC'19) that both RL-OPC and CAMO use.

use crate::point::Coord;
use crate::polygon::Polygon;
use crate::rect::Rect;

/// A variable-size squish encoding of one layout window.
#[derive(Debug, Clone, PartialEq)]
pub struct SquishPattern {
    /// Occupancy matrix, row-major: `matrix[row * cols + col]`, 1.0 when the
    /// grid cell is covered by geometry.
    pub matrix: Vec<f64>,
    /// Horizontal interval widths in nm (length = `cols`).
    pub delta_x: Vec<Coord>,
    /// Vertical interval heights in nm (length = `rows`).
    pub delta_y: Vec<Coord>,
    /// Number of columns.
    pub cols: usize,
    /// Number of rows.
    pub rows: usize,
}

impl SquishPattern {
    /// Encodes the geometry visible in `window`.
    ///
    /// Scanlines are placed at the window boundary, at every polygon edge and
    /// at every rectangle edge that falls inside the window. `extra_x` /
    /// `extra_y` allow callers to force additional scanlines (CAMO adds the
    /// *target* edges when encoding the mask so that edge movements stand
    /// out).
    pub fn encode(
        window: Rect,
        polygons: &[Polygon],
        rects: &[Rect],
        extra_x: &[Coord],
        extra_y: &[Coord],
    ) -> Self {
        let mut xs: Vec<Coord> = vec![window.x0, window.x1];
        let mut ys: Vec<Coord> = vec![window.y0, window.y1];
        for p in polygons {
            for (a, b) in p.edges() {
                if a.x == b.x {
                    if a.x > window.x0 && a.x < window.x1 {
                        xs.push(a.x);
                    }
                } else if a.y > window.y0 && a.y < window.y1 {
                    ys.push(a.y);
                }
            }
        }
        for r in rects {
            for x in [r.x0, r.x1] {
                if x > window.x0 && x < window.x1 {
                    xs.push(x);
                }
            }
            for y in [r.y0, r.y1] {
                if y > window.y0 && y < window.y1 {
                    ys.push(y);
                }
            }
        }
        for &x in extra_x {
            if x > window.x0 && x < window.x1 {
                xs.push(x);
            }
        }
        for &y in extra_y {
            if y > window.y0 && y < window.y1 {
                ys.push(y);
            }
        }
        xs.sort_unstable();
        xs.dedup();
        ys.sort_unstable();
        ys.dedup();

        let cols = xs.len() - 1;
        let rows = ys.len() - 1;
        let delta_x: Vec<Coord> = xs.windows(2).map(|w| w[1] - w[0]).collect();
        let delta_y: Vec<Coord> = ys.windows(2).map(|w| w[1] - w[0]).collect();
        let mut matrix = vec![0.0; cols * rows];
        for row in 0..rows {
            let cy = (ys[row] + ys[row + 1]) / 2;
            for col in 0..cols {
                let cx = (xs[col] + xs[col + 1]) / 2;
                let p = crate::point::Point::new(cx, cy);
                let covered = polygons.iter().any(|poly| poly.contains_point(p))
                    || rects.iter().any(|r| r.contains_point(p) && !r.is_empty());
                if covered {
                    matrix[row * cols + col] = 1.0;
                }
            }
        }
        Self {
            matrix,
            delta_x,
            delta_y,
            cols,
            rows,
        }
    }

    /// Occupancy value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn occupancy(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.rows && col < self.cols,
            "squish index out of range"
        );
        self.matrix[row * self.cols + col]
    }

    /// Total covered area represented by the pattern, nm².
    pub fn covered_area(&self) -> i64 {
        let mut area = 0;
        for row in 0..self.rows {
            for col in 0..self.cols {
                if self.matrix[row * self.cols + col] > 0.5 {
                    area += self.delta_x[col] * self.delta_y[row];
                }
            }
        }
        area
    }

    /// Total window area, nm².
    pub fn window_area(&self) -> i64 {
        let w: Coord = self.delta_x.iter().sum();
        let h: Coord = self.delta_y.iter().sum();
        w * h
    }
}

/// A fixed-size, 3-channel tensor derived from a [`SquishPattern`].
///
/// Channels: 0 = occupancy, 1 = normalised x-spacing of the cell's column,
/// 2 = normalised y-spacing of the cell's row. Spacings are normalised by the
/// window extent so all values lie in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveSquishTensor {
    /// Tensor values, layout `[channel][row][col]` flattened row-major.
    pub data: Vec<f64>,
    /// Side length (rows = cols = `size`).
    pub size: usize,
}

impl AdaptiveSquishTensor {
    /// Number of channels in the tensor.
    pub const CHANNELS: usize = 3;

    /// Converts a squish pattern to a fixed `size × size × 3` tensor.
    ///
    /// Columns/rows are merged (smallest spacing first) when the pattern is
    /// larger than `size`, and zero-spacing entries are appended when it is
    /// smaller, exactly preserving total covered area in the spacing
    /// channels.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn from_pattern(pattern: &SquishPattern, size: usize) -> Self {
        assert!(size > 0, "tensor size must be positive");
        let (matrix, dx, dy) = adapt(pattern, size);
        let wx: Coord = dx.iter().sum::<Coord>().max(1);
        let wy: Coord = dy.iter().sum::<Coord>().max(1);
        let mut data = vec![0.0; Self::CHANNELS * size * size];
        let plane = size * size;
        for (row, &dy_row) in dy.iter().enumerate() {
            for (col, &dx_col) in dx.iter().enumerate() {
                let idx = row * size + col;
                data[idx] = matrix[idx];
                data[plane + idx] = dx_col as f64 / wx as f64;
                data[2 * plane + idx] = dy_row as f64 / wy as f64;
            }
        }
        Self { data, size }
    }

    /// Value of `channel` at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn get(&self, channel: usize, row: usize, col: usize) -> f64 {
        assert!(channel < Self::CHANNELS && row < self.size && col < self.size);
        self.data[channel * self.size * self.size + row * self.size + col]
    }

    /// Flattened length (`3 · size²`).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has zero size (never happens for valid tensors).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Concatenates two tensors channel-wise (used by CAMO to stack the mask
    /// encoding with the target-edge-highlighted encoding into 6 channels).
    ///
    /// # Panics
    ///
    /// Panics if the sizes differ.
    pub fn concat(&self, other: &AdaptiveSquishTensor) -> Vec<f64> {
        assert_eq!(
            self.size, other.size,
            "cannot concatenate tensors of different size"
        );
        let mut out = Vec::with_capacity(self.data.len() + other.data.len());
        out.extend_from_slice(&self.data);
        out.extend_from_slice(&other.data);
        out
    }
}

/// Merges or pads a squish pattern to exactly `size × size`.
fn adapt(pattern: &SquishPattern, size: usize) -> (Vec<f64>, Vec<Coord>, Vec<Coord>) {
    let mut matrix = pattern.matrix.clone();
    let mut cols = pattern.cols;
    let mut rows = pattern.rows;
    let mut dx = pattern.delta_x.clone();
    let mut dy = pattern.delta_y.clone();

    // Merge columns while too many.
    while cols > size {
        let (i, _) = dx
            .windows(2)
            .enumerate()
            .min_by_key(|(_, w)| w[0] + w[1])
            .expect("at least two columns when merging");
        let mut new_matrix = Vec::with_capacity(rows * (cols - 1));
        for row in 0..rows {
            for col in 0..cols {
                if col == i + 1 {
                    continue;
                }
                let mut v = matrix[row * cols + col];
                if col == i {
                    v = v.max(matrix[row * cols + col + 1]);
                }
                new_matrix.push(v);
            }
        }
        dx[i] += dx[i + 1];
        dx.remove(i + 1);
        matrix = new_matrix;
        cols -= 1;
    }
    // Merge rows while too many.
    while rows > size {
        let (i, _) = dy
            .windows(2)
            .enumerate()
            .min_by_key(|(_, w)| w[0] + w[1])
            .expect("at least two rows when merging");
        let mut new_matrix = Vec::with_capacity((rows - 1) * cols);
        for row in 0..rows {
            if row == i + 1 {
                continue;
            }
            for col in 0..cols {
                let mut v = matrix[row * cols + col];
                if row == i {
                    v = v.max(matrix[(row + 1) * cols + col]);
                }
                new_matrix.push(v);
            }
        }
        dy[i] += dy[i + 1];
        dy.remove(i + 1);
        matrix = new_matrix;
        rows -= 1;
    }
    // Pad with zero-spacing columns/rows when too few.
    if cols < size {
        let add = size - cols;
        let mut new_matrix = Vec::with_capacity(rows * size);
        for row in 0..rows {
            new_matrix.extend_from_slice(&matrix[row * cols..(row + 1) * cols]);
            new_matrix.extend(std::iter::repeat_n(0.0, add));
        }
        dx.extend(std::iter::repeat_n(0, add));
        matrix = new_matrix;
        cols = size;
    }
    if rows < size {
        let add = size - rows;
        matrix.extend(std::iter::repeat_n(0.0, add * cols));
        dy.extend(std::iter::repeat_n(0, add));
        rows = size;
    }
    debug_assert_eq!(matrix.len(), rows * cols);
    (matrix, dx, dy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    #[test]
    fn encode_single_rect_window() {
        // A 70 nm via centred in a 500 nm window: 3x3 grid, centre cell set.
        let window = Rect::new(0, 0, 500, 500);
        let via = Rect::new(215, 215, 285, 285);
        let sp = SquishPattern::encode(window, &[via.to_polygon()], &[], &[], &[]);
        assert_eq!(sp.cols, 3);
        assert_eq!(sp.rows, 3);
        assert_eq!(sp.occupancy(1, 1), 1.0);
        assert_eq!(sp.occupancy(0, 0), 0.0);
        assert_eq!(sp.covered_area(), 70 * 70);
        assert_eq!(sp.window_area(), 500 * 500);
        assert_eq!(sp.delta_x, vec![215, 70, 215]);
    }

    #[test]
    fn encode_includes_sraf_rects() {
        let window = Rect::new(0, 0, 400, 400);
        let via = Rect::new(165, 165, 235, 235);
        let sraf = Rect::new(40, 165, 60, 235);
        let sp = SquishPattern::encode(window, &[via.to_polygon()], &[sraf], &[], &[]);
        assert_eq!(sp.covered_area(), 70 * 70 + 20 * 70);
    }

    #[test]
    fn extra_scanlines_add_grid_lines() {
        let window = Rect::new(0, 0, 100, 100);
        let sp0 = SquishPattern::encode(window, &[], &[], &[], &[]);
        assert_eq!(sp0.cols, 1);
        let sp1 = SquishPattern::encode(window, &[], &[], &[30, 60], &[50]);
        assert_eq!(sp1.cols, 3);
        assert_eq!(sp1.rows, 2);
        assert_eq!(sp1.covered_area(), 0);
    }

    #[test]
    fn adaptive_tensor_pads_small_patterns() {
        let window = Rect::new(0, 0, 500, 500);
        let via = Rect::new(215, 215, 285, 285);
        let sp = SquishPattern::encode(window, &[via.to_polygon()], &[], &[], &[]);
        let t = AdaptiveSquishTensor::from_pattern(&sp, 8);
        assert_eq!(t.size, 8);
        assert_eq!(t.len(), 3 * 64);
        // Occupancy channel preserves the filled cell.
        assert_eq!(t.get(0, 1, 1), 1.0);
        // Padded cells carry zero spacing.
        assert_eq!(t.get(1, 0, 7), 0.0);
    }

    #[test]
    fn adaptive_tensor_merges_large_patterns() {
        // Many small rects -> more than `size` grid lines; merging must keep
        // values in [0, 1] and the requested dimensions.
        let window = Rect::new(0, 0, 1000, 1000);
        let rects: Vec<Rect> = (0..12)
            .map(|i| Rect::new(10 + i * 80, 10 + i * 80, 40 + i * 80, 40 + i * 80))
            .collect();
        let polys: Vec<Polygon> = rects.iter().map(|r| r.to_polygon()).collect();
        let sp = SquishPattern::encode(window, &polys, &[], &[], &[]);
        assert!(sp.cols > 8);
        let t = AdaptiveSquishTensor::from_pattern(&sp, 8);
        assert_eq!(t.size, 8);
        for v in &t.data {
            assert!((0.0..=1.0).contains(v), "value {v} out of range");
        }
        // Some occupancy must survive the merge.
        assert!(t.data[..64].iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn concat_produces_six_channels() {
        let window = Rect::new(0, 0, 200, 200);
        let via = Rect::new(65, 65, 135, 135);
        let sp = SquishPattern::encode(window, &[via.to_polygon()], &[], &[], &[]);
        let t = AdaptiveSquishTensor::from_pattern(&sp, 4);
        let stacked = t.concat(&t);
        assert_eq!(stacked.len(), 6 * 16);
    }

    #[test]
    fn window_off_origin_is_supported() {
        let window = Rect::new(1000, 1000, 1500, 1500);
        let via = Rect::new(1215, 1215, 1285, 1285);
        let sp = SquishPattern::encode(window, &[via.to_polygon()], &[], &[], &[]);
        assert_eq!(sp.covered_area(), 70 * 70);
        assert!(sp.matrix.iter().zip(0..).any(|(&v, _)| v > 0.5));
        let p = Point::new(1250, 1250);
        assert!(via.contains_point(p));
    }
}
