//! Rasterisation of rectilinear geometry onto a pixel grid.
//!
//! The lithography simulator consumes masks as pixel grids. [`Raster`] covers
//! a rectangular region at a configurable pixel pitch and supports scanline
//! filling of rectilinear polygons and rectangles.

use crate::point::{Coord, Point};
use crate::polygon::Polygon;
use crate::rect::Rect;
use crate::simd;

/// A dense 2-D grid of `f64` samples covering a layout region.
///
/// Pixel `(ix, iy)` covers the square
/// `[origin.x + ix·p, origin.x + (ix+1)·p) × [origin.y + iy·p, …)` where `p`
/// is the pixel size in nm. Data is stored row-major with `iy` as the slow
/// axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Raster {
    origin: Point,
    pixel_size: Coord,
    width: usize,
    height: usize,
    data: Vec<f64>,
}

impl Raster {
    /// Creates a zero-filled raster covering `region` at `pixel_size` nm per
    /// pixel. The region is expanded (never truncated) to a whole number of
    /// pixels.
    ///
    /// # Panics
    ///
    /// Panics if `pixel_size <= 0` or the region is empty.
    pub fn new(region: Rect, pixel_size: Coord) -> Self {
        assert!(pixel_size > 0, "pixel size must be positive");
        assert!(!region.is_empty(), "cannot rasterise an empty region");
        let width = ((region.width() + pixel_size - 1) / pixel_size) as usize;
        let height = ((region.height() + pixel_size - 1) / pixel_size) as usize;
        Self {
            origin: region.lower_left(),
            pixel_size,
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Creates a raster with explicit dimensions (used by the litho kernels
    /// for intermediate images).
    pub fn with_dimensions(origin: Point, pixel_size: Coord, width: usize, height: usize) -> Self {
        assert!(pixel_size > 0, "pixel size must be positive");
        Self {
            origin,
            pixel_size,
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Re-targets this raster at `region` (expanded to whole pixels, exactly
    /// like [`Self::new`]) and zero-fills it, reusing the existing sample
    /// allocation when its capacity suffices — the in-place counterpart of
    /// [`Self::new`] for callers that recycle raster buffers.
    ///
    /// # Panics
    ///
    /// Panics if `pixel_size <= 0` or the region is empty.
    pub fn reshape(&mut self, region: Rect, pixel_size: Coord) {
        self.reshape_scratch(region, pixel_size);
        self.data.fill(0.0);
    }

    /// Like [`Self::reshape`], but leaves the sample values **unspecified**
    /// (stale data from the previous use may remain): pooled scratch rasters
    /// whose consumers overwrite every sample before reading use this to
    /// skip the zero-fill.
    ///
    /// # Panics
    ///
    /// Panics if `pixel_size <= 0` or the region is empty.
    pub fn reshape_scratch(&mut self, region: Rect, pixel_size: Coord) {
        assert!(pixel_size > 0, "pixel size must be positive");
        assert!(!region.is_empty(), "cannot rasterise an empty region");
        let width = ((region.width() + pixel_size - 1) / pixel_size) as usize;
        let height = ((region.height() + pixel_size - 1) / pixel_size) as usize;
        self.reshape_scratch_with_dimensions(region.lower_left(), pixel_size, width, height);
    }

    /// Like [`Self::reshape_scratch`], but with explicitly provided grid
    /// dimensions (sample values stay unspecified).
    ///
    /// # Panics
    ///
    /// Panics if `pixel_size <= 0`.
    pub fn reshape_scratch_with_dimensions(
        &mut self,
        origin: Point,
        pixel_size: Coord,
        width: usize,
        height: usize,
    ) {
        assert!(pixel_size > 0, "pixel size must be positive");
        self.origin = origin;
        self.pixel_size = pixel_size;
        self.width = width;
        self.height = height;
        let cells = width * height;
        if self.data.len() < cells {
            self.data.resize(cells, 0.0);
        } else {
            self.data.truncate(cells);
        }
    }

    /// Grid width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel pitch in nm.
    pub fn pixel_size(&self) -> Coord {
        self.pixel_size
    }

    /// Lower-left corner of the covered region.
    pub fn origin(&self) -> Point {
        self.origin
    }

    /// The covered region in nm.
    pub fn region(&self) -> Rect {
        Rect::new(
            self.origin.x,
            self.origin.y,
            self.origin.x + self.width as Coord * self.pixel_size,
            self.origin.y + self.height as Coord * self.pixel_size,
        )
    }

    /// Raw sample slice (row-major, `iy` slow).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw sample slice.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Heap memory retained by this raster, in bytes (capacity, not length —
    /// a reshaped raster keeps its largest-ever allocation, which is what
    /// pooled-buffer footprint accounting has to measure).
    pub fn heap_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f64>()
    }

    /// Sample at pixel `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn get(&self, ix: usize, iy: usize) -> f64 {
        assert!(
            ix < self.width && iy < self.height,
            "pixel index out of range"
        );
        self.data[iy * self.width + ix]
    }

    /// Sets the sample at pixel `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set(&mut self, ix: usize, iy: usize, value: f64) {
        assert!(
            ix < self.width && iy < self.height,
            "pixel index out of range"
        );
        self.data[iy * self.width + ix] = value;
    }

    /// Centre of pixel `(ix, iy)` in nm (rounded to the nm grid).
    pub fn pixel_center(&self, ix: usize, iy: usize) -> Point {
        Point::new(
            self.origin.x + ix as Coord * self.pixel_size + self.pixel_size / 2,
            self.origin.y + iy as Coord * self.pixel_size + self.pixel_size / 2,
        )
    }

    /// Pixel indices containing point `p`, or `None` when outside the grid.
    pub fn pixel_at(&self, p: Point) -> Option<(usize, usize)> {
        if p.x < self.origin.x || p.y < self.origin.y {
            return None;
        }
        let ix = ((p.x - self.origin.x) / self.pixel_size) as usize;
        let iy = ((p.y - self.origin.y) / self.pixel_size) as usize;
        if ix < self.width && iy < self.height {
            Some((ix, iy))
        } else {
            None
        }
    }

    /// Value at the pixel containing `p`, or 0.0 outside the grid.
    pub fn sample(&self, p: Point) -> f64 {
        match self.pixel_at(p) {
            Some((ix, iy)) => self.get(ix, iy),
            None => 0.0,
        }
    }

    /// Bilinearly interpolated value at an arbitrary (sub-pixel) location
    /// given in nm. Outside the grid the nearest edge value is used.
    ///
    /// The pixel index and interpolation fraction are derived through an
    /// exact integer/fraction decomposition, so the result is invariant
    /// under translating the raster origin by whole pixels (two rasters
    /// whose grids coincide sample bit-identically at the same absolute
    /// location). Layout tiling relies on this for stitched EPE to match
    /// whole-layout evaluation bit for bit.
    pub fn sample_bilinear(&self, x: f64, y: f64) -> f64 {
        if self.width == 0 || self.height == 0 {
            return 0.0;
        }
        let (ix0, ix1, tx) = bilinear_axis(x - self.origin.x as f64, self.pixel_size, self.width);
        let (iy0, iy1, ty) = bilinear_axis(y - self.origin.y as f64, self.pixel_size, self.height);
        let v00 = self.get(ix0, iy0);
        let v10 = self.get(ix1, iy0);
        let v01 = self.get(ix0, iy1);
        let v11 = self.get(ix1, iy1);
        v00 * (1.0 - tx) * (1.0 - ty)
            + v10 * tx * (1.0 - ty)
            + v01 * (1.0 - tx) * ty
            + v11 * tx * ty
    }

    /// Adds `value` to every pixel whose centre lies inside `rect`.
    pub fn fill_rect(&mut self, rect: Rect, value: f64) {
        let half = self.pixel_size / 2;
        let ix0 = (((rect.x0 - self.origin.x - half).max(0)) / self.pixel_size) as usize;
        let iy0 = (((rect.y0 - self.origin.y - half).max(0)) / self.pixel_size) as usize;
        for iy in iy0..self.height {
            let cy = self.origin.y + iy as Coord * self.pixel_size + half;
            if cy >= rect.y1 {
                break;
            }
            if cy < rect.y0 {
                continue;
            }
            for ix in ix0..self.width {
                let cx = self.origin.x + ix as Coord * self.pixel_size + half;
                if cx >= rect.x1 {
                    break;
                }
                if cx < rect.x0 {
                    continue;
                }
                self.data[iy * self.width + ix] += value;
            }
        }
    }

    /// Adds `value` to every pixel whose centre lies inside the rectilinear
    /// polygon (even-odd scanline fill).
    pub fn fill_polygon(&mut self, polygon: &Polygon, value: f64) {
        let bbox = polygon.bounding_box();
        let half = self.pixel_size / 2;
        // Collect vertical edges once.
        let vertical: Vec<(Coord, Coord, Coord)> = polygon
            .edges()
            .filter(|(a, b)| a.x == b.x)
            .map(|(a, b)| (a.x, a.y.min(b.y), a.y.max(b.y)))
            .collect();
        for iy in 0..self.height {
            let cy = self.origin.y + iy as Coord * self.pixel_size + half;
            if cy < bbox.y0 || cy >= bbox.y1 {
                continue;
            }
            // X positions where the scanline crosses a vertical edge. Using
            // the half-open convention [ylo, yhi) avoids double counting at
            // shared vertices.
            let mut crossings: Vec<Coord> = vertical
                .iter()
                .filter(|&&(_, ylo, yhi)| cy >= ylo && cy < yhi)
                .map(|&(x, _, _)| x)
                .collect();
            crossings.sort_unstable();
            for pair in crossings.chunks_exact(2) {
                let (x_in, x_out) = (pair[0], pair[1]);
                for ix in 0..self.width {
                    let cx = self.origin.x + ix as Coord * self.pixel_size + half;
                    if cx < x_in {
                        continue;
                    }
                    if cx >= x_out {
                        break;
                    }
                    self.data[iy * self.width + ix] += value;
                }
            }
        }
    }

    /// Box-downsamples this raster by an integer `factor`: each output pixel
    /// is the mean of the corresponding `factor × factor` block (missing
    /// samples at the upper edges are treated as 0). The output pixel size is
    /// `factor` times larger.
    ///
    /// Downsampling a 1 nm rasterisation to the simulation pixel size yields
    /// an anti-aliased (area-coverage) mask image, so sub-pixel segment moves
    /// change the image smoothly instead of snapping to the pixel grid.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn downsampled(&self, factor: usize) -> Raster {
        assert!(factor > 0, "downsample factor must be positive");
        if factor == 1 {
            return self.clone();
        }
        let out_w = self.width.div_ceil(factor);
        let out_h = self.height.div_ceil(factor);
        let mut out =
            Raster::with_dimensions(self.origin, self.pixel_size * factor as Coord, out_w, out_h);
        let norm = 1.0 / (factor * factor) as f64;
        let out_data = out.data_mut();
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut acc = 0.0;
                for sy in 0..factor {
                    let iy = oy * factor + sy;
                    if iy >= self.height {
                        continue;
                    }
                    for sx in 0..factor {
                        let ix = ox * factor + sx;
                        if ix >= self.width {
                            continue;
                        }
                        acc += self.data[iy * self.width + ix];
                    }
                }
                out_data[oy * out_w + ox] = acc * norm;
            }
        }
        out
    }

    /// Clamps every sample to `[lo, hi]`.
    pub fn clamp_values(&mut self, lo: f64, hi: f64) {
        for v in &mut self.data {
            *v = v.clamp(lo, hi);
        }
    }

    /// The window spanning the whole grid.
    pub fn full_window(&self) -> PixelWindow {
        PixelWindow {
            x0: 0,
            y0: 0,
            x1: self.width,
            y1: self.height,
        }
    }

    /// Pixel window covering `region` (in nm), snapped outward to pixel
    /// boundaries and clamped to the grid. `None` when the region misses the
    /// grid entirely.
    pub fn pixel_window(&self, region: Rect) -> Option<PixelWindow> {
        let p = self.pixel_size;
        let rel_x0 = region.x0 - self.origin.x;
        let rel_y0 = region.y0 - self.origin.y;
        let rel_x1 = region.x1 - self.origin.x;
        let rel_y1 = region.y1 - self.origin.y;
        if rel_x1 <= 0 || rel_y1 <= 0 {
            return None;
        }
        let x0 = (rel_x0.max(0) / p) as usize;
        let y0 = (rel_y0.max(0) / p) as usize;
        let x1 = (((rel_x1 + p - 1) / p) as usize).min(self.width);
        let y1 = (((rel_y1 + p - 1) / p) as usize).min(self.height);
        if x0 < x1 && y0 < y1 {
            Some(PixelWindow { x0, y0, x1, y1 })
        } else {
            None
        }
    }

    /// The region in nm covered by a pixel window.
    pub fn window_region(&self, win: PixelWindow) -> Rect {
        let p = self.pixel_size;
        Rect::new(
            self.origin.x + win.x0 as Coord * p,
            self.origin.y + win.y0 as Coord * p,
            self.origin.x + win.x1 as Coord * p,
            self.origin.y + win.y1 as Coord * p,
        )
    }

    /// Zeroes every sample inside `win`.
    pub fn zero_window(&mut self, win: PixelWindow) {
        for iy in win.y0..win.y1 {
            self.data[iy * self.width + win.x0..iy * self.width + win.x1].fill(0.0);
        }
    }

    /// Clamps every sample inside `win` to `[lo, hi]`.
    pub fn clamp_window(&mut self, win: PixelWindow, lo: f64, hi: f64) {
        for iy in win.y0..win.y1 {
            for v in &mut self.data[iy * self.width + win.x0..iy * self.width + win.x1] {
                *v = v.clamp(lo, hi);
            }
        }
    }

    /// Adds `value · coverage` to every pixel of `win` overlapped by `rect`,
    /// where coverage is the *exact* fraction of the pixel square covered by
    /// the rectangle. This is the analytic equivalent of filling a 1 nm grid
    /// and box-downsampling, without the intermediate grid.
    pub fn fill_rect_coverage_in(&mut self, rect: Rect, value: f64, win: PixelWindow) {
        self.fill_rect_coverage_in_on(simd::active(), rect, value, win);
    }

    /// [`Self::fill_rect_coverage_in`] on an explicit SIMD backend — the
    /// hook the per-arch parity tests and micro-benchmarks use.
    ///
    /// Each row splits into at most two partially-covered border pixels and
    /// a fully-covered interior span; interior pixels all gain the same
    /// contribution (`hx == pixel_size` exactly, in integer nm), which the
    /// backend adds as a constant. Border pixels use the per-pixel formula,
    /// so every backend is bit-identical to the dense scalar loop.
    pub fn fill_rect_coverage_in_on(
        &mut self,
        arch: simd::ArchId,
        rect: Rect,
        value: f64,
        win: PixelWindow,
    ) {
        let p = self.pixel_size;
        let inv_area = 1.0 / (p * p) as f64;
        // Clip the rectangle to the window's nm extent.
        let wr = self.window_region(win);
        let x0 = rect.x0.max(wr.x0);
        let y0 = rect.y0.max(wr.y0);
        let x1 = rect.x1.min(wr.x1);
        let y1 = rect.y1.min(wr.y1);
        if x0 >= x1 || y0 >= y1 {
            return;
        }
        let ix0 = ((x0 - self.origin.x) / p) as usize;
        let iy0 = ((y0 - self.origin.y) / p) as usize;
        // Touched columns are [ix0, ix_end); columns whose pixel square is
        // fully covered in x (`hx == p`) are [ifull_lo, ifull_hi). All
        // quotients are of non-negative integers (x1 > x0 ≥ wr.x0 ≥
        // origin.x), so ceil is the usual `(n + p - 1) / p`.
        let ix_end = (((x1 - self.origin.x + p - 1) / p) as usize).min(win.x1);
        let ifull_lo = (((x0 - self.origin.x + p - 1) / p) as usize).clamp(ix0, ix_end);
        let ifull_hi = (((x1 - self.origin.x) / p) as usize).clamp(ifull_lo, ix_end);
        let border = |data: &mut [f64], row: usize, ix: usize, hy: Coord, origin_x: Coord| {
            let px0 = origin_x + ix as Coord * p;
            let hx = x1.min(px0 + p) - x0.max(px0);
            data[row + ix] += value * (hx * hy) as f64 * inv_area;
        };
        for iy in iy0..win.y1 {
            let py0 = self.origin.y + iy as Coord * p;
            if py0 >= y1 {
                break;
            }
            let hy = y1.min(py0 + p) - y0.max(py0);
            let row = iy * self.width;
            for ix in ix0..ifull_lo {
                border(&mut self.data, row, ix, hy, self.origin.x);
            }
            // `(p * hy) as f64` is bit-equal to the per-pixel `(hx * hy)`
            // for interior columns: the i64 product is the same number.
            let c = value * (p * hy) as f64 * inv_area;
            simd::add_constant(arch, &mut self.data[row + ifull_lo..row + ifull_hi], c);
            for ix in ifull_hi..ix_end {
                border(&mut self.data, row, ix, hy, self.origin.x);
            }
        }
    }

    /// Adds exact area coverage of a rectilinear polygon (even-odd rule) to
    /// the pixels of `win`, reusing `scratch` so the steady-state OPC loop
    /// performs no heap allocation.
    ///
    /// The polygon is decomposed into horizontal bands between consecutive
    /// distinct vertex `y` coordinates; within a band the covered `x`
    /// intervals are constant, so each (band × interval) cell is an exact
    /// rectangle handed to [`Self::fill_rect_coverage_in`].
    pub fn fill_polygon_coverage_in(
        &mut self,
        vertices: &[Point],
        value: f64,
        win: PixelWindow,
        scratch: &mut CoverageScratch,
    ) {
        self.fill_polygon_coverage_in_on(simd::active(), vertices, value, win, scratch);
    }

    /// [`Self::fill_polygon_coverage_in`] on an explicit SIMD backend — the
    /// hook the per-arch parity tests and micro-benchmarks use.
    pub fn fill_polygon_coverage_in_on(
        &mut self,
        arch: simd::ArchId,
        vertices: &[Point],
        value: f64,
        win: PixelWindow,
        scratch: &mut CoverageScratch,
    ) {
        let n = vertices.len();
        if n < 4 {
            return;
        }
        let wr = self.window_region(win);
        scratch.vertical_edges.clear();
        scratch.band_ys.clear();
        for i in 0..n {
            let a = vertices[i];
            let b = vertices[(i + 1) % n];
            if a.x == b.x {
                scratch
                    .vertical_edges
                    .push((a.x, a.y.min(b.y), a.y.max(b.y)));
            }
            scratch.band_ys.push(a.y);
        }
        scratch.band_ys.sort_unstable();
        scratch.band_ys.dedup();
        for bi in 0..scratch.band_ys.len().saturating_sub(1) {
            let ya = scratch.band_ys[bi];
            let yb = scratch.band_ys[bi + 1];
            if yb <= wr.y0 || ya >= wr.y1 {
                continue;
            }
            // Crossing x positions: vertical edges spanning the whole band
            // (bands are minimal intervals between vertex ys, so an edge
            // either spans a band completely or misses it).
            scratch.crossings.clear();
            for &(x, ylo, yhi) in &scratch.vertical_edges {
                if ylo <= ya && yhi >= yb {
                    scratch.crossings.push(x);
                }
            }
            scratch.crossings.sort_unstable();
            for pair in scratch.crossings.chunks_exact(2) {
                self.fill_rect_coverage_in_on(
                    arch,
                    Rect::new(pair[0], ya, pair[1], yb),
                    value,
                    win,
                );
            }
        }
    }

    /// Smallest pixel window containing every non-zero sample, or `None`
    /// when the raster is all zero.
    pub fn nonzero_window(&self) -> Option<PixelWindow> {
        let mut win: Option<PixelWindow> = None;
        for iy in 0..self.height {
            let row = &self.data[iy * self.width..(iy + 1) * self.width];
            let first = match row.iter().position(|&v| v != 0.0) {
                Some(i) => i,
                None => continue,
            };
            let last = row
                .iter()
                .rposition(|&v| v != 0.0)
                .expect("row has a non-zero");
            win = Some(match win {
                Some(w) => PixelWindow {
                    x0: w.x0.min(first),
                    y0: w.y0,
                    x1: w.x1.max(last + 1),
                    y1: iy + 1,
                },
                None => PixelWindow {
                    x0: first,
                    y0: iy,
                    x1: last + 1,
                    y1: iy + 1,
                },
            });
        }
        win
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Maximum sample (0.0 for an empty raster).
    pub fn max(&self) -> f64 {
        self.data.iter().cloned().fold(f64::MIN, f64::max).max(0.0)
    }

    /// Number of samples strictly above `threshold`.
    pub fn count_above(&self, threshold: f64) -> usize {
        self.data.iter().filter(|&&v| v > threshold).count()
    }
}

/// One axis of the bilinear lookup: pixel-centre coordinates place sample
/// `i` at `origin + i·p + p/2`, so the interpolation cell for a point at
/// distance `d` from the origin starts at `floor(d/p - 1/2)`.
///
/// The index/fraction split is computed as an exact decomposition
/// `d - p/2 = i·p + frac`, `frac ∈ [0, p)`: all intermediate values stay on
/// a dyadic grid for layout-scale magnitudes, so the fraction (and therefore
/// the interpolated value) does not depend on where the raster origin sits —
/// only on the sample's position relative to the pixel grid. The naive
/// `(d/p - 0.5).floor()` formulation loses that invariance to division
/// rounding.
fn bilinear_axis(d: f64, pixel_size: Coord, n: usize) -> (usize, usize, f64) {
    let p = pixel_size as f64;
    let u = d - 0.5 * p;
    let mut i = (u / p).floor();
    let mut frac = u - i * p;
    // The floored quotient can be off by one ulp around integer boundaries;
    // renormalise so that `frac` is canonical in `[0, p)`.
    if frac < 0.0 {
        i -= 1.0;
        frac += p;
    } else if frac >= p {
        i += 1.0;
        frac -= p;
    }
    let last = n - 1;
    if i < 0.0 {
        // Clamp to the first pixel centre (nearest-edge extension).
        return (0, 1.min(last), 0.0);
    }
    if i >= last as f64 {
        return (last, last, 0.0);
    }
    let ix0 = i as usize;
    (ix0, (ix0 + 1).min(last), frac / p)
}

/// A half-open rectangle of pixel indices `[x0, x1) × [y0, y1)` on a
/// [`Raster`], used to restrict fills and convolutions to the region that
/// actually changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PixelWindow {
    /// First column.
    pub x0: usize,
    /// First row.
    pub y0: usize,
    /// One past the last column.
    pub x1: usize,
    /// One past the last row.
    pub y1: usize,
}

impl PixelWindow {
    /// Window width in pixels.
    pub fn width(&self) -> usize {
        self.x1 - self.x0
    }

    /// Window height in pixels.
    pub fn height(&self) -> usize {
        self.y1 - self.y0
    }

    /// Number of pixels covered.
    pub fn area(&self) -> usize {
        self.width() * self.height()
    }

    /// Window grown by `margin` pixels on every side, clamped to a
    /// `bounds_w × bounds_h` grid.
    pub fn expanded(&self, margin: usize, bounds_w: usize, bounds_h: usize) -> PixelWindow {
        PixelWindow {
            x0: self.x0.saturating_sub(margin),
            y0: self.y0.saturating_sub(margin),
            x1: (self.x1 + margin).min(bounds_w),
            y1: (self.y1 + margin).min(bounds_h),
        }
    }

    /// Smallest window containing both inputs.
    pub fn union(&self, other: &PixelWindow) -> PixelWindow {
        PixelWindow {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }
}

/// Reusable scratch buffers for [`Raster::fill_polygon_coverage_in`]. Keeping
/// them outside the raster lets one scratch serve many fills without heap
/// allocation in the steady state.
#[derive(Debug, Clone, Default)]
pub struct CoverageScratch {
    vertical_edges: Vec<(Coord, Coord, Coord)>,
    band_ys: Vec<Coord>,
    crossings: Vec<Coord>,
}

impl CoverageScratch {
    /// Pre-allocates capacity for polygons with up to `max_vertices`
    /// vertices, so later fills never allocate.
    pub fn with_capacity(max_vertices: usize) -> Self {
        Self {
            vertical_edges: Vec::with_capacity(max_vertices),
            band_ys: Vec::with_capacity(max_vertices),
            crossings: Vec::with_capacity(max_vertices),
        }
    }

    /// Heap memory retained by the scratch buffers, in bytes (capacities).
    pub fn heap_bytes(&self) -> usize {
        self.vertical_edges.capacity() * std::mem::size_of::<(Coord, Coord, Coord)>()
            + (self.band_ys.capacity() + self.crossings.capacity()) * std::mem::size_of::<Coord>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raster_dimensions_round_up() {
        let r = Raster::new(Rect::new(0, 0, 205, 100), 10);
        assert_eq!(r.width(), 21);
        assert_eq!(r.height(), 10);
        assert_eq!(r.region().width(), 210);
    }

    #[test]
    fn fill_rect_covers_expected_pixels() {
        let mut r = Raster::new(Rect::new(0, 0, 100, 100), 10);
        r.fill_rect(Rect::new(20, 20, 50, 40), 1.0);
        // Pixels with centres at x in {25, 35, 45} and y in {25, 35}: 3x2.
        assert_eq!(r.count_above(0.5), 6);
        assert_eq!(r.sample(Point::new(26, 26)), 1.0);
        assert_eq!(r.sample(Point::new(55, 26)), 0.0);
    }

    #[test]
    fn fill_polygon_matches_fill_rect_for_rectangles() {
        let rect = Rect::new(10, 20, 80, 70);
        let mut a = Raster::new(Rect::new(0, 0, 100, 100), 5);
        let mut b = a.clone();
        a.fill_rect(rect, 1.0);
        b.fill_polygon(&rect.to_polygon(), 1.0);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn fill_polygon_handles_l_shape() {
        let l = Polygon::l_shape(Rect::new(0, 0, 100, 100), 50, 50);
        let mut r = Raster::new(Rect::new(0, 0, 100, 100), 1);
        r.fill_polygon(&l, 1.0);
        let filled = r.count_above(0.5) as i64;
        assert_eq!(filled, l.area());
    }

    #[test]
    fn bilinear_sampling_interpolates() {
        let mut r = Raster::new(Rect::new(0, 0, 20, 20), 10);
        r.set(0, 0, 0.0);
        r.set(1, 0, 1.0);
        r.set(0, 1, 0.0);
        r.set(1, 1, 1.0);
        let mid = r.sample_bilinear(10.0, 10.0);
        assert!((mid - 0.5).abs() < 1e-9, "expected 0.5, got {mid}");
    }

    #[test]
    fn pixel_lookup_roundtrip() {
        let r = Raster::new(Rect::new(100, 200, 300, 400), 4);
        let c = r.pixel_center(3, 5);
        assert_eq!(r.pixel_at(c), Some((3, 5)));
        assert_eq!(r.pixel_at(Point::new(0, 0)), None);
    }

    #[test]
    fn downsampling_preserves_mean_coverage() {
        let mut fine = Raster::new(Rect::new(0, 0, 100, 100), 1);
        fine.fill_rect(Rect::new(0, 0, 37, 100), 1.0);
        let coarse = fine.downsampled(10);
        assert_eq!(coarse.width(), 10);
        assert_eq!(coarse.pixel_size(), 10);
        // Total coverage is preserved up to the constant factor.
        assert!((coarse.sum() * 100.0 - fine.sum()).abs() < 1e-9);
        // The partially covered column has fractional coverage.
        let partial = coarse.get(3, 5);
        assert!(
            partial > 0.0 && partial < 1.0,
            "expected fractional coverage, got {partial}"
        );
    }

    #[test]
    fn downsample_factor_one_is_identity() {
        let mut r = Raster::new(Rect::new(0, 0, 20, 20), 2);
        r.fill_rect(Rect::new(0, 0, 10, 10), 1.0);
        assert_eq!(r.downsampled(1), r);
    }

    #[test]
    fn rect_coverage_matches_fine_grid_downsample() {
        // The analytic path must reproduce the 1 nm fill + box downsample
        // exactly (both compute the covered area of each pixel square).
        let rect = Rect::new(13, 27, 88, 61);
        let mut fine = Raster::new(Rect::new(0, 0, 100, 100), 1);
        fine.fill_rect(rect, 1.0);
        let reference = fine.downsampled(5);
        let mut analytic = Raster::new(Rect::new(0, 0, 100, 100), 5);
        let win = analytic.full_window();
        analytic.fill_rect_coverage_in(rect, 1.0, win);
        for (a, b) in analytic.data().iter().zip(reference.data()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn polygon_coverage_matches_fine_grid_downsample() {
        let l = Polygon::l_shape(Rect::new(7, 3, 93, 77), 31, 24);
        let mut fine = Raster::new(Rect::new(0, 0, 100, 100), 1);
        fine.fill_polygon(&l, 1.0);
        let reference = fine.downsampled(5);
        let mut analytic = Raster::new(Rect::new(0, 0, 100, 100), 5);
        let win = analytic.full_window();
        let mut scratch = CoverageScratch::default();
        analytic.fill_polygon_coverage_in(l.vertices(), 1.0, win, &mut scratch);
        for (a, b) in analytic.data().iter().zip(reference.data()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        // Total coverage equals the exact polygon area.
        assert!((analytic.sum() * 25.0 - l.area() as f64).abs() < 1e-9);
    }

    #[test]
    fn windowed_fill_only_touches_the_window() {
        let rect = Rect::new(0, 0, 100, 100);
        let mut r = Raster::new(rect, 10);
        let win = PixelWindow {
            x0: 2,
            y0: 3,
            x1: 5,
            y1: 6,
        };
        r.fill_rect_coverage_in(rect, 1.0, win);
        for iy in 0..r.height() {
            for ix in 0..r.width() {
                let inside = (win.x0..win.x1).contains(&ix) && (win.y0..win.y1).contains(&iy);
                assert_eq!(r.get(ix, iy) != 0.0, inside, "pixel ({ix},{iy})");
            }
        }
        r.zero_window(win);
        assert_eq!(r.sum(), 0.0);
    }

    #[test]
    fn pixel_window_snaps_outward_and_clamps() {
        let r = Raster::new(Rect::new(0, 0, 100, 100), 10);
        let w = r.pixel_window(Rect::new(11, 19, 30, 41)).expect("window");
        assert_eq!(
            w,
            PixelWindow {
                x0: 1,
                y0: 1,
                x1: 3,
                y1: 5
            }
        );
        assert_eq!(r.window_region(w), Rect::new(10, 10, 30, 50));
        assert_eq!(r.pixel_window(Rect::new(-50, -50, -10, -10)), None);
        assert_eq!(r.pixel_window(Rect::new(200, 200, 300, 300)), None);
        let clamped = r.pixel_window(Rect::new(95, 95, 300, 300)).expect("window");
        assert_eq!(
            clamped,
            PixelWindow {
                x0: 9,
                y0: 9,
                x1: 10,
                y1: 10
            }
        );
    }

    #[test]
    fn nonzero_window_bounds_content() {
        let mut r = Raster::new(Rect::new(0, 0, 100, 100), 10);
        assert_eq!(r.nonzero_window(), None);
        r.set(3, 2, 0.5);
        r.set(7, 8, 0.1);
        assert_eq!(
            r.nonzero_window(),
            Some(PixelWindow {
                x0: 3,
                y0: 2,
                x1: 8,
                y1: 9
            })
        );
    }

    #[test]
    fn pixel_window_ops() {
        let a = PixelWindow {
            x0: 2,
            y0: 2,
            x1: 4,
            y1: 5,
        };
        assert_eq!(a.width(), 2);
        assert_eq!(a.height(), 3);
        assert_eq!(a.area(), 6);
        let b = PixelWindow {
            x0: 0,
            y0: 4,
            x1: 3,
            y1: 6,
        };
        assert_eq!(
            a.union(&b),
            PixelWindow {
                x0: 0,
                y0: 2,
                x1: 4,
                y1: 6
            }
        );
        assert_eq!(
            a.expanded(3, 6, 6),
            PixelWindow {
                x0: 0,
                y0: 0,
                x1: 6,
                y1: 6
            }
        );
    }

    #[test]
    fn bilinear_sampling_is_invariant_under_grid_aligned_origins() {
        // Two rasters whose pixel grids coincide must sample bit-identically
        // at the same absolute location — the contract layout tiling builds
        // its bit-exact stitching on.
        let mut wide = Raster::new(Rect::new(-190, -190, 3195, 3195), 5);
        for iy in 0..wide.height() {
            for ix in 0..wide.width() {
                let v = ((ix * 31 + iy * 17) % 97) as f64 / 97.0;
                wide.set(ix, iy, v);
            }
        }
        let mut narrow = Raster::new(Rect::new(810, 1005, 2310, 2505), 5);
        for iy in 0..narrow.height() {
            for ix in 0..narrow.width() {
                let c = narrow.pixel_center(ix, iy);
                narrow.set(ix, iy, wide.sample(c));
            }
        }
        // Positions on the 0.5 nm lattice EPE measurement walks, well inside
        // the narrow raster so no edge clamping triggers.
        for k in 0..200 {
            let x = 1200.0 + k as f64 * 3.5;
            let y = 1300.0 + (k % 37) as f64 * 10.5;
            let a = wide.sample_bilinear(x, y);
            let b = narrow.sample_bilinear(x, y);
            assert!(
                a.to_bits() == b.to_bits(),
                "sample at ({x}, {y}) depends on the origin: {a} vs {b}"
            );
        }
    }

    #[test]
    fn bilinear_sampling_clamps_to_edges() {
        let mut r = Raster::new(Rect::new(0, 0, 30, 30), 10);
        for iy in 0..3 {
            for ix in 0..3 {
                r.set(ix, iy, (iy * 3 + ix) as f64);
            }
        }
        // Far outside: nearest corner values.
        assert_eq!(r.sample_bilinear(-100.0, -100.0), 0.0);
        assert_eq!(r.sample_bilinear(100.0, 100.0), 8.0);
        // Interior midpoint interpolates all four neighbours.
        let mid = r.sample_bilinear(10.0, 10.0);
        assert!((mid - 2.0).abs() < 1e-12, "expected 2.0, got {mid}");
    }

    #[test]
    fn reshape_reuses_allocation_and_zero_fills() {
        let mut r = Raster::new(Rect::new(0, 0, 100, 100), 10);
        r.fill_rect(Rect::new(0, 0, 100, 100), 1.0);
        let ptr = r.data().as_ptr();
        r.reshape(Rect::new(200, 300, 245, 335), 5);
        assert_eq!(r.origin(), Point::new(200, 300));
        assert_eq!(r.pixel_size(), 5);
        assert_eq!(r.width(), 9);
        assert_eq!(r.height(), 7);
        assert!(r.data().iter().all(|&v| v == 0.0), "reshape must zero-fill");
        assert_eq!(ptr, r.data().as_ptr(), "smaller reshape must not realloc");
        assert_eq!(r, Raster::new(Rect::new(200, 300, 245, 335), 5));
    }

    #[test]
    fn reshape_scratch_keeps_geometry_but_not_values() {
        let mut r = Raster::new(Rect::new(0, 0, 100, 100), 10);
        r.fill_rect(Rect::new(0, 0, 100, 100), 1.0);
        r.reshape_scratch(Rect::new(50, 50, 90, 90), 10);
        // Geometry matches a fresh raster; values are unspecified (here the
        // stale 1.0s survive, which is the point of the fast path).
        let fresh = Raster::new(Rect::new(50, 50, 90, 90), 10);
        assert_eq!(r.origin(), fresh.origin());
        assert_eq!((r.width(), r.height()), (fresh.width(), fresh.height()));
        assert_eq!(r.data().len(), fresh.data().len());
    }

    #[test]
    fn clamp_and_stats() {
        let mut r = Raster::new(Rect::new(0, 0, 10, 10), 1);
        r.fill_rect(Rect::new(0, 0, 10, 10), 2.0);
        assert!((r.max() - 2.0).abs() < 1e-12);
        r.clamp_values(0.0, 1.0);
        assert!((r.max() - 1.0).abs() < 1e-12);
        assert!((r.sum() - 100.0).abs() < 1e-9);
    }
}
