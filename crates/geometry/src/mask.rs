//! Mask state: a target clip plus per-segment offsets.
//!
//! The OPC engines in this workspace never edit polygons directly; they move
//! boundary segments by integer-nanometre offsets. [`MaskState`] owns the
//! offsets and reconstructs concrete mask polygons on demand, so the mask is
//! always a well-formed rectilinear layout derived from the target.

use crate::point::{Coord, Point};
use crate::polygon::Polygon;
use crate::rect::Rect;
use crate::segment::{FragmentationParams, Fragments, Orientation};
use crate::Clip;

/// Default clamp on the absolute per-segment offset, nm.
pub const DEFAULT_MAX_OFFSET: Coord = 20;

/// The evolving mask of one clip: the target plus a signed offset per segment.
///
/// Positive offsets move a segment along its outward normal (the mask grows),
/// negative offsets move it inward (the mask shrinks). SRAFs from the clip
/// are carried along unchanged.
///
/// # Invariants
///
/// Fragmentation produces exactly one EPE measure point per segment, so
/// `fragments().measure_points.len() == segment_count()` always holds and
/// measure point `i` belongs to segment `i`. Consumers that index per-point
/// EPE by segment id (the CAMO engine, the baselines) rely on this.
#[derive(Debug, Clone, PartialEq)]
pub struct MaskState {
    clip: Clip,
    fragments: Fragments,
    offsets: Vec<Coord>,
    max_offset: Coord,
}

impl MaskState {
    /// Creates a mask with all offsets zero.
    pub fn new(clip: Clip, fragments: Fragments) -> Self {
        let n = fragments.segments.len();
        Self {
            clip,
            fragments,
            offsets: vec![0; n],
            max_offset: DEFAULT_MAX_OFFSET,
        }
    }

    /// Convenience constructor: fragments the clip and builds the mask.
    pub fn from_clip(clip: &Clip, params: &FragmentationParams) -> Self {
        Self::new(clip.clone(), clip.fragment(params))
    }

    /// The underlying target clip.
    pub fn clip(&self) -> &Clip {
        &self.clip
    }

    /// The fragmentation this mask is built on.
    pub fn fragments(&self) -> &Fragments {
        &self.fragments
    }

    /// Current per-segment offsets, indexed by segment id.
    pub fn offsets(&self) -> &[Coord] {
        &self.offsets
    }

    /// Number of movable segments.
    pub fn segment_count(&self) -> usize {
        self.offsets.len()
    }

    /// The symmetric clamp applied to every offset, nm.
    pub fn max_offset(&self) -> Coord {
        self.max_offset
    }

    /// Sets the symmetric offset clamp (must be positive).
    ///
    /// # Panics
    ///
    /// Panics if `max_offset <= 0`.
    pub fn set_max_offset(&mut self, max_offset: Coord) {
        assert!(max_offset > 0, "max_offset must be positive");
        self.max_offset = max_offset;
        for o in &mut self.offsets {
            *o = (*o).clamp(-max_offset, max_offset);
        }
    }

    /// Adds `delta` nm to the offset of segment `id`, clamping to the
    /// configured maximum.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn move_segment(&mut self, id: usize, delta: Coord) {
        let o = &mut self.offsets[id];
        *o = (*o + delta).clamp(-self.max_offset, self.max_offset);
    }

    /// Applies one movement per segment (`moves.len()` must equal
    /// [`Self::segment_count`]) and returns the *dirty rectangle*: a region
    /// in nm guaranteed to contain every point where the mask geometry
    /// changed, or `None` when no offset actually changed (all movements
    /// were zero or swallowed by the clamp).
    ///
    /// The rectangle is conservative: each moved segment contributes its
    /// target-boundary extent grown by `max_offset() + 1` nm on every side,
    /// which covers the swept edge and the jogs shared with its neighbours.
    /// Incremental evaluators re-simulate only this region.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn apply_moves(&mut self, moves: &[Coord]) -> Option<Rect> {
        assert_eq!(
            moves.len(),
            self.offsets.len(),
            "one movement per segment is required"
        );
        let mut dirty: Option<Rect> = None;
        for (id, &m) in moves.iter().enumerate() {
            let before = self.offsets[id];
            self.move_segment(id, m);
            if self.offsets[id] != before {
                let r = self.segment_dirty_rect(id);
                dirty = Some(match dirty {
                    Some(acc) => acc.union(&r),
                    None => r,
                });
            }
        }
        dirty
    }

    /// [`Self::apply_moves`], additionally pushing every moved segment's
    /// individual refresh rectangle ([`Self::segment_refresh_rect`]) into
    /// `rects` (cleared first, capacity reused). The union of `rects` equals
    /// the returned rectangle; sparse incremental evaluators re-rasterise the
    /// per-segment rects and skip unchanged spans inside the union, staying
    /// bit-identical to a from-scratch rasterisation.
    ///
    /// # Panics
    ///
    /// Panics if `moves.len()` differs from [`Self::segment_count`].
    pub fn apply_moves_into(&mut self, moves: &[Coord], rects: &mut Vec<Rect>) -> Option<Rect> {
        assert_eq!(
            moves.len(),
            self.offsets.len(),
            "one movement per segment is required"
        );
        rects.clear();
        let mut dirty: Option<Rect> = None;
        for (id, &m) in moves.iter().enumerate() {
            let before = self.offsets[id];
            self.move_segment(id, m);
            if self.offsets[id] != before {
                let r = self.segment_refresh_rect(id);
                rects.push(r);
                dirty = Some(match dirty {
                    Some(acc) => acc.union(&r),
                    None => r,
                });
            }
        }
        dirty
    }

    /// Conservative bound on the geometry affected by moving segment `id`:
    /// the segment's target extent grown by the offset clamp plus one.
    fn segment_dirty_rect(&self, id: usize) -> Rect {
        let s = &self.fragments.segments[id];
        Rect::new(s.start.x, s.start.y, s.end.x, s.end.y).expanded(self.max_offset + 1)
    }

    /// Conservative bound on the raster pixels whose *coverage values can
    /// change at the bit level* when segment `id` moves.
    ///
    /// For vertical segments this is the segment's dirty extent. For
    /// horizontal segments the rows extend across the whole polygon: the
    /// scanline bands used by coverage fills are delimited by every vertex
    /// y-coordinate of the polygon, so moving a horizontal edge regroups the
    /// per-pixel contribution sums of every pixel row containing its old or
    /// new position, polygon-wide — the totals are mathematically unchanged
    /// away from the edge, but the floating-point sums can round differently.
    /// Incremental evaluators that promise bit-identity to a from-scratch
    /// rasterisation must re-rasterise this whole rect.
    pub fn segment_refresh_rect(&self, id: usize) -> Rect {
        let r = self.segment_dirty_rect(id);
        let s = &self.fragments.segments[id];
        if s.orientation() == Orientation::Horizontal {
            let bb = self.clip.targets()[s.polygon]
                .bounding_box()
                .expanded(self.max_offset + 1);
            Rect::new(bb.x0, r.y0, bb.x1, r.y1)
        } else {
            r
        }
    }

    /// Moves every segment outward by `bias` nm — the paper's mask
    /// initialisation ("moving each edge outwards for 3 nm").
    pub fn apply_uniform_bias(&mut self, bias: Coord) {
        for id in 0..self.offsets.len() {
            self.move_segment(id, bias);
        }
    }

    /// Resets all offsets to zero.
    pub fn reset(&mut self) {
        for o in &mut self.offsets {
            *o = 0;
        }
    }

    /// Reconstructs the concrete mask polygons (one per target polygon) from
    /// the current offsets.
    pub fn mask_polygons(&self) -> Vec<Polygon> {
        (0..self.clip.targets().len())
            .map(|poly_idx| self.moved_polygon(poly_idx))
            .collect()
    }

    /// All mask geometry as rectangles is not generally possible for moved
    /// polygons; this returns the SRAF rectangles carried by the mask.
    pub fn sraf_rects(&self) -> &[Rect] {
        self.clip.srafs()
    }

    /// Writes the vertex loop of one moved polygon into `out` (cleared
    /// first). This is the allocation-free core of [`Self::mask_polygons`]:
    /// incremental evaluators call it with reusable buffers so the
    /// steady-state rasterisation path never touches the heap.
    ///
    /// The produced loop is in boundary order (counter-clockwise for valid
    /// masks) but is *not* validated as a [`Polygon`]; rasterisation only
    /// needs the raw loop.
    ///
    /// # Panics
    ///
    /// Panics if the polygon has no segments.
    pub fn moved_polygon_vertices(&self, poly_idx: usize, out: &mut Vec<Point>) {
        out.clear();
        // Segments of one polygon are contiguous in fragmentation order.
        let segs = &self.fragments.segments;
        let start = segs
            .iter()
            .position(|s| s.polygon == poly_idx)
            .unwrap_or_else(|| panic!("polygon {poly_idx} has no segments"));
        let mut end = start;
        while end < segs.len() && segs[end].polygon == poly_idx {
            end += 1;
        }
        let n = end - start;
        let shifted = |k: usize| -> (Point, Point, Orientation) {
            let s = &segs[start + k];
            let v = s.outward.unit().scaled(self.offsets[s.id]);
            (s.start + v, s.end + v, s.orientation())
        };
        for i in 0..n {
            let (s_i, e_i, o_i) = shifted(i);
            let (s_next, _, o_next) = shifted((i + 1) % n);
            if out.last() != Some(&s_i) {
                out.push(s_i);
            }
            if o_i == o_next {
                // Same orientation: connect with a perpendicular jog (or
                // nothing when the offsets match).
                if out.last() != Some(&e_i) {
                    out.push(e_i);
                }
            } else {
                // Corner: the new corner is the intersection of the two
                // shifted edge lines.
                let corner = match o_i {
                    Orientation::Horizontal => Point::new(s_next.x, e_i.y),
                    Orientation::Vertical => Point::new(e_i.x, s_next.y),
                };
                if out.last() != Some(&corner) {
                    out.push(corner);
                }
            }
        }
        // Close the loop: drop a trailing vertex equal to the first.
        while out.len() > 1 && out.first() == out.last() {
            out.pop();
        }
        // Remove any consecutive duplicates that survived.
        out.dedup();
    }

    /// Reconstructs one moved polygon from the target polygon and the offsets
    /// of its segments.
    fn moved_polygon(&self, poly_idx: usize) -> Polygon {
        let mut vertices = Vec::new();
        self.moved_polygon_vertices(poly_idx, &mut vertices);
        Polygon::new(vertices).normalized()
    }

    /// Bounding box of all mask geometry (moved polygons plus SRAFs).
    pub fn mask_bounding_box(&self) -> Rect {
        let mut bbox: Option<Rect> = None;
        for p in self.mask_polygons() {
            let b = p.bounding_box();
            bbox = Some(match bbox {
                Some(acc) => acc.union(&b),
                None => b,
            });
        }
        for s in self.clip.srafs() {
            bbox = Some(match bbox {
                Some(acc) => acc.union(s),
                None => *s,
            });
        }
        bbox.unwrap_or_else(|| self.clip.region())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::FragmentationParams;

    fn via_mask() -> MaskState {
        let mut clip = Clip::new(Rect::new(0, 0, 2000, 2000));
        clip.add_target(Rect::new(1000, 1000, 1070, 1070).to_polygon());
        MaskState::from_clip(&clip, &FragmentationParams::via_layer())
    }

    #[test]
    fn zero_offsets_reproduce_target() {
        let mask = via_mask();
        let polys = mask.mask_polygons();
        assert_eq!(polys.len(), 1);
        assert_eq!(polys[0].area(), 70 * 70);
        assert_eq!(polys[0].bounding_box(), Rect::new(1000, 1000, 1070, 1070));
    }

    #[test]
    fn uniform_outward_bias_grows_square() {
        let mut mask = via_mask();
        mask.apply_uniform_bias(3);
        let polys = mask.mask_polygons();
        assert_eq!(polys[0].bounding_box(), Rect::new(997, 997, 1073, 1073));
        assert_eq!(polys[0].area(), 76 * 76);
    }

    #[test]
    fn uniform_inward_bias_shrinks_square() {
        let mut mask = via_mask();
        mask.apply_uniform_bias(-5);
        assert_eq!(mask.mask_polygons()[0].area(), 60 * 60);
    }

    #[test]
    fn single_segment_move_creates_valid_polygon() {
        let mut mask = via_mask();
        // Move only one edge outward by 2 nm.
        mask.move_segment(0, 2);
        let p = &mask.mask_polygons()[0];
        assert!(p.is_counter_clockwise());
        assert_eq!(p.area(), 70 * 72);
    }

    #[test]
    fn offsets_are_clamped() {
        let mut mask = via_mask();
        mask.set_max_offset(4);
        for _ in 0..10 {
            mask.move_segment(0, 2);
        }
        assert_eq!(mask.offsets()[0], 4);
        for _ in 0..10 {
            mask.move_segment(0, -2);
        }
        assert_eq!(mask.offsets()[0], -4);
    }

    #[test]
    fn metal_wire_jog_reconstruction() {
        // A 300x50 wire with staggered offsets on the bottom edge must yield
        // a valid rectilinear polygon with jogs.
        let mut clip = Clip::new(Rect::new(0, 0, 1500, 1500));
        clip.add_target(Rect::new(100, 100, 400, 150).to_polygon());
        let mut mask = MaskState::from_clip(&clip, &FragmentationParams::metal_layer());
        let n = mask.segment_count();
        let moves: Vec<Coord> = (0..n).map(|i| if i % 2 == 0 { 2 } else { -1 }).collect();
        mask.apply_moves(&moves);
        let p = &mask.mask_polygons()[0];
        assert!(p.is_counter_clockwise());
        assert!(p.area() > 0);
        // Every edge must remain axis-parallel (enforced by Polygon::new) and
        // the area stays within the plausible envelope.
        let base = 300 * 50;
        assert!((p.area() - base).abs() < base / 4);
    }

    #[test]
    fn reset_restores_target() {
        let mut mask = via_mask();
        mask.apply_uniform_bias(3);
        mask.reset();
        assert_eq!(mask.mask_polygons()[0].area(), 70 * 70);
        assert!(mask.offsets().iter().all(|&o| o == 0));
    }

    #[test]
    #[should_panic(expected = "one movement per segment")]
    fn apply_moves_validates_length() {
        let mut mask = via_mask();
        mask.apply_moves(&[1, 2]);
    }

    #[test]
    fn apply_moves_reports_dirty_rect() {
        let mut mask = via_mask();
        let n = mask.segment_count();
        // No-op moves: nothing is dirty.
        assert_eq!(mask.apply_moves(&vec![0; n]), None);
        // Clamped-away moves are also clean.
        mask.set_max_offset(2);
        mask.apply_uniform_bias(2);
        assert_eq!(mask.apply_moves(&vec![2; n]), None);
        // A real move dirties a region covering the moved geometry.
        mask.reset();
        let mut moves = vec![0; n];
        moves[0] = 2;
        let dirty = mask.apply_moves(&moves).expect("dirty rect");
        let seg = &mask.fragments().segments[0];
        let seg_box = Rect::new(seg.start.x, seg.start.y, seg.end.x, seg.end.y);
        assert!(dirty.contains_rect(&seg_box.expanded(2)));
        // And the dirty rect stays local: far corners of the clip are clean.
        assert!(!dirty.contains_point(Point::new(0, 0)));
    }

    #[test]
    fn moved_polygon_vertices_match_polygon_api() {
        let mut mask = via_mask();
        mask.move_segment(0, 2);
        mask.move_segment(2, -1);
        let mut buf = Vec::new();
        mask.moved_polygon_vertices(0, &mut buf);
        let poly = &mask.mask_polygons()[0];
        assert_eq!(buf.len(), poly.vertices().len());
        // Same loop up to orientation/rotation: compare as vertex sets.
        let mut a = buf.clone();
        let mut b = poly.vertices().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
