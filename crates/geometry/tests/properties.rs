//! Property-based tests of the geometry substrate's core invariants.

use camo_geometry::{
    fragment_polygon, Clip, FragmentationParams, MaskState, Point, Polygon, Rect, SquishPattern,
};
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0i64..500, 0i64..500, 20i64..300, 20i64..300)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rectangle area equals the area of its polygon, and the polygon is CCW.
    #[test]
    fn rect_polygon_roundtrip(rect in arb_rect()) {
        let poly = rect.to_polygon();
        prop_assert_eq!(poly.area(), rect.area());
        prop_assert!(poly.is_counter_clockwise());
        prop_assert_eq!(poly.bounding_box(), rect);
        prop_assert_eq!(poly.perimeter(), 2 * (rect.width() + rect.height()));
    }

    /// Intersection is commutative and contained in both operands.
    #[test]
    fn rect_intersection_properties(a in arb_rect(), b in arb_rect()) {
        let ab = a.intersection(&b);
        let ba = b.intersection(&a);
        prop_assert_eq!(ab, ba);
        if let Some(i) = ab {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
            prop_assert!(i.area() <= a.area().min(b.area()));
        }
        // Union always contains both.
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a) && u.contains_rect(&b));
    }

    /// Fragmentation covers every edge exactly, regardless of edge length.
    #[test]
    fn fragmentation_covers_boundary(rect in arb_rect()) {
        let poly = rect.to_polygon();
        let frags = fragment_polygon(&poly, 0, &FragmentationParams::metal_layer());
        let total: i64 = frags.segments.iter().map(|s| s.length()).sum();
        prop_assert_eq!(total, poly.perimeter());
        // One measure point per segment, located at the control point.
        prop_assert_eq!(frags.measure_points.len(), frags.segments.len());
        for (mp, seg) in frags.measure_points.iter().zip(&frags.segments) {
            prop_assert_eq!(mp.location, seg.control_point());
        }
    }

    /// Moving segments and resetting always reproduces the target polygon,
    /// and any sequence of bounded moves keeps the mask polygon valid.
    #[test]
    fn mask_moves_keep_polygons_valid(
        rect in arb_rect(),
        moves in prop::collection::vec(-2i64..=2, 1..40),
    ) {
        let mut clip = Clip::new(Rect::new(-50, -50, 900, 900));
        clip.add_target(rect.to_polygon());
        let mut mask = MaskState::from_clip(&clip, &FragmentationParams::via_layer());
        let n = mask.segment_count();
        for (i, &m) in moves.iter().enumerate() {
            mask.move_segment(i % n, m);
        }
        for poly in mask.mask_polygons() {
            prop_assert!(poly.area() > 0);
            prop_assert!(poly.is_counter_clockwise());
        }
        mask.reset();
        prop_assert_eq!(mask.mask_polygons()[0].area(), rect.area());
    }

    /// The squish pattern always reproduces the covered area of the encoded
    /// geometry when the geometry lies inside the window.
    #[test]
    fn squish_preserves_covered_area(x in 50i64..300, y in 50i64..300, w in 10i64..100, h in 10i64..100) {
        let window = Rect::new(0, 0, 500, 500);
        let rect = Rect::new(x, y, (x + w).min(499), (y + h).min(499));
        let sp = SquishPattern::encode(window, &[rect.to_polygon()], &[], &[], &[]);
        prop_assert_eq!(sp.covered_area(), rect.area());
        prop_assert_eq!(sp.window_area(), 500 * 500);
        // Occupancy values are binary.
        prop_assert!(sp.matrix.iter().all(|&v| v == 0.0 || v == 1.0));
    }

    /// Point containment of a rectangle's polygon matches the rectangle's own
    /// containment test.
    #[test]
    fn polygon_containment_matches_rect(rect in arb_rect(), px in -10i64..600, py in -10i64..600) {
        let poly: Polygon = rect.to_polygon();
        let p = Point::new(px, py);
        prop_assert_eq!(poly.contains_point(p), rect.contains_point(p));
    }

    /// The analytic coverage rasterizer reproduces the 1 nm fine-grid fill +
    /// box downsample on random rectilinear polygons (rectangles moved into
    /// arbitrary jogged shapes by random segment offsets) within 1e-9.
    #[test]
    fn analytic_coverage_matches_fine_grid(
        rect in arb_rect(),
        moves in prop::collection::vec(-20i64..=20, 1..40),
        // Pixel sizes dividing the 680 nm region, so both paths cover the
        // exact same area (production regions are always pixel-aligned: the
        // guard band is a pixel multiple and clip sizes divide the pixel).
        pixel in (0usize..4).prop_map(|i| [4usize, 5, 8, 10][i]),
    ) {
        let mut clip = Clip::new(Rect::new(-60, -60, 900, 900));
        clip.add_target(rect.to_polygon());
        let mut mask = MaskState::from_clip(&clip, &FragmentationParams::metal_layer());
        let n = mask.segment_count();
        for (i, &m) in moves.iter().enumerate() {
            mask.move_segment(i % n, m);
        }
        let poly = mask.mask_polygons().remove(0);
        let region = Rect::new(-60, -60, 620, 620);

        let mut fine = camo_geometry::Raster::new(region, 1);
        fine.fill_polygon(&poly, 1.0);
        let reference = fine.downsampled(pixel);

        let mut analytic = camo_geometry::Raster::new(region, pixel as i64);
        let win = analytic.full_window();
        let mut scratch = camo_geometry::CoverageScratch::default();
        let mut verts = Vec::new();
        mask.moved_polygon_vertices(0, &mut verts);
        analytic.fill_polygon_coverage_in(&verts, 1.0, win, &mut scratch);

        prop_assert_eq!(analytic.width(), reference.width());
        prop_assert_eq!(analytic.height(), reference.height());
        for (i, (a, b)) in analytic.data().iter().zip(reference.data()).enumerate() {
            prop_assert!((a - b).abs() < 1e-9, "pixel {}: {} vs {}", i, a, b);
        }
    }
}
