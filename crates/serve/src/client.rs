//! The blocking client: framed send/receive plus request-id correlation.
//!
//! Responses stream back in **completion order**, not submission order — a
//! coalesced batch may finish before an earlier expensive request, and
//! sweep cases arrive as separate frames. [`ResponseRouter`] reassembles
//! that stream: every response is filed under its request id, and a request
//! is *complete* once its single result arrived (optimize / evaluate /
//! layout / busy / error / shutting-down) or every sweep case index
//! `0..total` is present. The out-of-order correlation tests in
//! `tests/wire_properties.rs` drive the router directly with scrambled
//! streams.

use crate::wire::{
    decode_response, decode_response_v2, encode_request, encode_request_v2, read_frame,
    read_frame_v2, Frame, FrameV2, Request, RequestBody, Response, ResponseBody, WireError,
    WireVersion,
};
use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Cap on the busy-retry backoff, milliseconds ([`busy_backoff`]).
pub const BUSY_BACKOFF_CAP_MS: u64 = 2_000;

/// The client-side retry schedule for `busy` rejections: the server's
/// `retry_after_ms` hint doubled per attempt (capped at
/// [`BUSY_BACKOFF_CAP_MS`]) plus a deterministic per-client jitter of up to
/// a quarter of the base.
///
/// Sleeping the hint verbatim synchronises every rejected client: they all
/// come back in the same instant and collide with the same full queue
/// again. Exponential growth spaces the attempts of one client; the jitter
/// decorrelates different clients (seed their workload seed) — while
/// staying a pure function of `(hint, attempt, seed)` so load-generator
/// runs remain reproducible.
pub fn busy_backoff(retry_after_ms: u64, attempt: u32, seed: u64) -> Duration {
    let hint = retry_after_ms.max(1);
    let base = hint
        .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
        .min(BUSY_BACKOFF_CAP_MS);
    let span = base / 4;
    let jitter = if span == 0 {
        0
    } else {
        mix64(seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15)) % (span + 1)
    };
    Duration::from_millis(base + jitter)
}

/// SplitMix64 finaliser — the jitter source (vendored; offline build).
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Client-side failure: transport or codec.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The peer sent a frame that does not decode.
    Wire(WireError),
    /// The peer violated the correlation protocol (duplicate case index,
    /// response for an unknown id, inconsistent totals).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::Wire(e) => write!(f, "wire error: {e}"),
            Self::Protocol(what) => write!(f, "protocol error: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

/// A blocking connection to a serve process.
pub struct Client {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
    next_id: u64,
    wire: WireVersion,
}

impl Client {
    /// Connects to `addr` speaking wire v1 (every server understands it).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let read_half = stream.try_clone()?;
        Ok(Self {
            writer: BufWriter::new(stream),
            reader: BufReader::new(read_half),
            next_id: 1,
            wire: WireVersion::V1,
        })
    }

    /// Connects and, for [`WireVersion::V2`], attempts the `hello` upgrade.
    /// A refused handshake (a v1-only peer) is not an error: the client
    /// simply keeps speaking v1, and [`Self::wire`] reports what was
    /// actually negotiated.
    pub fn connect_with(addr: impl ToSocketAddrs, wire: WireVersion) -> Result<Self, ClientError> {
        let mut client = Self::connect(addr)?;
        if wire == WireVersion::V2 {
            client.upgrade()?;
        }
        Ok(client)
    }

    /// The wire version this connection currently speaks.
    pub fn wire(&self) -> WireVersion {
        self.wire
    }

    /// Sends the v1 `hello` handshake and waits for the verdict. On
    /// `hello_ack` the connection switches to the v2 binary framing; on any
    /// other reply (a v1-only or version-refusing peer) it stays v1. Only a
    /// transport/codec failure is an error.
    fn upgrade(&mut self) -> Result<(), ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send_request(&Request {
            id,
            body: RequestBody::Hello { version: 2 },
            trace: None,
        })?;
        match self.recv()? {
            Some(Response {
                id: ack_id,
                body: ResponseBody::HelloAck { .. },
            }) if ack_id == id => {
                self.wire = WireVersion::V2;
                Ok(())
            }
            // Refusal (typically a typed `bad_request`) or EOF: fall back.
            // `hello` is this connection's only in-flight request, so the
            // reply — whatever it is — can only concern the handshake.
            _ => Ok(()),
        }
    }

    /// Sends a body under a fresh id and returns that id.
    pub fn send(&mut self, body: RequestBody) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send_request(&Request {
            id,
            body,
            trace: None,
        })?;
        Ok(id)
    }

    /// Sends a fully specified request (caller-chosen id).
    pub fn send_request(&mut self, request: &Request) -> Result<(), ClientError> {
        match self.wire {
            WireVersion::V1 => {
                let frame = encode_request(request)?;
                self.writer.write_all(frame.as_bytes())?;
                self.writer.write_all(b"\n")?;
            }
            WireVersion::V2 => {
                let frame = encode_request_v2(request)?;
                self.writer.write_all(&frame)?;
            }
        }
        self.writer.flush()?;
        Ok(())
    }

    /// Queues a request without flushing — the pipelining primitive. Callers
    /// batch several `send_pipelined` and then [`Self::flush`] once, putting
    /// multiple requests in flight on one connection; responses correlate by
    /// id as usual.
    pub fn send_pipelined(&mut self, body: RequestBody) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request {
            id,
            body,
            trace: None,
        };
        match self.wire {
            WireVersion::V1 => {
                let frame = encode_request(&request)?;
                self.writer.write_all(frame.as_bytes())?;
                self.writer.write_all(b"\n")?;
            }
            WireVersion::V2 => {
                let frame = encode_request_v2(&request)?;
                self.writer.write_all(&frame)?;
            }
        }
        Ok(id)
    }

    /// Flushes queued pipelined requests to the socket.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Receives the next response; `None` on clean EOF.
    pub fn recv(&mut self) -> Result<Option<Response>, ClientError> {
        match self.wire {
            WireVersion::V1 => loop {
                match read_frame(&mut self.reader)? {
                    None => return Ok(None),
                    Some(Frame::Oversized { len }) => {
                        return Err(ClientError::Wire(WireError::Oversized { len }))
                    }
                    Some(Frame::Line(line)) => {
                        if line.trim().is_empty() {
                            continue;
                        }
                        return Ok(Some(decode_response(&line)?));
                    }
                }
            },
            WireVersion::V2 => match read_frame_v2(&mut self.reader)? {
                None => Ok(None),
                Some(FrameV2::Oversized { len }) => {
                    Err(ClientError::Wire(WireError::Oversized { len }))
                }
                Some(FrameV2::Frame { opcode, payload }) => {
                    Ok(Some(decode_response_v2(opcode, &payload)?))
                }
            },
        }
    }
}

/// One fully correlated request result.
#[derive(Debug, Clone, PartialEq)]
pub enum Completed {
    /// A single-response result (outcome / evaluation / layout / pong).
    Single(ResponseBody),
    /// All cases of a sweep, ordered by case index.
    Sweep(Vec<ResponseBody>),
    /// The request was rejected with backpressure; retry after the hint.
    Rejected {
        /// Suggested back-off, milliseconds.
        retry_after_ms: u64,
    },
    /// The request failed or was refused at shutdown.
    Failed(ResponseBody),
}

#[derive(Debug, Default)]
struct PartialSweep {
    total: usize,
    cases: BTreeMap<usize, ResponseBody>,
}

/// Correlates a completion-ordered response stream back to request ids.
#[derive(Debug, Default)]
pub struct ResponseRouter {
    partial: BTreeMap<u64, PartialSweep>,
    done: BTreeMap<u64, Completed>,
}

impl ResponseRouter {
    /// A fresh router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Files one response. Returns `Some(id)` when that request just became
    /// complete.
    pub fn accept(&mut self, response: Response) -> Result<Option<u64>, ClientError> {
        let id = response.id;
        if self.done.contains_key(&id) {
            return Err(ClientError::Protocol(format!(
                "response for already-completed id {id}"
            )));
        }
        match response.body {
            ResponseBody::CaseOutcome { index, total, .. } => {
                if total == 0 || index >= total {
                    return Err(ClientError::Protocol(format!(
                        "case index {index} out of range 0..{total}"
                    )));
                }
                let partial = self.partial.entry(id).or_insert_with(|| PartialSweep {
                    total,
                    cases: BTreeMap::new(),
                });
                if partial.total != total {
                    return Err(ClientError::Protocol(format!(
                        "sweep {id} changed total {} -> {total}",
                        partial.total
                    )));
                }
                if partial.cases.insert(index, response.body).is_some() {
                    return Err(ClientError::Protocol(format!(
                        "duplicate case {index} for sweep {id}"
                    )));
                }
                if partial.cases.len() == partial.total {
                    let ordered = std::mem::take(&mut partial.cases).into_values().collect();
                    self.partial.remove(&id);
                    self.done.insert(id, Completed::Sweep(ordered));
                    Ok(Some(id))
                } else {
                    Ok(None)
                }
            }
            ResponseBody::Busy { retry_after_ms } => {
                // A conforming server only rejects before any case is
                // produced, but a stale partial must not outlive the
                // request either way.
                self.partial.remove(&id);
                self.done.insert(id, Completed::Rejected { retry_after_ms });
                Ok(Some(id))
            }
            body @ (ResponseBody::Error { .. } | ResponseBody::ShuttingDown) => {
                // An error/refusal terminates the request even if sweep
                // cases already arrived.
                self.partial.remove(&id);
                self.done.insert(id, Completed::Failed(body));
                Ok(Some(id))
            }
            body => {
                if self.partial.contains_key(&id) {
                    return Err(ClientError::Protocol(format!(
                        "single response for sweep id {id}"
                    )));
                }
                self.done.insert(id, Completed::Single(body));
                Ok(Some(id))
            }
        }
    }

    /// Number of completed requests not yet taken.
    pub fn completed(&self) -> usize {
        self.done.len()
    }

    /// Takes a completed result.
    pub fn take(&mut self, id: u64) -> Option<Completed> {
        self.done.remove(&id)
    }

    /// True while any sweep is still partially received.
    pub fn has_partial(&self) -> bool {
        !self.partial.is_empty()
    }
}

/// Drives `client` until the given ids are all complete, routing everything
/// received; returns the completed results by id.
pub fn collect_responses(
    client: &mut Client,
    ids: &[u64],
) -> Result<BTreeMap<u64, Completed>, ClientError> {
    let mut router = ResponseRouter::new();
    let mut outstanding: std::collections::BTreeSet<u64> = ids.iter().copied().collect();
    let mut results = BTreeMap::new();
    while !outstanding.is_empty() {
        let response = client
            .recv()?
            .ok_or_else(|| ClientError::Protocol("eof with requests outstanding".into()))?;
        // Id 0 means the server could not attribute the failure to any
        // request (a frame we sent never decoded) — one of the outstanding
        // ids will therefore never complete. Waiting would hang; fail fast.
        if response.id == 0 && !outstanding.contains(&0) {
            return Err(ClientError::Protocol(format!(
                "server reported an unattributable failure: {:?}",
                response.body
            )));
        }
        if let Some(id) = router.accept(response)? {
            if outstanding.remove(&id) {
                let Some(done) = router.take(id) else {
                    return Err(ClientError::Protocol(format!(
                        "completed result for request {id} vanished"
                    )));
                };
                results.insert(id, done);
            }
        }
    }
    Ok(results)
}

#[cfg(test)]
mod backoff_tests {
    use super::*;

    #[test]
    fn backoff_doubles_from_the_hint_and_caps() {
        let hint = 50u64;
        for attempt in 0..32u32 {
            let base = hint
                .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
                .min(BUSY_BACKOFF_CAP_MS);
            let d = busy_backoff(hint, attempt, 7).as_millis() as u64;
            assert!(d >= base, "attempt {attempt}: {d} below base {base}");
            assert!(
                d <= base + base / 4,
                "attempt {attempt}: {d} beyond base {base} + quarter jitter"
            );
        }
        // The base component is monotone in the attempt count.
        let bases: Vec<u64> = (0..16u32)
            .map(|a| {
                hint.saturating_mul(1u64.checked_shl(a).unwrap_or(u64::MAX))
                    .min(BUSY_BACKOFF_CAP_MS)
            })
            .collect();
        assert!(bases.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*bases.last().unwrap(), BUSY_BACKOFF_CAP_MS);
    }

    #[test]
    fn backoff_is_deterministic_per_seed_and_decorrelated_across_seeds() {
        for attempt in 0..8u32 {
            assert_eq!(
                busy_backoff(50, attempt, 1),
                busy_backoff(50, attempt, 1),
                "pure function of (hint, attempt, seed)"
            );
        }
        // Two clients with different seeds should not share the whole
        // schedule (that would recreate the synchronised herd).
        let a: Vec<Duration> = (0..8u32).map(|n| busy_backoff(50, n, 1)).collect();
        let b: Vec<Duration> = (0..8u32).map(|n| busy_backoff(50, n, 2)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn zero_and_huge_hints_stay_sane() {
        // A zero hint must still sleep (busy-spinning on the server would
        // be worse than the queue being full).
        assert!(busy_backoff(0, 0, 9) >= Duration::from_millis(1));
        // Saturation: enormous hints and attempts never overflow, and the
        // cap bounds the sleep.
        let d = busy_backoff(u64::MAX, u32::MAX, 9).as_millis() as u64;
        assert!(d <= BUSY_BACKOFF_CAP_MS + BUSY_BACKOFF_CAP_MS / 4);
    }
}
