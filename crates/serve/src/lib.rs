//! `camo-serve`: the long-lived OPC serving front-end.
//!
//! Everything below `camo-serve` computes; this crate *serves*. A single
//! process holds the expensive shared state — one immutable
//! [`camo_litho::LithoContext`] per lithography configuration (LRU-cached
//! via [`camo_litho::ContextCache`]) and a recycled
//! [`camo_litho::WorkspacePool`] per context — accepts
//! clip-optimization / evaluation / layout-sweep requests over TCP, and
//! streams per-clip outcomes back as they complete. The container this
//! repository builds in is offline, so there is no tokio and no serde: the
//! server is plain `std::net` + threads, and the wire format is the
//! hand-rolled JSON-subset codec in [`wire`].
//!
//! # Architecture
//!
//! ```text
//!                ┌────────────────────────── serve process ─────────────────────────┐
//!  client ──TCP──▶ acceptor ─▶ reader ──try_push──▶ BoundedQueue ──pop──▶ dispatchers │
//!  (camo-client)│     │          │ full → Busy{retry_after_ms}       (ServicePool)   │
//!               │     │          ▼                                       │ coalesce  │
//!               │     │        writer ◀───────── responses ──────────────┤ by config │
//!               │     │     (per conn, newline-delimited, completion order)          │
//!               │     └ max_connections cap                  ContextCache (LRU)      │
//!               └──────────────────────────────────────────────────────────────────┘
//! ```
//!
//! One serve process is one queue, one [`camo_litho::ContextCache`] and one
//! failure domain. The **shard tier** ([`router`] + [`shard`], started with
//! `serve --shards N`) multiplies all three: a router process accepts
//! clients on one front port and forwards framed requests to `N`
//! supervised `serve` processes, routed consistently by
//! [`camo_litho::LithoConfig::fingerprint`] so each shard keeps a hot
//! context, with per-shard health probes, typed `busy` propagation,
//! redispatch-on-shard-death and a tier-wide graceful drain. The protocol
//! through the router is byte-for-byte the single-process protocol, and the
//! results stay bit-identical. See `docs/ARCHITECTURE.md` for the full
//! picture and `docs/WIRE_PROTOCOL.md` for the wire specification.
//!
//! * [`wire`] — the two codecs: the line-based JSON-subset v1 text
//!   protocol every peer speaks, and the negotiated v2 binary framing
//!   (length-prefixed little-endian frames, raw `f64` bit images, a
//!   64 MiB frame bound for multi-clip batches) a connection upgrades to
//!   via the `hello`/`hello_ack` handshake. Both: typed
//!   requests/responses, strict validation, exact `f64` round-trips,
//!   typed errors (never panics) for truncated/oversized/malformed
//!   frames — and bit-identical served results.
//! * [`server`] — acceptor + per-connection reader/writer threads, the
//!   bounded request queue whose `try_push` failure becomes a typed
//!   [`wire::ResponseBody::Busy`] rejection (backpressure, never blocking,
//!   never silent drops), and dispatchers on a
//!   [`camo_runtime::ServicePool`] that coalesce compatible requests into
//!   `optimize_batch` / `sweep_cases` / `evaluate_layout` calls.
//! * [`exec`] — the spec → engine/simulator materialisation shared by the
//!   server and the offline verifier, which is what reduces "server ==
//!   offline" to the batch runtime's own determinism contract.
//! * [`client`] — blocking client plus [`client::ResponseRouter`]
//!   request-id correlation for the completion-ordered response stream.
//! * [`shard`] / [`router`] — the multi-process tier: `std::process`
//!   supervision of backend serve processes and the front-port router that
//!   load-balances over them by configuration fingerprint. Dead shards are
//!   **respawned** under the [`supervise`] policy (capped exponential
//!   backoff, flap-detection breaker), and a `restart` wire request rolls
//!   the tier one shard at a time.
//! * [`stats`] / [`supervise`] — the observability and self-healing
//!   building blocks: lock-free log2 latency histograms behind the
//!   `metrics` wire request, and the pure backoff/breaker schedule the
//!   router's supervisor follows.
//! * [`trace`] — camo-trace, the request-scoped tracing plane: sampled
//!   requests carry a `trace_id` through the wire frame, every hop records
//!   typed spans into a lock-free [`FlightRecorder`] ring, the `trace`
//!   wire request pulls a merged per-request timeline, and
//!   [`chrome_trace_json`] exports it for `chrome://tracing`.
//!
//! # Determinism
//!
//! Results are **bit-identical to offline runs**: engines rebuild
//! deterministically from their [`wire::JobSpec`] (CAMO policies seed from
//! the spec), episodes follow the `(seed, clip_index)` RNG contract, and
//! the batch runtime is bit-identical to serial loops at any thread count.
//! The end-to-end test (`tests/e2e.rs`) and `camo-client --verify` diff
//! server responses against direct `camo-runtime` calls with
//! `f64::to_bits` equality.
//!
//! # Binaries
//!
//! * `serve` — `--port/--threads/--queue-depth/--max-connections/...`;
//!   prints the bound address, optionally writes it to `--port-file`, and
//!   exits cleanly on a client `shutdown` request. With `--shards N` it
//!   runs as the router of a multi-process tier instead, re-executing
//!   itself `N` times as backend shards and draining them all on shutdown.
//! * `camo-client` — load generator over
//!   [`camo_workloads::request_stream`], with `--verify` (offline
//!   bit-identity diff), `--shutdown`, and `--front` to address a router
//!   front port (the protocol is identical, so this is spelling, not
//!   mechanism).

#![deny(missing_docs)]

pub mod cli;
pub mod client;
pub mod error;
pub mod exec;
mod front;
pub mod router;
pub mod server;
pub mod shard;
pub mod stats;
pub mod supervise;
pub mod trace;
pub mod wire;

pub use client::{
    busy_backoff, collect_responses, Client, ClientError, Completed, ResponseRouter,
    BUSY_BACKOFF_CAP_MS,
};
pub use error::ServeError;
pub use router::{route, route_spawned, shard_preference, RouterConfig, RouterHandle, RouterStats};
pub use server::{serve, ServerConfig, ServerHandle, ServerStats};
pub use shard::{ShardSet, ShardSpec};
pub use stats::{KindLatency, LatencySnapshot, MetricsReport, ShardStatus};
pub use supervise::{Backoff, FlapBreaker, RespawnPolicy};
pub use trace::{chrome_trace_json, FlightRecorder, ShardTrace, SpanRecord, TraceReport, Tracer};
pub use wire::{Request, RequestBody, Response, ResponseBody, WireError, WireVersion};
