//! Serving statistics: hand-rolled latency histograms and the metrics
//! report schema.
//!
//! The serving tier records one latency sample per completed request into a
//! fixed-bucket **log2 histogram** ([`LatencyHistogram`]): bucket `i`
//! counts samples in `[2^i, 2^(i+1))` microseconds (bucket 0 also absorbs
//! sub-microsecond samples). Recording is a single relaxed atomic
//! increment, so the hot path never takes a lock, and quantiles are read
//! deterministically from a snapshot: a reported percentile is the
//! **inclusive upper bound** of the bucket in which the cumulative count
//! crosses the requested fraction — a conservative (never under-reported)
//! tail estimate that two readers of the same snapshot always agree on.
//!
//! [`MetricsReport`] is the data model of the `metrics` wire request (see
//! `docs/WIRE_PROTOCOL.md`): gauges and counters for one serving process,
//! per-request-kind latency summaries, and — on a router — per-shard
//! status rows combining the router's own view (alive/benched/forwarded/
//! respawns) with each shard's latest self-reported gauges.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 buckets: bucket 39 tops out at `2^40 - 1` µs (≈ 12.7
/// days), far beyond any plausible request latency.
pub const LATENCY_BUCKETS: usize = 40;

/// The request kinds latency is tracked for, in reporting order.
pub const LATENCY_KINDS: [&str; 4] = ["optimize", "evaluate", "sweep", "layout"];

/// A fixed-bucket log2 latency histogram with lock-free recording.
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: [AtomicU64; LATENCY_BUCKETS],
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket a sample of `us` microseconds lands in.
fn bucket_index(us: u64) -> usize {
    if us <= 1 {
        0
    } else {
        ((63 - us.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
    }
}

/// The inclusive upper bound of bucket `i`, in microseconds.
fn bucket_upper_us(i: usize) -> u64 {
    (1u64 << (i + 1)) - 1
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            max_us: AtomicU64::new(0),
        }
    }

    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.counts[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram. Samples recorded concurrently
    /// with the snapshot land in either the snapshot or the next one —
    /// never nowhere.
    pub fn snapshot(&self) -> LatencySnapshot {
        let mut buckets: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        let count: u64 = buckets.iter().sum();
        LatencySnapshot {
            count,
            p50_us: quantile_us(&buckets, 0.50),
            p99_us: quantile_us(&buckets, 0.99),
            max_us: self.max_us.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// The deterministic quantile read: the upper bound of the bucket where the
/// cumulative count first reaches `ceil(q * total)`. Returns 0 for an
/// empty histogram.
fn quantile_us(buckets: &[u64], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let target = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        seen += n;
        if seen >= target {
            return bucket_upper_us(i);
        }
    }
    bucket_upper_us(buckets.len().saturating_sub(1))
}

/// A point-in-time latency summary (see [`LatencyHistogram::snapshot`]).
/// `buckets` carries the raw log2 bucket counts with trailing zero buckets
/// trimmed, so a reader can compute its own quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Median latency (bucket upper bound), µs.
    pub p50_us: u64,
    /// 99th-percentile latency (bucket upper bound), µs.
    pub p99_us: u64,
    /// Largest single sample, µs.
    pub max_us: u64,
    /// Raw log2 bucket counts, trailing zeros trimmed.
    pub buckets: Vec<u64>,
}

/// Per-request-kind latency histograms for one serving process.
#[derive(Debug, Default)]
pub struct KindLatencies {
    histograms: [LatencyHistogram; 4],
}

impl KindLatencies {
    /// Fresh, empty histograms for every kind.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample under the request kind `kind` (as returned by
    /// `RequestBody::kind`). Kinds that are not latency-tracked (ping,
    /// shutdown, metrics, restart) are ignored.
    pub fn record(&self, kind: &str, latency: Duration) {
        if let Some(i) = LATENCY_KINDS.iter().position(|k| *k == kind) {
            self.histograms[i].record(latency);
        }
    }

    /// Snapshots every kind that has at least one sample, in
    /// [`LATENCY_KINDS`] order.
    pub fn snapshot(&self) -> Vec<KindLatency> {
        LATENCY_KINDS
            .iter()
            .zip(&self.histograms)
            .map(|(kind, h)| KindLatency {
                kind: (*kind).to_string(),
                latency: h.snapshot(),
            })
            .filter(|k| k.latency.count > 0)
            .collect()
    }
}

/// One request kind's latency summary inside a [`MetricsReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KindLatency {
    /// The request kind (`"optimize"`, `"evaluate"`, `"sweep"`, `"layout"`)
    /// — or, in `MetricsReport::stage_latency`, a tracing stage name.
    pub kind: String,
    /// The summary itself.
    pub latency: LatencySnapshot,
}

/// Per-tracing-stage latency histograms, fed by every span the
/// [`crate::trace::Tracer`] records. Snapshotted into
/// `MetricsReport::stage_latency` so `--metrics` and `perf_snapshot` can
/// print a stage breakdown without pulling a full trace.
#[derive(Debug)]
pub struct StageLatencies {
    histograms: [LatencyHistogram; crate::trace::Stage::ALL.len()],
}

impl Default for StageLatencies {
    fn default() -> Self {
        Self::new()
    }
}

impl StageLatencies {
    /// Fresh, empty histograms for every stage.
    pub fn new() -> Self {
        Self {
            histograms: std::array::from_fn(|_| LatencyHistogram::new()),
        }
    }

    /// Records one span duration under its stage.
    pub fn record(&self, stage: crate::trace::Stage, latency: Duration) {
        self.histograms[stage.index()].record(latency);
    }

    /// Snapshots every stage with at least one span, in lifecycle order.
    pub fn snapshot(&self) -> Vec<KindLatency> {
        crate::trace::Stage::ALL
            .iter()
            .zip(&self.histograms)
            .map(|(stage, h)| KindLatency {
                kind: stage.name().to_string(),
                latency: h.snapshot(),
            })
            .filter(|k| k.latency.count > 0)
            .collect()
    }
}

/// One shard's status row inside a router's [`MetricsReport`]: the router's
/// own supervision view plus the shard's latest self-reported gauges
/// (refreshed by every health probe; zero until the first probe answer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStatus {
    /// Shard index (position in the tier, stable across respawns).
    pub index: usize,
    /// Whether the router currently considers the shard live.
    pub alive: bool,
    /// Whether the flap breaker has benched the shard (no more respawns).
    pub benched: bool,
    /// Requests forwarded to this shard since startup.
    pub forwarded: usize,
    /// Times this shard was respawned (supervised or via `restart`).
    pub respawns: usize,
    /// Shard-reported request-queue depth.
    pub queue_depth: usize,
    /// Shard-reported in-flight request count.
    pub in_flight: usize,
    /// Shard-reported in-flight high-water mark.
    pub in_flight_high_water: usize,
    /// Shard-reported completed-request count.
    pub completed: usize,
    /// Shard-reported busy rejections.
    pub busy_rejected: usize,
}

/// The `metrics` response payload: one serving process's observable state.
///
/// A plain server reports itself with an empty `shards` list and zero
/// `redispatched`/`respawns`; a router reports tier-level counters plus one
/// [`ShardStatus`] row per shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsReport {
    /// `"server"` or `"router"`.
    pub role: String,
    /// SIMD backend the litho hot loops dispatch to in this process
    /// (`"scalar"`, `"sse2"` or `"avx2"` — detection, or a `CAMO_SIMD`
    /// override). Results are bit-identical across backends; the field is
    /// observability, not a result qualifier.
    pub simd_arch: String,
    /// Current request-queue depth.
    pub queue_depth: usize,
    /// Deepest the request queue has ever been (exact; never resets).
    pub queue_high_water: usize,
    /// Requests admitted but not yet answered.
    pub in_flight: usize,
    /// Most requests ever simultaneously in flight (exact; never resets).
    pub in_flight_high_water: usize,
    /// Requests answered since startup.
    pub completed: usize,
    /// Requests rejected with `busy` since startup.
    pub busy_rejected: usize,
    /// Requests re-routed after a shard failure (router only).
    pub redispatched: usize,
    /// Total shard respawns (router only).
    pub respawns: usize,
    /// Per-request-kind latency summaries (kinds with ≥ 1 sample).
    pub latency: Vec<KindLatency>,
    /// Per-tracing-stage latency summaries (stages with ≥ 1 span; empty
    /// unless tracing has recorded spans — see `--trace-sample`).
    pub stage_latency: Vec<KindLatency>,
    /// Per-shard status rows (router only).
    pub shards: Vec<ShardStatus>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_with_saturation() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn quantiles_read_bucket_upper_bounds() {
        let h = LatencyHistogram::new();
        for us in [3u64, 3, 3, 3, 3, 3, 3, 3, 3, 900] {
            h.record(Duration::from_micros(us));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        // 9 of 10 samples sit in bucket 1 (upper bound 3 µs); the tail
        // sample sits in bucket 9 (upper bound 1023 µs).
        assert_eq!(s.p50_us, 3);
        assert_eq!(s.p99_us, 1023);
        assert_eq!(s.max_us, 900);
        assert!(s.p99_us >= s.max_us, "upper-bound read never under-reports");
    }

    #[test]
    fn max_is_the_exact_observed_sample_not_a_bucket_bound() {
        // Satellite: quantiles deliberately read bucket *upper bounds*
        // (conservative tails), but `max_us` must be the exact observed
        // maximum — a power-of-two sample sits at the *bottom* of its
        // bucket, where the bound over-states by almost 2×.
        let h = LatencyHistogram::new();
        for _ in 0..9 {
            h.record(Duration::from_micros(1024));
        }
        let s = h.snapshot();
        // 1024 µs lands in bucket 10, whose inclusive upper bound is 2047:
        // the quantile reads are the bound...
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_upper_us(10), 2047);
        assert_eq!(s.p50_us, 2047);
        assert_eq!(s.p99_us, 2047);
        // ...while max reports the sample itself, not 2047.
        assert_eq!(s.max_us, 1024);

        // Boundary pins around the bucket edges: top-of-bucket and
        // bottom-of-next-bucket samples keep their exact values.
        for (sample, bound) in [(1u64, 1u64), (1023, 1023), (2047, 2047), (2048, 4095)] {
            let h = LatencyHistogram::new();
            h.record(Duration::from_micros(sample));
            let s = h.snapshot();
            assert_eq!(s.max_us, sample, "exact max for {sample}");
            assert_eq!(s.p99_us, bound, "bucket bound for {sample}");
            assert!(s.p99_us >= s.max_us);
        }
    }

    #[test]
    fn stage_latencies_snapshot_in_lifecycle_order() {
        let s = StageLatencies::new();
        assert!(s.snapshot().is_empty());
        s.record(crate::trace::Stage::Write, Duration::from_micros(9));
        s.record(crate::trace::Stage::Rasterize, Duration::from_micros(800));
        s.record(crate::trace::Stage::Rasterize, Duration::from_micros(900));
        let snap = s.snapshot();
        let kinds: Vec<&str> = snap.iter().map(|k| k.kind.as_str()).collect();
        assert_eq!(kinds, ["rasterize", "write"]);
        assert_eq!(snap[0].latency.count, 2);
        assert_eq!(snap[0].latency.max_us, 900);
    }

    #[test]
    fn empty_histogram_snapshots_to_zeros() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(
            (s.count, s.p50_us, s.p99_us, s.max_us),
            (0, 0, 0, 0),
            "{s:?}"
        );
        assert!(s.buckets.is_empty(), "trailing zeros trimmed: {s:?}");
    }

    #[test]
    fn percentiles_are_monotone_in_q() {
        let h = LatencyHistogram::new();
        for us in 0..200u64 {
            h.record(Duration::from_micros(us * us));
        }
        let s = h.snapshot();
        let qs: Vec<u64> = [0.1, 0.25, 0.5, 0.9, 0.99, 1.0]
            .iter()
            .map(|&q| quantile_us(&s.buckets, q))
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
    }

    #[test]
    fn kind_latencies_track_known_kinds_only() {
        let k = KindLatencies::new();
        k.record("optimize", Duration::from_micros(10));
        k.record("optimize", Duration::from_micros(12));
        k.record("layout", Duration::from_millis(2));
        k.record("ping", Duration::from_micros(1)); // ignored
        let snap = k.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].kind, "optimize");
        assert_eq!(snap[0].latency.count, 2);
        assert_eq!(snap[1].kind, "layout");
        assert_eq!(snap[1].latency.count, 1);
    }
}
