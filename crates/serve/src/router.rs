//! The shard router: one front port fanned out over `N` backend `serve`
//! processes.
//!
//! A single serve process caps the machine at one request queue, one
//! [`camo_litho::ContextCache`] and one failure domain. The router
//! multiplies all three while keeping the wire protocol *identical* — a
//! client cannot tell a router from a plain server, and routed results are
//! **bit-identical** to direct single-process serving (the determinism
//! contract makes every shard compute the same bits from the same spec).
//!
//! # Thread anatomy
//!
//! ```text
//!                 ┌──────────────────────── router process ───────────────────────┐
//!  client ──TCP──▶ acceptor ─▶ reader ──try_push──▶ BoundedQueue ──pop──▶ forwarders │
//!                 │              │ full → Busy{retry_after_ms}        (ServicePool) │
//!                 │              ▼                                        │ route by │
//!                 │            writer ◀── responses (id-translated) ──┐  │ litho    │
//!                 │                                                   │  ▼ fingerprint
//!                 │   prober ──ping/pong──▶ ┌────────┐  shard reader ┴─ shard writer
//!                 └─────────────────────────│ shard 0│◀───────────────────────────┘
//!                      (per-shard health)   │ shard 1│  … one TCP channel per shard
//!                                           └────────┘
//! ```
//!
//! * Client-facing threads mirror [`crate::server`]: an acceptor with a
//!   connection cap, one reader and one writer per connection, and a
//!   bounded request queue whose overflow answers a typed
//!   [`ResponseBody::Busy`] rejection.
//! * **Forwarders** are jobs on a [`camo_runtime::ServicePool`]. Each pops
//!   a request, computes its lithography fingerprint
//!   ([`camo_litho::LithoConfig::fingerprint`] via
//!   [`crate::exec::litho_spec`]), and writes it — under a fresh router id
//!   — to the shard that [`shard_preference`] ranks first among the live
//!   ones. Consistent routing means every configuration's requests land on
//!   one shard, which therefore keeps a **hot context** for it.
//! * One **shard reader** per backend demultiplexes responses: router ids
//!   are translated back to client ids and forwarded to the owning
//!   connection's writer. Sweep cases stream through one by one.
//! * The **prober** pings every live shard on an interval. A shard that
//!   stops answering within the probe timeout — or whose connection drops,
//!   or which sends a frame that does not decode — is marked dead and every
//!   request in flight on it is **redispatched** to the next shard in its
//!   preference order. Sweeps that already streamed some cases to the
//!   client resend only the missing indices (bit-identical recomputation
//!   makes the dedup exact).
//!
//! # Failure semantics
//!
//! * `busy` from a shard is propagated to the client unchanged — the shard
//!   tier never converts backpressure into blocking.
//! * A dead shard is routed around, not respawned; when every shard is
//!   dead, in-flight and new requests complete with a typed
//!   [`ErrorCode::Internal`] error.
//! * Shutdown drains in order: stop accepting, forward everything queued,
//!   wait for in-flight work (bounded by
//!   [`RouterConfig::drain_timeout`]), then send each live shard a
//!   `shutdown` request and reap the supervised processes.

use crate::exec::litho_spec;
use crate::front::{acceptor_loop, AdmittedRequest, FrontHandler, FrontState};
use crate::shard::ShardSet;
use crate::wire::{
    decode_response, encode_request_parts, read_frame, ErrorCode, Frame, RequestBody, Response,
    ResponseBody,
};
use camo_runtime::{BoundedQueue, ServicePool};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Front address clients connect to (port 0 picks an ephemeral port).
    pub addr: SocketAddr,
    /// Forwarding-queue depth; a full queue answers `busy` (backpressure).
    pub queue_depth: usize,
    /// Maximum simultaneously open client connections.
    pub max_connections: usize,
    /// Forwarder jobs draining the queue onto shard channels.
    pub forwarders: usize,
    /// Retry hint carried by router-side `busy` rejections, milliseconds.
    pub retry_after_ms: u64,
    /// Interval between health probes to each live shard.
    pub probe_interval: Duration,
    /// A shard whose probe goes unanswered this long is declared dead.
    pub probe_timeout: Duration,
    /// Upper bound on waiting for in-flight requests at shutdown; requests
    /// still unanswered afterwards complete with a typed internal error.
    pub drain_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".parse().expect("static addr"),
            queue_depth: 64,
            max_connections: 32,
            forwarders: 2,
            retry_after_ms: 50,
            probe_interval: Duration::from_millis(100),
            probe_timeout: Duration::from_secs(5),
            drain_timeout: Duration::from_secs(120),
        }
    }
}

/// Counters exposed for logging, the bench harness and the affinity tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterStats {
    /// Client connections accepted.
    pub connections: usize,
    /// Requests rejected with router-side `busy` (queue full or connection
    /// cap).
    pub rejected: usize,
    /// Requests whose final response (or final sweep case) was forwarded.
    pub completed: usize,
    /// Requests re-sent to another shard after their shard died.
    pub redispatched: usize,
    /// Requests forwarded to each shard, in shard order (redispatches
    /// count again on the new shard).
    pub forwarded_per_shard: Vec<usize>,
    /// Liveness of each shard at the time of the snapshot.
    pub shard_alive: Vec<bool>,
}

/// The deterministic shard preference order for one lithography
/// fingerprint: shard indices ranked by rendezvous hashing, best first.
///
/// Every fingerprint ranks *all* shards, so routing degrades gracefully —
/// when the preferred shard dies, its traffic moves as one block to the
/// fingerprint's second choice (keeping per-configuration affinity) instead
/// of being scattered. Distinct fingerprints spread independently, so a
/// multi-configuration workload balances across the tier.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn shard_preference(fingerprint: u64, shards: usize) -> Vec<usize> {
    assert!(shards > 0, "a router needs at least one shard");
    let mut order: Vec<usize> = (0..shards).collect();
    order.sort_by_key(|&s| std::cmp::Reverse(mix(fingerprint, s as u64)));
    order
}

/// SplitMix64-style avalanche of `(fingerprint, shard)` — the rendezvous
/// weight. Vendored (offline build): any statistically decent mixer works,
/// it only has to be deterministic across processes.
fn mix(fingerprint: u64, shard: u64) -> u64 {
    let mut x = fingerprint ^ shard.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// One request in flight on a shard, kept until its final response is
/// forwarded so it can be redispatched if the shard dies.
struct Inflight {
    reply: Sender<Response>,
    client_id: u64,
    /// Shared with in-progress encodes so redispatch never clones payloads.
    body: Arc<RequestBody>,
    shard: usize,
    attempts: usize,
    /// Sweep case indices already forwarded to the client — after a
    /// redispatch, the replacement shard's identical stream is deduplicated
    /// against this set.
    forwarded_cases: BTreeSet<usize>,
    /// Case count, learned from the first case frame.
    total_cases: Option<usize>,
}

/// The router's connection to one backend shard.
struct ShardLink {
    addr: SocketAddr,
    alive: AtomicBool,
    writer: Mutex<Option<BufWriter<TcpStream>>>,
    /// A clone used to shut the channel down so the shard reader unblocks.
    stream: Mutex<Option<TcpStream>>,
    forwarded: AtomicUsize,
}

struct RouterShared {
    config: RouterConfig,
    queue: BoundedQueue<AdmittedRequest>,
    links: Vec<ShardLink>,
    front: FrontState,
    inflight: Mutex<BTreeMap<u64, Inflight>>,
    /// Notified whenever `inflight` shrinks (the drain wait).
    idle: Condvar,
    /// Outstanding health probes: router id → (shard, sent-at).
    probes: Mutex<BTreeMap<u64, (usize, Instant)>>,
    next_id: AtomicU64,
    probe_stop: AtomicBool,
    completed: AtomicUsize,
    redispatched: AtomicUsize,
}

impl RouterShared {
    fn lock_inflight(&self) -> std::sync::MutexGuard<'_, BTreeMap<u64, Inflight>> {
        self.inflight.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_probes(&self) -> std::sync::MutexGuard<'_, BTreeMap<u64, (usize, Instant)>> {
        self.probes.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn fresh_id(&self) -> u64 {
        // Starts at 1: id 0 is the protocol's "unattributable" marker.
        self.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn alive_count(&self) -> usize {
        self.links
            .iter()
            .filter(|l| l.alive.load(Ordering::SeqCst))
            .count()
    }

    fn request_shutdown(&self) {
        self.queue.close();
        self.front.begin_shutdown();
    }
}

impl FrontHandler for RouterShared {
    fn front(&self) -> &FrontState {
        &self.front
    }

    fn queue(&self) -> &BoundedQueue<AdmittedRequest> {
        &self.queue
    }

    fn on_shutdown_request(&self) {
        self.request_shutdown();
    }
}

/// A running router; [`Self::shutdown`] is the graceful path.
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    acceptor: Option<JoinHandle<()>>,
    forwarders: Option<ServicePool>,
    prober: Option<JoinHandle<()>>,
    shard_readers: Vec<JoinHandle<()>>,
    supervised: Option<ShardSet>,
}

/// Starts a router over externally managed shard addresses (tests drive
/// this directly; production spawns go through [`route_spawned`]).
///
/// # Panics
///
/// Panics if `shards` is empty.
pub fn route(config: RouterConfig, shards: &[SocketAddr]) -> std::io::Result<RouterHandle> {
    start(config, shards.to_vec(), None)
}

/// Spawns nothing itself but adopts an already-spawned [`ShardSet`]: the
/// router connects to every shard, and [`RouterHandle::shutdown`] drains
/// and reaps the processes.
pub fn route_spawned(config: RouterConfig, shards: ShardSet) -> std::io::Result<RouterHandle> {
    let addrs = shards.addrs();
    start(config, addrs, Some(shards))
}

fn start(
    config: RouterConfig,
    addrs: Vec<SocketAddr>,
    supervised: Option<ShardSet>,
) -> std::io::Result<RouterHandle> {
    assert!(!addrs.is_empty(), "a router needs at least one shard");
    let listener = TcpListener::bind(config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let links: Vec<ShardLink> = addrs
        .iter()
        .map(|&addr| ShardLink {
            addr,
            alive: AtomicBool::new(false),
            writer: Mutex::new(None),
            stream: Mutex::new(None),
            forwarded: AtomicUsize::new(0),
        })
        .collect();
    let forwarder_count = config.forwarders.max(1);
    let shared = Arc::new(RouterShared {
        queue: BoundedQueue::new(config.queue_depth),
        links,
        front: FrontState::new(config.max_connections, config.retry_after_ms),
        inflight: Mutex::new(BTreeMap::new()),
        idle: Condvar::new(),
        probes: Mutex::new(BTreeMap::new()),
        next_id: AtomicU64::new(0),
        probe_stop: AtomicBool::new(false),
        completed: AtomicUsize::new(0),
        redispatched: AtomicUsize::new(0),
        config,
    });

    // Connect every shard channel up front; a shard that refuses now is
    // simply dead from the start (the tier still serves on the others).
    let mut shard_readers = Vec::new();
    for index in 0..shared.links.len() {
        if let Some(handle) = connect_shard(&shared, index) {
            shard_readers.push(handle);
        }
    }
    if shared.alive_count() == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionRefused,
            "no shard accepted the router's connection",
        ));
    }

    let forwarders = {
        let pool = ServicePool::new(forwarder_count, forwarder_count);
        for _ in 0..forwarder_count {
            let shared = Arc::clone(&shared);
            pool.submit(move || forward_loop(&shared))
                .expect("fresh pool accepts jobs");
        }
        Some(pool)
    };

    let prober = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("camo-router-prober".into())
            .spawn(move || prober_loop(&shared))
            .expect("spawn prober")
    };

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("camo-router-acceptor".into())
            .spawn(move || acceptor_loop(listener, &shared))
            .expect("spawn acceptor")
    };

    Ok(RouterHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        forwarders,
        prober: Some(prober),
        shard_readers,
        supervised,
    })
}

/// Connects one shard channel and spawns its reader; `None` (and a dead
/// link) when the shard is unreachable.
fn connect_shard(shared: &Arc<RouterShared>, index: usize) -> Option<JoinHandle<()>> {
    let link = &shared.links[index];
    let stream = TcpStream::connect(link.addr).ok()?;
    // A wedged shard must not hang a forwarder behind a full send buffer.
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let read_half = stream.try_clone().ok()?;
    *link.stream.lock().unwrap_or_else(PoisonError::into_inner) = Some(stream.try_clone().ok()?);
    *link.writer.lock().unwrap_or_else(PoisonError::into_inner) = Some(BufWriter::new(stream));
    link.alive.store(true, Ordering::SeqCst);
    let reader = {
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name(format!("camo-router-shard-{index}"))
            .spawn(move || shard_reader_loop(&shared, index, read_half))
    };
    match reader {
        Ok(handle) => Some(handle),
        Err(_) => {
            // No reader means no responses: a half-connected link must not
            // stay routable (or satisfy start()'s liveness check).
            fail_shard(shared, index);
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Forwarding
// ---------------------------------------------------------------------------

fn forward_loop(shared: &RouterShared) {
    while let Some(routed) = shared.queue.pop() {
        let router_id = shared.fresh_id();
        let entry = Inflight {
            reply: routed.reply,
            client_id: routed.request.id,
            body: Arc::new(routed.request.body),
            shard: usize::MAX,
            attempts: 0,
            forwarded_cases: BTreeSet::new(),
            total_cases: None,
        };
        shared.lock_inflight().insert(router_id, entry);
        send_to_shard(shared, router_id);
    }
}

/// (Re)dispatches one in-flight request to the best live shard in its
/// fingerprint's preference order; exhausting the tier completes the
/// request with a typed internal error.
fn send_to_shard(shared: &RouterShared, router_id: u64) {
    // Snapshot the body under the lock, then fingerprint and encode
    // outside it — encoding can touch a MiB-scale frame and must not
    // stall response delivery tier-wide. A concurrent redispatch can
    // double-send the same router id at worst; the response path
    // tolerates duplicates (stale-shard and case-index dedup). The body
    // never changes after admission, so one encode covers every retry of
    // the write loop below.
    let body = {
        let inflight = shared.lock_inflight();
        match inflight.get(&router_id) {
            Some(entry) => Arc::clone(&entry.body),
            None => return, // completed concurrently
        }
    };
    let fingerprint = litho_spec(&body)
        .map(|spec| spec.to_config().fingerprint())
        .unwrap_or(0);
    let preference = shard_preference(fingerprint, shared.links.len());
    let frame = match encode_request_parts(router_id, &body) {
        Ok(frame) => frame,
        Err(e) => {
            if let Some(entry) = shared.lock_inflight().remove(&router_id) {
                fail_entry(shared, entry, &format!("unforwardable request: {e}"));
            }
            return;
        }
    };
    loop {
        let shard = {
            let mut inflight = shared.lock_inflight();
            let Some(entry) = inflight.get_mut(&router_id) else {
                return; // completed concurrently
            };
            if entry.attempts >= shared.links.len() {
                let entry = inflight.remove(&router_id).expect("entry present");
                drop(inflight);
                fail_entry(shared, entry, "request redispatched too many times");
                return;
            }
            let choice = preference
                .iter()
                .copied()
                .find(|&s| shared.links[s].alive.load(Ordering::SeqCst));
            let Some(shard) = choice else {
                let entry = inflight.remove(&router_id).expect("entry present");
                drop(inflight);
                fail_entry(shared, entry, "every shard is dead");
                return;
            };
            entry.shard = shard;
            entry.attempts += 1;
            shard
        };
        if write_to_shard(shared, shard, &frame) {
            shared.links[shard]
                .forwarded
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        // The write failed: the shard is dead. `fail_shard` redispatches
        // everything assigned to it — including this entry — so the loop
        // here only spins again if the entry is somehow still unassigned.
        fail_shard(shared, shard);
        if shared.lock_inflight().get(&router_id).map(|e| e.shard) != Some(shard) {
            return;
        }
    }
}

/// Writes one frame to a shard channel; false when the channel is down.
fn write_to_shard(shared: &RouterShared, shard: usize, frame: &str) -> bool {
    let link = &shared.links[shard];
    if !link.alive.load(Ordering::SeqCst) {
        return false;
    }
    let mut writer = link.writer.lock().unwrap_or_else(PoisonError::into_inner);
    let Some(w) = writer.as_mut() else {
        return false;
    };
    w.write_all(frame.as_bytes()).is_ok() && w.write_all(b"\n").is_ok() && w.flush().is_ok()
}

/// Completes one request with a typed internal error (shard tier failure).
fn fail_entry(shared: &RouterShared, entry: Inflight, message: &str) {
    let _ = entry.reply.send(Response {
        id: entry.client_id,
        body: ResponseBody::Error {
            code: ErrorCode::Internal,
            message: message.to_string(),
        },
    });
    shared.completed.fetch_add(1, Ordering::Relaxed);
    shared.idle.notify_all();
}

/// Marks one shard dead, closes its channel so the reader unblocks, and
/// redispatches every request in flight on it. Idempotent.
fn fail_shard(shared: &RouterShared, shard: usize) {
    let link = &shared.links[shard];
    if !link.alive.swap(false, Ordering::SeqCst) {
        return;
    }
    if let Some(stream) = link
        .stream
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
    {
        let _ = stream.shutdown(Shutdown::Both);
    }
    link.writer
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take();
    shared
        .lock_probes()
        .retain(|_, (probe_shard, _)| *probe_shard != shard);
    let stranded: Vec<u64> = shared
        .lock_inflight()
        .iter()
        .filter(|(_, e)| e.shard == shard)
        .map(|(&id, _)| id)
        .collect();
    for router_id in stranded {
        shared.redispatched.fetch_add(1, Ordering::Relaxed);
        send_to_shard(shared, router_id);
    }
}

// ---------------------------------------------------------------------------
// Shard responses
// ---------------------------------------------------------------------------

fn shard_reader_loop(shared: &Arc<RouterShared>, shard: usize, stream: TcpStream) {
    let mut reader = BufReader::new(stream);
    // Ends on EOF, a transport error, or an oversized frame — the channel
    // is unusable either way — and on the protocol violations below.
    while let Ok(Some(Frame::Line(line))) = read_frame(&mut reader) {
        if line.trim().is_empty() {
            continue;
        }
        let response = match decode_response(&line) {
            Ok(response) => response,
            // A backend speaking garbage is a protocol violation, not a
            // client error: fail the shard, recompute its work elsewhere.
            Err(_) => break,
        };
        if !handle_shard_response(shared, shard, response) {
            break;
        }
    }
    fail_shard(shared, shard);
}

/// Translates one shard response back to its client; false when the
/// response proves the shard must be failed.
fn handle_shard_response(shared: &RouterShared, shard: usize, response: Response) -> bool {
    // Id 0 means the shard could not decode a frame the router sent —
    // which the router never does; the channel is desynchronised.
    if response.id == 0 {
        return false;
    }
    if let Some((probe_shard, _)) = shared.lock_probes().remove(&response.id) {
        // Pong for a health probe; any other body under a probe id is a
        // protocol violation.
        return probe_shard == shard && matches!(response.body, ResponseBody::Pong);
    }
    let mut inflight = shared.lock_inflight();
    let Some(entry) = inflight.get_mut(&response.id) else {
        // Late or duplicate frame for a request that already completed
        // (e.g. the tail of a redispatched sweep); drop it.
        return true;
    };
    if entry.shard != shard {
        // A frame raced the failover from the old shard; the replacement
        // shard owns this request now.
        return true;
    }
    let client_id = entry.client_id;
    match response.body {
        ResponseBody::CaseOutcome {
            index,
            total,
            name,
            outcome,
        } => {
            if entry.total_cases.get_or_insert(total) != &total || index >= total {
                return false; // inconsistent sweep stream
            }
            if !entry.forwarded_cases.insert(index) {
                return true; // already streamed before a redispatch
            }
            let done = entry.forwarded_cases.len() == total;
            let reply = entry.reply.clone();
            if done {
                inflight.remove(&response.id);
            }
            drop(inflight);
            let _ = reply.send(Response {
                id: client_id,
                body: ResponseBody::CaseOutcome {
                    index,
                    total,
                    name,
                    outcome,
                },
            });
            if done {
                shared.completed.fetch_add(1, Ordering::Relaxed);
                shared.idle.notify_all();
            }
            true
        }
        // A shard announcing shutdown while it still owes work is dying;
        // fail it so the work is recomputed elsewhere.
        ResponseBody::ShuttingDown => false,
        body => {
            // Single-frame completions: outcome, evaluation, layout,
            // `busy` (typed backpressure propagated unchanged) and typed
            // errors all end the request. One exception: `busy` for a
            // sweep that already streamed cases to the client cannot be
            // forwarded — "never accepted" would contradict the results
            // the client already holds — so it completes as a typed error
            // instead.
            let entry = inflight.remove(&response.id).expect("entry present");
            drop(inflight);
            let body = match body {
                ResponseBody::Busy { .. } if !entry.forwarded_cases.is_empty() => {
                    ResponseBody::Error {
                        code: ErrorCode::Internal,
                        message: "shard rejected a partially delivered sweep on failover".into(),
                    }
                }
                body => body,
            };
            let _ = entry.reply.send(Response {
                id: client_id,
                body,
            });
            shared.completed.fetch_add(1, Ordering::Relaxed);
            shared.idle.notify_all();
            true
        }
    }
}

// ---------------------------------------------------------------------------
// Health probes
// ---------------------------------------------------------------------------

fn prober_loop(shared: &Arc<RouterShared>) {
    while !shared.probe_stop.load(Ordering::SeqCst) {
        let now = Instant::now();
        for shard in 0..shared.links.len() {
            if !shared.links[shard].alive.load(Ordering::SeqCst) {
                continue;
            }
            let (outstanding, timed_out) = {
                let probes = shared.lock_probes();
                let mut outstanding = false;
                let mut timed_out = false;
                for &(probe_shard, sent) in probes.values() {
                    if probe_shard == shard {
                        outstanding = true;
                        if now.duration_since(sent) > shared.config.probe_timeout {
                            timed_out = true;
                        }
                    }
                }
                (outstanding, timed_out)
            };
            if timed_out {
                fail_shard(shared, shard);
                continue;
            }
            if outstanding {
                continue;
            }
            let id = shared.fresh_id();
            let frame = match encode_request_parts(id, &RequestBody::Ping) {
                Ok(frame) => frame,
                Err(_) => continue,
            };
            // Stamped at insertion, not with the sweep-top `now`: a write
            // stall on an earlier shard must not age this probe before it
            // is even sent (a healthy shard would look timed out).
            shared.lock_probes().insert(id, (shard, Instant::now()));
            if !write_to_shard(shared, shard, &frame) {
                shared.lock_probes().remove(&id);
                fail_shard(shared, shard);
            }
        }
        std::thread::sleep(shared.config.probe_interval);
    }
}

// ---------------------------------------------------------------------------
// Handle
// ---------------------------------------------------------------------------

impl RouterHandle {
    /// The bound front address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The address of each shard, in shard order.
    pub fn shard_addrs(&self) -> Vec<SocketAddr> {
        self.shared.links.iter().map(|l| l.addr).collect()
    }

    /// Current counters.
    pub fn stats(&self) -> RouterStats {
        RouterStats {
            connections: self.shared.front.connections.load(Ordering::Relaxed),
            rejected: self.shared.front.rejected.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            redispatched: self.shared.redispatched.load(Ordering::Relaxed),
            forwarded_per_shard: self
                .shared
                .links
                .iter()
                .map(|l| l.forwarded.load(Ordering::Relaxed))
                .collect(),
            shard_alive: self
                .shared
                .links
                .iter()
                .map(|l| l.alive.load(Ordering::SeqCst))
                .collect(),
        }
    }

    /// Force-kills one **supervised** shard process — the
    /// failure-injection hook behind the redispatch tests. No-op for
    /// routers over external shard addresses.
    pub fn kill_shard(&mut self, index: usize) -> std::io::Result<()> {
        match self.supervised.as_mut() {
            Some(set) => set.kill(index),
            None => Ok(()),
        }
    }

    /// Blocks until a client sends a `shutdown` request (the serve
    /// binary's main loop in router mode).
    pub fn wait_for_shutdown_request(&self) {
        self.shared.front.wait_for_shutdown();
    }

    /// Gracefully shuts the whole tier down: stop accepting, forward
    /// everything queued, wait (bounded) for in-flight responses, ask every
    /// live shard to drain and exit, reap supervised processes, join all
    /// threads.
    pub fn shutdown(mut self) -> RouterStats {
        self.shared.request_shutdown();
        if let Some(pool) = self.forwarders.take() {
            pool.shutdown();
        }
        self.drain_inflight();
        self.shared.probe_stop.store(true, Ordering::SeqCst);
        self.finish()
    }

    /// Waits for in-flight requests, erroring out whatever remains after
    /// the drain timeout (a hung shard must not wedge shutdown forever).
    fn drain_inflight(&self) {
        let deadline = Instant::now() + self.shared.config.drain_timeout;
        let mut inflight = self.shared.lock_inflight();
        while !inflight.is_empty() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) = self
                .shared
                .idle
                .wait_timeout(inflight, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            inflight = guard;
        }
        let stranded: Vec<Inflight> = std::mem::take(&mut *inflight).into_values().collect();
        drop(inflight);
        for entry in stranded {
            fail_entry(&self.shared, entry, "router shut down before a response");
        }
    }

    /// Sends every live shard a `shutdown`, joins all router threads and
    /// reaps supervised shard processes.
    fn finish(&mut self) -> RouterStats {
        while let Some(r) = self.shared.queue.try_pop() {
            let _ = r.reply.send(Response {
                id: r.request.id,
                body: ResponseBody::ShuttingDown,
            });
        }
        for shard in 0..self.shared.links.len() {
            if !self.shared.links[shard].alive.load(Ordering::SeqCst) {
                continue;
            }
            let id = self.shared.fresh_id();
            if let Ok(frame) = encode_request_parts(id, &RequestBody::Shutdown) {
                let _ = write_to_shard(&self.shared, shard, &frame);
            }
        }
        // A well-behaved shard closes its connection after the shutdown
        // acknowledgement, ending its reader; a wedged one must not hang
        // the router forever — after the grace period its channel is
        // force-closed so the join below always completes.
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.shard_readers.iter().any(|h| !h.is_finished()) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        for shard in 0..self.shared.links.len() {
            fail_shard(&self.shared, shard);
        }
        for handle in std::mem::take(&mut self.shard_readers) {
            let _ = handle.join();
        }
        if let Some(mut set) = self.supervised.take() {
            let _ = set.wait_all(Duration::from_secs(30));
        }
        if let Some(handle) = self.prober.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        self.stats()
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shared.request_shutdown();
        self.shared.probe_stop.store(true, Ordering::SeqCst);
        if let Some(pool) = self.forwarders.take() {
            drop(pool);
        }
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preference_orders_are_deterministic_permutations() {
        for shards in 1..=8usize {
            for fp in [0u64, 1, 42, u64::MAX, 0x9e37_79b9] {
                let a = shard_preference(fp, shards);
                assert_eq!(a, shard_preference(fp, shards), "stable per (fp, n)");
                let mut sorted = a.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..shards).collect::<Vec<_>>(), "a permutation");
            }
        }
    }

    #[test]
    fn preference_spreads_fingerprints_across_shards() {
        let shards = 4usize;
        let mut first_choice = vec![0usize; shards];
        for fp in 0..256u64 {
            first_choice[shard_preference(fp.wrapping_mul(0x2545_f491_4f6c_dd1d), shards)[0]] += 1;
        }
        for (s, &count) in first_choice.iter().enumerate() {
            assert!(
                count > 256 / shards / 4,
                "shard {s} starves: {first_choice:?}"
            );
        }
    }
}
