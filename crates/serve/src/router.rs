//! The shard router: one front port fanned out over `N` backend `serve`
//! processes.
//!
//! A single serve process caps the machine at one request queue, one
//! [`camo_litho::ContextCache`] and one failure domain. The router
//! multiplies all three while keeping the wire protocol *identical* — a
//! client cannot tell a router from a plain server, and routed results are
//! **bit-identical** to direct single-process serving (the determinism
//! contract makes every shard compute the same bits from the same spec).
//!
//! # Thread anatomy
//!
//! ```text
//!                 ┌──────────────────────── router process ───────────────────────┐
//!  client ──TCP──▶ acceptor ─▶ reader ──try_push──▶ BoundedQueue ──pop──▶ forwarders │
//!                 │              │ full → Busy{retry_after_ms}        (ServicePool) │
//!                 │              ▼                                        │ route by │
//!                 │            writer ◀── responses (id-translated) ──┐  │ litho    │
//!                 │                                                   │  ▼ fingerprint
//!                 │   prober ──ping/pong──▶ ┌────────┐  shard reader ┴─ shard writer
//!                 └─────────────────────────│ shard 0│◀───────────────────────────┘
//!                      (per-shard health)   │ shard 1│  … one TCP channel per shard
//!                                           └────────┘
//! ```
//!
//! * Client-facing threads mirror [`crate::server`]: an acceptor with a
//!   connection cap, one reader and one writer per connection, and a
//!   bounded request queue whose overflow answers a typed
//!   [`ResponseBody::Busy`] rejection.
//! * **Forwarders** are jobs on a [`camo_runtime::ServicePool`]. Each pops
//!   a request, computes its lithography fingerprint
//!   ([`camo_litho::LithoConfig::fingerprint`] via
//!   [`crate::exec::litho_spec`]), and writes it — under a fresh router id
//!   — to the shard that [`shard_preference`] ranks first among the live
//!   ones. Consistent routing means every configuration's requests land on
//!   one shard, which therefore keeps a **hot context** for it.
//! * One **shard reader** per backend demultiplexes responses: router ids
//!   are translated back to client ids and forwarded to the owning
//!   connection's writer. Sweep cases stream through one by one.
//! * The **prober** pings every live shard on an interval. A shard that
//!   stops answering within the probe timeout — or whose connection drops,
//!   or which sends a frame that does not decode — is marked dead and every
//!   request in flight on it is **redispatched** to the next shard in its
//!   preference order. Sweeps that already streamed some cases to the
//!   client resend only the missing indices (bit-identical recomputation
//!   makes the dedup exact).
//!
//! # Failure semantics
//!
//! * `busy` from a shard is propagated to the client unchanged — the shard
//!   tier never converts backpressure into blocking.
//! * A dead shard is routed around immediately (its in-flight work is
//!   redispatched), and — when the tier is supervised ([`route_spawned`]) —
//!   **respawned** by the supervisor thread under the
//!   [`RespawnPolicy`]: capped exponential backoff between attempts, and a
//!   flap-detection [`FlapBreaker`] that *benches* a shard which keeps
//!   dying (it stays down, is reported on stderr and in `metrics`, and
//!   never burns further respawn attempts). A reborn shard rejoins its old
//!   slot in the rendezvous order, so its fingerprints move back on the
//!   next request and rewarm its context.
//! * Every shard connection carries an **epoch**: stale failure reports
//!   from a previous incarnation's reader cannot kill the fresh process.
//! * When every shard is dead, in-flight and new requests complete with a
//!   typed [`ErrorCode::Internal`] error.
//! * The `restart` wire request rolls the tier one shard at a time: drain
//!   the shard (siblings absorb its fingerprints bit-identically), wait
//!   for a graceful exit, respawn, reconnect, move on. The `restarted`
//!   acknowledgement means the whole tier is whole again.
//! * The `metrics` wire request answers a [`MetricsReport`] aggregating
//!   router counters, per-request-kind latency histograms and per-shard
//!   status (the prober's probes double as metrics fetches, so shard
//!   self-reports are cached and cost nothing extra).
//! * Shutdown drains in order: stop accepting, forward everything queued,
//!   wait for in-flight work (bounded by
//!   [`RouterConfig::drain_timeout`]), then send each live shard a
//!   `shutdown` request and reap the supervised processes.

use crate::error::ServeError;
use crate::exec::litho_spec;
use crate::front::{acceptor_loop, AdmittedRequest, FrontHandler, FrontState, Outbound};
use crate::shard::{ShardSet, ShardSpec};
use crate::stats::{KindLatencies, MetricsReport, ShardStatus};
use crate::supervise::{FlapBreaker, RespawnPolicy};
use crate::trace::{ShardTrace, Stage, TraceReport, Tracer};
use crate::wire::{
    decode_response, decode_response_v2, encode_request_parts, encode_request_parts_v2, read_frame,
    read_frame_v2, ErrorCode, Frame, FrameV2, RequestBody, Response, ResponseBody, WireError,
    WireVersion,
};
use camo_runtime::{BoundedQueue, ServicePool};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Front address clients connect to (port 0 picks an ephemeral port).
    pub addr: SocketAddr,
    /// Forwarding-queue depth; a full queue answers `busy` (backpressure).
    pub queue_depth: usize,
    /// Maximum simultaneously open client connections.
    pub max_connections: usize,
    /// Forwarder jobs draining the queue onto shard channels.
    pub forwarders: usize,
    /// Retry hint carried by router-side `busy` rejections, milliseconds.
    pub retry_after_ms: u64,
    /// Interval between health probes to each live shard.
    pub probe_interval: Duration,
    /// A shard whose probe goes unanswered this long is declared dead.
    pub probe_timeout: Duration,
    /// Upper bound on waiting for in-flight requests at shutdown; requests
    /// still unanswered afterwards complete with a typed internal error.
    pub drain_timeout: Duration,
    /// The supervised-respawn schedule (backoff between respawn attempts
    /// plus the flap breaker). Only consulted when the tier is supervised
    /// ([`route_spawned`]); a router over external addresses never
    /// respawns.
    pub respawn: RespawnPolicy,
    /// Trace every Nth admitted request (`0` disables tracing). Sampled
    /// requests carry their `trace_id` in the forwarded frame so the shard
    /// records spans under the same id.
    pub trace_sample: u64,
    /// Highest wire version the client-facing front negotiates. Client
    /// connections always start in v1; [`WireVersion::V2`] (the default)
    /// accepts the `hello` upgrade, [`WireVersion::V1`] refuses it.
    pub wire: WireVersion,
    /// Highest wire version negotiated on the shard channels —
    /// independent of what any client speaks: the router re-encodes every
    /// forwarded request for its shard's negotiated version.
    pub shard_wire: WireVersion,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            queue_depth: 64,
            max_connections: 32,
            forwarders: 2,
            retry_after_ms: 50,
            probe_interval: Duration::from_millis(100),
            probe_timeout: Duration::from_secs(5),
            drain_timeout: Duration::from_secs(120),
            respawn: RespawnPolicy::default(),
            trace_sample: 0,
            wire: WireVersion::V2,
            shard_wire: WireVersion::V2,
        }
    }
}

impl RouterConfig {
    /// Rejects configurations that cannot work: zero capacities, zero
    /// probe/drain intervals, and a respawn policy whose backoff or
    /// breaker window is degenerate. Called by [`route`]/[`route_spawned`];
    /// the CLI surfaces the typed message before binding anything.
    pub fn validate(&self) -> Result<(), ServeError> {
        fn positive(name: &str, d: Duration) -> Result<(), ServeError> {
            if d == Duration::ZERO {
                return Err(ServeError::Config(format!("{name} must be positive")));
            }
            Ok(())
        }
        if self.queue_depth == 0 {
            return Err(ServeError::Config("queue depth must be at least 1".into()));
        }
        if self.max_connections == 0 {
            return Err(ServeError::Config(
                "connection cap must be at least 1".into(),
            ));
        }
        positive("probe interval", self.probe_interval)?;
        positive("probe timeout", self.probe_timeout)?;
        positive("drain timeout", self.drain_timeout)?;
        positive("respawn backoff", self.respawn.initial_backoff)?;
        positive("respawn backoff cap", self.respawn.max_backoff)?;
        if self.respawn.max_backoff < self.respawn.initial_backoff {
            return Err(ServeError::Config(
                "respawn backoff cap must be at least the initial backoff".into(),
            ));
        }
        positive("breaker window", self.respawn.breaker_window)?;
        if self.respawn.breaker_failures == 0 {
            return Err(ServeError::Config(
                "breaker failure threshold must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Counters exposed for logging, the bench harness and the affinity tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterStats {
    /// Client connections accepted.
    pub connections: usize,
    /// Requests rejected with router-side `busy` (queue full or connection
    /// cap).
    pub rejected: usize,
    /// Requests whose final response (or final sweep case) was forwarded.
    pub completed: usize,
    /// Requests re-sent to another shard after their shard died.
    pub redispatched: usize,
    /// Requests forwarded to each shard, in shard order (redispatches
    /// count again on the new shard).
    pub forwarded_per_shard: Vec<usize>,
    /// Liveness of each shard at the time of the snapshot.
    pub shard_alive: Vec<bool>,
    /// Successful supervised respawns of each shard, in shard order.
    pub respawns_per_shard: Vec<usize>,
    /// Whether each shard has been benched by the flap breaker (it keeps
    /// dying; the supervisor has given up on it).
    pub shard_benched: Vec<bool>,
}

/// The deterministic shard preference order for one lithography
/// fingerprint: shard indices ranked by rendezvous hashing, best first.
///
/// Every fingerprint ranks *all* shards, so routing degrades gracefully —
/// when the preferred shard dies, its traffic moves as one block to the
/// fingerprint's second choice (keeping per-configuration affinity) instead
/// of being scattered. Distinct fingerprints spread independently, so a
/// multi-configuration workload balances across the tier.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn shard_preference(fingerprint: u64, shards: usize) -> Vec<usize> {
    assert!(shards > 0, "a router needs at least one shard");
    let mut order: Vec<usize> = (0..shards).collect();
    order.sort_by_key(|&s| std::cmp::Reverse(mix(fingerprint, s as u64)));
    order
}

/// SplitMix64-style avalanche of `(fingerprint, shard)` — the rendezvous
/// weight. Vendored (offline build): any statistically decent mixer works,
/// it only has to be deterministic across processes.
fn mix(fingerprint: u64, shard: u64) -> u64 {
    let mut x = fingerprint ^ shard.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// One request in flight on a shard, kept until its final response is
/// forwarded so it can be redispatched if the shard dies.
struct Inflight {
    reply: Sender<Outbound>,
    client_id: u64,
    /// Tracing id assigned at admission (sampled requests only); forwarded
    /// in the shard frame and attached to every response hop.
    trace: Option<u64>,
    /// Shared with in-progress encodes so redispatch never clones payloads.
    body: Arc<RequestBody>,
    shard: usize,
    attempts: usize,
    /// Sweep case indices already forwarded to the client — after a
    /// redispatch, the replacement shard's identical stream is deduplicated
    /// against this set.
    forwarded_cases: BTreeSet<usize>,
    /// Case count, learned from the first case frame.
    total_cases: Option<usize>,
    /// When the request was admitted at the front (latency histograms
    /// include queue wait and any redispatch detour).
    admitted_at: Instant,
    /// The request kind, for the per-kind latency histogram.
    kind: &'static str,
}

/// The router's connection to one backend shard (one *incarnation* at a
/// time; respawn replaces the address, channel and epoch in place).
struct ShardLink {
    /// Current address — rewritten when a respawned incarnation binds a
    /// fresh ephemeral port.
    addr: Mutex<SocketAddr>, // lock-order: 64
    alive: AtomicBool,
    /// Incarnation counter, bumped on every successful (re)connect. A
    /// failure report carries the epoch it observed; a stale reader from a
    /// previous incarnation can therefore never kill the fresh process.
    epoch: AtomicUsize,
    /// Set by the flap breaker: the shard keeps dying and the supervisor
    /// has stopped respawning it. Cleared by a rolling `restart`.
    benched: AtomicBool,
    /// Set around a planned (rolling-restart) kill so the breaker does not
    /// count it as a crash and the supervisor does not race the restart.
    restarting: AtomicBool,
    /// Successful supervised respawns of this slot.
    respawns: AtomicUsize,
    /// Whether this incarnation's channel negotiated wire v2. Written
    /// before `alive` flips true (no forwarder can observe the channel
    /// mid-negotiation) and consulted — together with the epoch — on every
    /// forward, so a respawned incarnation that negotiated differently can
    /// never receive bytes encoded for its predecessor.
    wire_v2: AtomicBool,
    writer: Mutex<Option<BufWriter<TcpStream>>>, // lock-order: 62
    /// A clone used to shut the channel down so the shard reader unblocks.
    stream: Mutex<Option<TcpStream>>, // lock-order: 60
    forwarded: AtomicUsize,
    /// The shard's last self-report, cached from the prober's `metrics`
    /// probes and served under `ShardStatus` without extra round-trips.
    last_report: Mutex<Option<MetricsReport>>, // lock-order: 66
    /// Serialises liveness transitions (fail vs. reconnect) and guards the
    /// epoch check. Held only for the transition itself, never across I/O
    /// or redispatch.
    state: Mutex<()>, // lock-order: 55
}

impl ShardLink {
    fn addr(&self) -> SocketAddr {
        *self.addr.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// One outstanding health probe.
struct Probe {
    shard: usize,
    sent: Instant,
    /// The link epoch the probe was written under; answers and timeouts
    /// from other epochs are stale and dropped.
    epoch: usize,
}

/// Per-shard supervision state (attempt counter drives the backoff
/// schedule; the breaker benches flapping shards).
struct ShardSupervision {
    attempts: u32,
    next_attempt: Instant,
    breaker: FlapBreaker,
}

struct RouterShared {
    config: RouterConfig,
    queue: BoundedQueue<AdmittedRequest>,
    links: Vec<ShardLink>,
    front: FrontState,
    inflight: Mutex<BTreeMap<u64, Inflight>>, // lock-order: 40
    /// Notified whenever `inflight` shrinks (the drain wait).
    idle: Condvar,
    /// Outstanding health probes by router id.
    probes: Mutex<BTreeMap<u64, Probe>>, // lock-order: 45
    next_id: AtomicU64,
    probe_stop: AtomicBool,
    completed: AtomicUsize,
    redispatched: AtomicUsize,
    /// Most requests ever simultaneously in flight on the shard tier.
    in_flight_high_water: AtomicUsize,
    /// Per-request-kind latency histograms (admission → final response).
    latency: KindLatencies,
    /// The router's tracing plane: sampling at admission, router-side span
    /// recording, and the flight recorder the `trace` request snapshots.
    tracer: Arc<Tracer>,
    /// True when the router owns the shard processes ([`route_spawned`]).
    /// Plain bool (not "is the set present") so [`fail_shard`] never has
    /// to take the `shard_set` lock.
    supervised: bool,
    /// The supervised process set; `None` for routers over external
    /// addresses. Lock order: `shard_set` before any `ShardLink::state`.
    shard_set: Mutex<Option<ShardSet>>, // lock-order: 20
    /// Reader threads for every incarnation ever connected (the supervisor
    /// adds one per respawn); all joined at shutdown.
    reader_handles: Mutex<Vec<JoinHandle<()>>>, // lock-order: 35
    supervision: Mutex<Vec<ShardSupervision>>, // lock-order: 30
    /// Serialises rolling restarts (two concurrent `restart` requests must
    /// not interleave their drains).
    restart_lock: Mutex<()>, // lock-order: 10
    /// Back-reference for [`FrontHandler`] hooks that must spawn threads
    /// (reconnect during a rolling restart).
    self_weak: OnceLock<Weak<RouterShared>>,
}

impl RouterShared {
    fn lock_inflight(&self) -> std::sync::MutexGuard<'_, BTreeMap<u64, Inflight>> {
        self.inflight.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_probes(&self) -> std::sync::MutexGuard<'_, BTreeMap<u64, Probe>> {
        self.probes.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_shard_set(&self) -> std::sync::MutexGuard<'_, Option<ShardSet>> {
        self.shard_set
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_supervision(&self) -> std::sync::MutexGuard<'_, Vec<ShardSupervision>> {
        self.supervision
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_reader_handles(&self) -> std::sync::MutexGuard<'_, Vec<JoinHandle<()>>> {
        self.reader_handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn fresh_id(&self) -> u64 {
        // Starts at 1: id 0 is the protocol's "unattributable" marker.
        self.next_id.fetch_add(1, Ordering::Relaxed) + 1 // relaxed-ok: unique-id counter; uniqueness needs only atomicity
    }

    fn alive_count(&self) -> usize {
        self.links
            .iter()
            .filter(|l| l.alive.load(Ordering::SeqCst))
            .count()
    }

    fn request_shutdown(&self) {
        self.queue.close();
        self.front.begin_shutdown();
    }
}

impl FrontHandler for RouterShared {
    fn front(&self) -> &FrontState {
        &self.front
    }

    fn queue(&self) -> &BoundedQueue<AdmittedRequest> {
        &self.queue
    }

    fn on_shutdown_request(&self) {
        self.request_shutdown();
    }

    fn metrics(&self) -> ResponseBody {
        let shards: Vec<ShardStatus> = self
            .links
            .iter()
            .enumerate()
            .map(|(index, link)| {
                let report = link
                    .last_report
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone();
                ShardStatus {
                    index,
                    alive: link.alive.load(Ordering::SeqCst),
                    benched: link.benched.load(Ordering::SeqCst),
                    forwarded: link.forwarded.load(Ordering::Relaxed), // relaxed-ok: stats counter; reads are reporting-only
                    respawns: link.respawns.load(Ordering::Relaxed), // relaxed-ok: stats counter; reads are reporting-only
                    queue_depth: report.as_ref().map_or(0, |r| r.queue_depth),
                    in_flight: report.as_ref().map_or(0, |r| r.in_flight),
                    in_flight_high_water: report.as_ref().map_or(0, |r| r.in_flight_high_water),
                    completed: report.as_ref().map_or(0, |r| r.completed),
                    busy_rejected: report.as_ref().map_or(0, |r| r.busy_rejected),
                }
            })
            .collect();
        ResponseBody::Metrics(MetricsReport {
            role: "router".into(),
            simd_arch: camo_litho::simd::active().name().into(),
            queue_depth: self.queue.len(),
            queue_high_water: self.queue.high_water(),
            in_flight: self.lock_inflight().len(),
            in_flight_high_water: self.in_flight_high_water.load(Ordering::Relaxed), // relaxed-ok: stats gauge; reads are reporting-only
            completed: self.completed.load(Ordering::Relaxed), // relaxed-ok: stats counter; reads are reporting-only
            busy_rejected: self.front.rejected.load(Ordering::Relaxed), // relaxed-ok: stats counter; reads are reporting-only
            redispatched: self.redispatched.load(Ordering::Relaxed), // relaxed-ok: stats counter; reads are reporting-only
            respawns: shards.iter().map(|s| s.respawns).sum(),
            latency: self.latency.snapshot(),
            stage_latency: self.tracer.stage_latency(),
            shards,
        })
    }

    fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    fn trace(&self) -> ResponseBody {
        // The router's own spans, then each live shard's — pulled over
        // short-lived dedicated connections (a rare admin pull must not
        // thread through the forwarding channels or take any router lock).
        let mut report = self.tracer.report("router");
        for (index, link) in self.links.iter().enumerate() {
            if !link.alive.load(Ordering::SeqCst) {
                continue;
            }
            if let Some(shard_report) = pull_shard_trace(link.addr()) {
                report.shards.push(ShardTrace {
                    index,
                    dropped: shard_report.dropped,
                    spans: shard_report.spans,
                });
            }
        }
        ResponseBody::Trace(report)
    }

    fn wire_v2_enabled(&self) -> bool {
        self.config.wire == WireVersion::V2
    }

    fn restart(&self, shard: Option<usize>) -> ResponseBody {
        if !self.supervised {
            return ResponseBody::Error {
                code: ErrorCode::BadRequest,
                message: "this router supervises no shard processes; \
                          external shards cannot be restarted"
                    .into(),
            };
        }
        let Some(me) = self.self_weak.get().and_then(Weak::upgrade) else {
            return ResponseBody::Error {
                code: ErrorCode::Internal,
                message: "router is shutting down".into(),
            };
        };
        if let Some(index) = shard {
            if index >= self.links.len() {
                return ResponseBody::Error {
                    code: ErrorCode::BadRequest,
                    message: format!(
                        "shard index {index} out of range (tier has {} shards)",
                        self.links.len()
                    ),
                };
            }
        }
        // Serialise whole rolls: two concurrent restarts draining different
        // shards at once could take the tier below quorum.
        let _serial = self
            .restart_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let targets: Vec<usize> = match shard {
            Some(index) => vec![index],
            None => (0..self.links.len()).collect(),
        };
        let mut restarted = Vec::new();
        for index in targets {
            match restart_one(&me, index) {
                Ok(()) => restarted.push(index),
                Err(e) => {
                    return ResponseBody::Error {
                        code: ErrorCode::Internal,
                        message: format!(
                            "rolling restart failed at shard {index} \
                             (restarted so far: {restarted:?}): {e}"
                        ),
                    };
                }
            }
        }
        ResponseBody::Restarted { shards: restarted }
    }
}

/// Pulls one shard's flight-recorder snapshot over a dedicated short-lived
/// connection. Trace pulls are rare admin reads: a fresh connection keeps
/// them off the forwarding channels (no writer-lock contention, no frame
/// interleaving with data-plane traffic) and the tight timeouts keep a
/// wedged shard from stalling the pull for the rest of the tier. Any
/// failure simply omits the shard from the merged report.
fn pull_shard_trace(addr: SocketAddr) -> Option<TraceReport> {
    let timeout = Duration::from_secs(2);
    let stream = TcpStream::connect_timeout(&addr, timeout).ok()?;
    stream.set_read_timeout(Some(timeout)).ok()?;
    stream.set_write_timeout(Some(timeout)).ok()?;
    let frame = encode_request_parts(1, &RequestBody::Trace, None).ok()?;
    let mut writer = BufWriter::new(stream.try_clone().ok()?);
    writer.write_all(frame.as_bytes()).ok()?;
    writer.write_all(b"\n").ok()?;
    writer.flush().ok()?;
    let mut reader = BufReader::new(stream);
    match read_frame(&mut reader).ok()?? {
        Frame::Line(line) => match decode_response(&line).ok()?.body {
            ResponseBody::Trace(report) => Some(report),
            _ => None,
        },
        Frame::Oversized { .. } => None,
    }
}

/// A running router; [`Self::shutdown`] is the graceful path.
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    acceptor: Option<JoinHandle<()>>,
    forwarders: Option<ServicePool>,
    prober: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

/// Starts a router over externally managed shard addresses (tests drive
/// this directly; production spawns go through [`route_spawned`]). Such a
/// tier is never respawned: a dead external shard stays routed around.
///
/// # Panics
///
/// Panics if `shards` is empty.
pub fn route(config: RouterConfig, shards: &[SocketAddr]) -> Result<RouterHandle, ServeError> {
    start(config, shards.to_vec(), None)
}

/// Adopts an already-spawned [`ShardSet`]: the router connects to every
/// shard, its supervisor respawns members that die (under
/// [`RouterConfig::respawn`]), and [`RouterHandle::shutdown`] drains and
/// reaps the processes.
pub fn route_spawned(config: RouterConfig, shards: ShardSet) -> Result<RouterHandle, ServeError> {
    let addrs = shards.addrs();
    start(config, addrs, Some(shards))
}

fn start(
    config: RouterConfig,
    addrs: Vec<SocketAddr>,
    supervised: Option<ShardSet>,
) -> Result<RouterHandle, ServeError> {
    assert!(!addrs.is_empty(), "a router needs at least one shard");
    config.validate()?;
    let listener = TcpListener::bind(config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let links: Vec<ShardLink> = addrs
        .iter()
        .map(|&addr| ShardLink {
            addr: Mutex::new(addr),
            alive: AtomicBool::new(false),
            epoch: AtomicUsize::new(0),
            benched: AtomicBool::new(false),
            restarting: AtomicBool::new(false),
            respawns: AtomicUsize::new(0),
            wire_v2: AtomicBool::new(false),
            writer: Mutex::new(None),
            stream: Mutex::new(None),
            forwarded: AtomicUsize::new(0),
            last_report: Mutex::new(None),
            state: Mutex::new(()),
        })
        .collect();
    let shard_count = links.len();
    let forwarder_count = config.forwarders.max(1);
    let supervision = (0..shard_count)
        .map(|_| ShardSupervision {
            attempts: 0,
            next_attempt: Instant::now(),
            breaker: config.respawn.breaker(),
        })
        .collect();
    let shared = Arc::new(RouterShared {
        queue: BoundedQueue::new(config.queue_depth),
        links,
        front: FrontState::new(config.max_connections, config.retry_after_ms),
        inflight: Mutex::new(BTreeMap::new()),
        idle: Condvar::new(),
        probes: Mutex::new(BTreeMap::new()),
        next_id: AtomicU64::new(0),
        probe_stop: AtomicBool::new(false),
        completed: AtomicUsize::new(0),
        redispatched: AtomicUsize::new(0),
        in_flight_high_water: AtomicUsize::new(0),
        latency: KindLatencies::new(),
        tracer: Arc::new(Tracer::new(config.trace_sample)),
        supervised: supervised.is_some(),
        shard_set: Mutex::new(supervised),
        reader_handles: Mutex::new(Vec::new()),
        supervision: Mutex::new(supervision),
        restart_lock: Mutex::new(()),
        self_weak: OnceLock::new(),
        config,
    });
    let _ = shared.self_weak.set(Arc::downgrade(&shared));

    // Connect every shard channel up front; a shard that refuses now is
    // simply dead from the start (the tier still serves on the others, and
    // a supervised tier will respawn it).
    for index in 0..shared.links.len() {
        connect_shard(&shared, index);
    }
    if shared.alive_count() == 0 {
        return Err(fail_start(
            &shared,
            None,
            Vec::new(),
            "shard channels",
            io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "no shard accepted the router's connection",
            ),
        ));
    }

    let pool = match ServicePool::new(forwarder_count, forwarder_count) {
        Ok(pool) => pool,
        Err(e) => {
            return Err(fail_start(
                &shared,
                None,
                Vec::new(),
                "forwarder pool",
                e.source,
            ))
        }
    };
    for _ in 0..forwarder_count {
        let worker = Arc::clone(&shared);
        if pool.submit(move || forward_loop(&worker)).is_err() {
            return Err(fail_start(
                &shared,
                Some(pool),
                Vec::new(),
                "forwarder",
                io::Error::other("forwarder pool rejected a fresh job"),
            ));
        }
    }

    let prober = {
        let worker = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("camo-router-prober".into())
            .spawn(move || prober_loop(&worker))
    };
    let prober = match prober {
        Ok(handle) => handle,
        Err(source) => {
            return Err(fail_start(
                &shared,
                Some(pool),
                Vec::new(),
                "prober",
                source,
            ))
        }
    };

    let supervisor = if shared.supervised {
        let worker = Arc::clone(&shared);
        match std::thread::Builder::new()
            .name("camo-router-supervisor".into())
            .spawn(move || supervisor_loop(&worker))
        {
            Ok(handle) => Some(handle),
            Err(source) => {
                return Err(fail_start(
                    &shared,
                    Some(pool),
                    vec![prober],
                    "supervisor",
                    source,
                ));
            }
        }
    } else {
        None
    };

    let acceptor = {
        let worker = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("camo-router-acceptor".into())
            .spawn(move || acceptor_loop(listener, &worker))
    };
    let acceptor = match acceptor {
        Ok(handle) => handle,
        Err(source) => {
            let mut threads = vec![prober];
            threads.extend(supervisor);
            return Err(fail_start(&shared, Some(pool), threads, "acceptor", source));
        }
    };

    Ok(RouterHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        forwarders: Some(pool),
        prober: Some(prober),
        supervisor,
    })
}

/// Unwinds a partially started router — no thread, process or socket may
/// outlive a failed [`start`] — and converts the cause into a typed error.
fn fail_start(
    shared: &Arc<RouterShared>,
    pool: Option<ServicePool>,
    threads: Vec<JoinHandle<()>>,
    what: &'static str,
    source: io::Error,
) -> ServeError {
    shared.request_shutdown();
    shared.probe_stop.store(true, Ordering::SeqCst);
    if let Some(pool) = pool {
        pool.shutdown();
    }
    for shard in 0..shared.links.len() {
        fail_shard_now(shared, shard);
    }
    for handle in std::mem::take(&mut *shared.lock_reader_handles()) {
        let _ = handle.join();
    }
    for handle in threads {
        let _ = handle.join();
    }
    // Dropping the set kills and reaps any spawned shard processes.
    drop(shared.lock_shard_set().take());
    ServeError::Spawn { what, source }
}

/// Connects one shard channel, negotiates the shard-side wire version,
/// bumps the link epoch and spawns its reader (registered in the shared
/// reader list); `false` — and a dead link — when the shard is
/// unreachable.
fn connect_shard(shared: &Arc<RouterShared>, index: usize) -> bool {
    let link = &shared.links[index];
    let Ok(stream) = TcpStream::connect(link.addr()) else {
        return false;
    };
    // A wedged shard must not hang a forwarder behind a full send buffer.
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let Ok(read_half) = stream.try_clone() else {
        return false;
    };
    let Ok(closer) = stream.try_clone() else {
        return false;
    };
    // Negotiate BEFORE the link goes live: no forwarder can write a data
    // frame ahead of the hello (the shard only accepts it as the
    // connection's first frame), and the `wire_v2` flag is already settled
    // by the time `alive` flips true. The reader created here is handed to
    // the reader thread afterwards so any bytes it buffered survive.
    let mut writer = BufWriter::new(stream);
    let mut reader = BufReader::new(read_half);
    let v2 = shared.config.shard_wire == WireVersion::V2
        && negotiate_shard_v2(shared, &mut writer, &mut reader);
    let epoch = {
        // The transition lock orders this against a concurrent fail_shard:
        // whoever holds it sees a consistent (alive, epoch, channel) triple.
        let _state = link.state.lock().unwrap_or_else(PoisonError::into_inner);
        let epoch = link.epoch.load(Ordering::SeqCst) + 1;
        link.epoch.store(epoch, Ordering::SeqCst);
        *link.stream.lock().unwrap_or_else(PoisonError::into_inner) = Some(closer);
        *link.writer.lock().unwrap_or_else(PoisonError::into_inner) = Some(writer);
        link.wire_v2.store(v2, Ordering::SeqCst);
        link.alive.store(true, Ordering::SeqCst);
        epoch
    };
    let reader_thread = {
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name(format!("camo-router-shard-{index}"))
            .spawn(move || shard_reader_loop(&shared, index, epoch, reader, v2))
    };
    match reader_thread {
        Ok(handle) => {
            shared.lock_reader_handles().push(handle);
            true
        }
        Err(_) => {
            // No reader means no responses: a half-connected link must not
            // stay routable (or satisfy start()'s liveness check).
            fail_shard(shared, index, epoch);
            false
        }
    }
}

/// Sends the v1 `hello` on a freshly connected (not yet live) shard
/// channel and waits briefly for the verdict. `true` only on an explicit
/// `hello_ack`; a refusal, timeout or transport error keeps the channel on
/// v1 (a late ack would surface as an unknown-id frame and be dropped).
fn negotiate_shard_v2(
    shared: &RouterShared,
    writer: &mut BufWriter<TcpStream>,
    reader: &mut BufReader<TcpStream>,
) -> bool {
    let hello_id = shared.fresh_id();
    let Ok(frame) = encode_request_parts(hello_id, &RequestBody::Hello { version: 2 }, None) else {
        return false;
    };
    if writer.write_all(frame.as_bytes()).is_err()
        || writer.write_all(b"\n").is_err()
        || writer.flush().is_err()
    {
        return false;
    }
    // Bound the wait: a shard that never answers must not wedge connect
    // (the probe plane would otherwise catch it only much later).
    let _ = reader
        .get_ref()
        .set_read_timeout(Some(Duration::from_secs(5)));
    let upgraded = match read_frame(reader) {
        Ok(Some(Frame::Line(line))) => matches!(
            decode_response(&line),
            Ok(Response {
                id,
                body: ResponseBody::HelloAck { .. },
            }) if id == hello_id
        ),
        _ => false,
    };
    let _ = reader.get_ref().set_read_timeout(None);
    upgraded
}

// ---------------------------------------------------------------------------
// Forwarding
// ---------------------------------------------------------------------------

fn forward_loop(shared: &RouterShared) {
    while let Some(routed) = shared.queue.pop() {
        let router_id = shared.fresh_id();
        if let Some(id) = routed.request.trace {
            shared
                .tracer
                .record_since(id, Stage::QueueWait, routed.admitted_at);
        }
        let entry = Inflight {
            reply: routed.reply,
            client_id: routed.request.id,
            trace: routed.request.trace,
            kind: routed.request.body.kind(),
            body: Arc::new(routed.request.body),
            shard: usize::MAX,
            attempts: 0,
            forwarded_cases: BTreeSet::new(),
            total_cases: None,
            admitted_at: routed.admitted_at,
        };
        let depth = {
            let mut inflight = shared.lock_inflight();
            inflight.insert(router_id, entry);
            inflight.len()
        };
        shared
            .in_flight_high_water
            .fetch_max(depth, Ordering::Relaxed); // relaxed-ok: stats gauge; reads are reporting-only
        send_to_shard(shared, router_id);
    }
}

/// (Re)dispatches one in-flight request to the best live shard in its
/// fingerprint's preference order; exhausting the tier completes the
/// request with a typed internal error.
fn send_to_shard(shared: &RouterShared, router_id: u64) {
    // Snapshot the body under the lock, then fingerprint and encode
    // outside it — encoding can touch a MiB-scale frame and must not
    // stall response delivery tier-wide. A concurrent redispatch can
    // double-send the same router id at worst; the response path
    // tolerates duplicates (stale-shard and case-index dedup). The body
    // never changes after admission, so one encode covers every retry of
    // the write loop below.
    let (body, trace) = {
        let inflight = shared.lock_inflight();
        match inflight.get(&router_id) {
            Some(entry) => (Arc::clone(&entry.body), entry.trace),
            None => return, // completed concurrently
        }
    };
    let fingerprint = litho_spec(&body)
        .map(|spec| spec.to_config().fingerprint())
        .unwrap_or(0);
    let preference = shard_preference(fingerprint, shared.links.len());
    // Encoded lazily per shard wire version and cached: every retry of the
    // loop below reuses the bytes for whichever version its shard speaks.
    let mut encoded: [Option<Vec<u8>>; 2] = [None, None];
    loop {
        let shard = {
            let mut inflight = shared.lock_inflight();
            let Some(entry) = inflight.get_mut(&router_id) else {
                return; // completed concurrently
            };
            if entry.attempts >= shared.links.len() {
                // The guard is held, so the entry just observed via
                // get_mut is still there; a miss only means someone
                // completed it, which makes this dispatch a no-op.
                let Some(entry) = inflight.remove(&router_id) else {
                    return;
                };
                drop(inflight);
                fail_entry(shared, entry, "request redispatched too many times");
                return;
            }
            let choice = preference
                .iter()
                .copied()
                .find(|&s| shared.links[s].alive.load(Ordering::SeqCst));
            let Some(shard) = choice else {
                let Some(entry) = inflight.remove(&router_id) else {
                    return; // completed concurrently; nothing left to fail
                };
                drop(inflight);
                fail_entry(shared, entry, "every shard is dead");
                return;
            };
            entry.shard = shard;
            entry.attempts += 1;
            shard
        };
        // Capture the epoch before the wire flag and before the write: if
        // the shard is respawned in between, the stale epoch makes the
        // write refuse (it checks under the writer lock) and the fail a
        // no-op, so the loop simply retries with fresh state.
        let epoch = shared.links[shard].epoch.load(Ordering::SeqCst);
        let v2 = shared.links[shard].wire_v2.load(Ordering::SeqCst);
        let frame = match &mut encoded[usize::from(v2)] {
            Some(frame) => &*frame,
            slot => {
                let wire = if v2 { WireVersion::V2 } else { WireVersion::V1 };
                match encode_shard_frame(router_id, &body, trace, wire) {
                    Ok(frame) => &*slot.insert(frame),
                    Err(e) => {
                        if let Some(entry) = shared.lock_inflight().remove(&router_id) {
                            fail_entry(shared, entry, &format!("unforwardable request: {e}"));
                        }
                        return;
                    }
                }
            }
        };
        let forward_start = trace.map(|_| Instant::now());
        if write_to_shard(shared, shard, epoch, frame) {
            shared.links[shard]
                .forwarded
                .fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter; reads are reporting-only
            if let (Some(id), Some(start)) = (trace, forward_start) {
                shared.tracer.record_since(id, Stage::Forward, start);
            }
            return;
        }
        // The write failed: the shard is dead. `fail_shard` redispatches
        // everything assigned to it — including this entry — so the loop
        // here only spins again if the entry is somehow still unassigned.
        fail_shard(shared, shard, epoch);
        if shared.lock_inflight().get(&router_id).map(|e| e.shard) != Some(shard) {
            return;
        }
    }
}

/// Encodes one forwarded frame for a shard channel's negotiated version
/// (v1 frames carry their newline so both variants are write-ready bytes).
fn encode_shard_frame(
    id: u64,
    body: &RequestBody,
    trace: Option<u64>,
    wire: WireVersion,
) -> Result<Vec<u8>, WireError> {
    match wire {
        WireVersion::V1 => encode_request_parts(id, body, trace).map(|mut frame| {
            frame.push('\n');
            frame.into_bytes()
        }),
        WireVersion::V2 => encode_request_parts_v2(id, body, trace),
    }
}

/// Writes one pre-encoded frame to a shard channel; false when the channel
/// is down or no longer the incarnation the bytes were encoded for.
fn write_to_shard(shared: &RouterShared, shard: usize, epoch: usize, frame: &[u8]) -> bool {
    let link = &shared.links[shard];
    if !link.alive.load(Ordering::SeqCst) {
        return false;
    }
    // The writer lock IS the shard channel: holding it across the write
    // serialises concurrent forwarders onto one socket, and the stream's
    // 10s write timeout keeps a wedged shard from pinning it. The epoch
    // check under the lock closes the respawn race — bytes encoded for one
    // incarnation's wire version never reach a successor that may have
    // negotiated differently.
    // io-ok: serialising the socket is this lock's entire purpose.
    let mut writer = link.writer.lock().unwrap_or_else(PoisonError::into_inner);
    if link.epoch.load(Ordering::SeqCst) != epoch {
        return false;
    }
    let Some(w) = writer.as_mut() else {
        return false;
    };
    w.write_all(frame).is_ok() && w.flush().is_ok()
}

/// Completes one request with a typed internal error (shard tier failure).
fn fail_entry(shared: &RouterShared, entry: Inflight, message: &str) {
    // Count before the reply is handed to the writer so a client holding
    // the response always observes a `metrics` report that includes it.
    shared.completed.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter; reads are reporting-only
    let _ = entry.reply.send(Outbound::traced(
        Response {
            id: entry.client_id,
            body: ResponseBody::Error {
                code: ErrorCode::Internal,
                message: message.to_string(),
            },
        },
        entry.trace,
    ));
    shared.idle.notify_all();
}

/// Marks one shard dead, closes its channel so the reader unblocks, and
/// redispatches every request in flight on it. Idempotent, and a no-op
/// when `epoch` is stale — a lingering reader from a killed incarnation
/// can never take down the respawned process.
fn fail_shard(shared: &RouterShared, shard: usize, epoch: usize) {
    let link = &shared.links[shard];
    {
        let _state = link.state.lock().unwrap_or_else(PoisonError::into_inner);
        if link.epoch.load(Ordering::SeqCst) != epoch {
            return;
        }
        if !link.alive.swap(false, Ordering::SeqCst) {
            return;
        }
        if let Some(stream) = link
            .stream
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            let _ = stream.shutdown(Shutdown::Both);
        }
        link.writer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
    }
    shared
        .lock_probes()
        .retain(|_, probe| probe.shard != shard || probe.epoch != epoch);
    // An unplanned death of a supervised shard counts toward the flap
    // breaker (a planned rolling-restart kill does not). Recorded outside
    // the transition lock: the breaker shares a mutex with the supervisor.
    if shared.supervised && !link.restarting.load(Ordering::SeqCst) {
        let mut supervision = shared.lock_supervision();
        if supervision[shard].breaker.record(Instant::now())
            && !link.benched.swap(true, Ordering::SeqCst)
        {
            eprintln!(
                "router: shard {shard} benched — {} deaths within {:?}; \
                 it will not be respawned (send a `restart` request to retry)",
                shared.config.respawn.breaker_failures, shared.config.respawn.breaker_window
            );
        }
    }
    let stranded: Vec<u64> = shared
        .lock_inflight()
        .iter()
        .filter(|(_, e)| e.shard == shard)
        .map(|(&id, _)| id)
        .collect();
    for router_id in stranded {
        shared.redispatched.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter; reads are reporting-only
        send_to_shard(shared, router_id);
    }
}

/// [`fail_shard`] against the link's *current* epoch — for callers making
/// a fresh decision (shutdown, rolling restart) rather than reporting an
/// observation that might be stale.
fn fail_shard_now(shared: &RouterShared, shard: usize) {
    let epoch = shared.links[shard].epoch.load(Ordering::SeqCst);
    fail_shard(shared, shard, epoch);
}

// ---------------------------------------------------------------------------
// Shard responses
// ---------------------------------------------------------------------------

fn shard_reader_loop(
    shared: &Arc<RouterShared>,
    shard: usize,
    epoch: usize,
    mut reader: BufReader<TcpStream>,
    v2: bool,
) {
    // Ends on EOF, a transport error, or an oversized frame — the channel
    // is unusable either way — and on the protocol violations below.
    if v2 {
        while let Ok(Some(FrameV2::Frame { opcode, payload })) = read_frame_v2(&mut reader) {
            let response = match decode_response_v2(opcode, &payload) {
                Ok(response) => response,
                // A backend speaking garbage is a protocol violation, not
                // a client error: fail the shard, recompute elsewhere.
                Err(_) => break,
            };
            if !handle_shard_response(shared, shard, response) {
                break;
            }
        }
    } else {
        while let Ok(Some(Frame::Line(line))) = read_frame(&mut reader) {
            if line.trim().is_empty() {
                continue;
            }
            let response = match decode_response(&line) {
                Ok(response) => response,
                Err(_) => break,
            };
            if !handle_shard_response(shared, shard, response) {
                break;
            }
        }
    }
    // Carries this incarnation's epoch: if the shard has already been
    // respawned, this is a stale observation and a no-op.
    fail_shard(shared, shard, epoch);
}

/// Translates one shard response back to its client; false when the
/// response proves the shard must be failed.
fn handle_shard_response(shared: &RouterShared, shard: usize, response: Response) -> bool {
    // Id 0 means the shard could not decode a frame the router sent —
    // which the router never does; the channel is desynchronised.
    if response.id == 0 {
        return false;
    }
    if let Some(probe) = shared.lock_probes().remove(&response.id) {
        // Probes are `metrics` requests, so a healthy answer doubles as
        // the shard's self-report; a bare `pong` is also accepted. Any
        // other body under a probe id is a protocol violation.
        if probe.shard != shard {
            return false;
        }
        return match response.body {
            ResponseBody::Metrics(report) => {
                *shared.links[shard]
                    .last_report
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner) = Some(report);
                true
            }
            ResponseBody::Pong => true,
            _ => false,
        };
    }
    let mut inflight = shared.lock_inflight();
    let Some(entry) = inflight.get_mut(&response.id) else {
        // Late or duplicate frame for a request that already completed
        // (e.g. the tail of a redispatched sweep); drop it.
        return true;
    };
    if entry.shard != shard {
        // A frame raced the failover from the old shard; the replacement
        // shard owns this request now.
        return true;
    }
    let client_id = entry.client_id;
    match response.body {
        ResponseBody::CaseOutcome {
            index,
            total,
            name,
            outcome,
        } => {
            if entry.total_cases.get_or_insert(total) != &total || index >= total {
                return false; // inconsistent sweep stream
            }
            if !entry.forwarded_cases.insert(index) {
                return true; // already streamed before a redispatch
            }
            let done = entry.forwarded_cases.len() == total;
            let reply = entry.reply.clone();
            let trace = entry.trace;
            let sample = (entry.kind, entry.admitted_at);
            if done {
                inflight.remove(&response.id);
            }
            drop(inflight);
            // Sample and count before the final case reaches the writer so
            // a client holding the last response always observes a
            // `metrics` report that includes the sweep.
            if done {
                shared.latency.record(sample.0, sample.1.elapsed());
                shared.completed.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter; reads are reporting-only
            }
            let _ = reply.send(Outbound::traced(
                Response {
                    id: client_id,
                    body: ResponseBody::CaseOutcome {
                        index,
                        total,
                        name,
                        outcome,
                    },
                },
                trace,
            ));
            if done {
                shared.idle.notify_all();
            }
            true
        }
        // A shard announcing shutdown while it still owes work is dying;
        // fail it so the work is recomputed elsewhere.
        ResponseBody::ShuttingDown => false,
        body => {
            // Single-frame completions: outcome, evaluation, layout,
            // `busy` (typed backpressure propagated unchanged) and typed
            // errors all end the request. One exception: `busy` for a
            // sweep that already streamed cases to the client cannot be
            // forwarded — "never accepted" would contradict the results
            // the client already holds — so it completes as a typed error
            // instead.
            // The guard held since get_mut keeps the entry pinned; treat
            // a miss as a request that already completed.
            let Some(entry) = inflight.remove(&response.id) else {
                return true;
            };
            drop(inflight);
            let body = match body {
                ResponseBody::Busy { .. } if !entry.forwarded_cases.is_empty() => {
                    ResponseBody::Error {
                        code: ErrorCode::Internal,
                        message: "shard rejected a partially delivered sweep on failover".into(),
                    }
                }
                body => body,
            };
            // Busy rejections and typed errors are not latency samples:
            // the histogram measures served work, not refusal round-trips.
            if !matches!(body, ResponseBody::Busy { .. } | ResponseBody::Error { .. }) {
                shared
                    .latency
                    .record(entry.kind, entry.admitted_at.elapsed());
            }
            shared.completed.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter; reads are reporting-only
            let _ = entry.reply.send(Outbound::traced(
                Response {
                    id: client_id,
                    body,
                },
                entry.trace,
            ));
            shared.idle.notify_all();
            true
        }
    }
}

// ---------------------------------------------------------------------------
// Health probes
// ---------------------------------------------------------------------------

fn prober_loop(shared: &Arc<RouterShared>) {
    while !shared.probe_stop.load(Ordering::SeqCst) {
        let now = Instant::now();
        for shard in 0..shared.links.len() {
            let link = &shared.links[shard];
            if !link.alive.load(Ordering::SeqCst) {
                continue;
            }
            let epoch = link.epoch.load(Ordering::SeqCst);
            let (outstanding, timed_out) = {
                let mut probes = shared.lock_probes();
                // Probes written to a previous incarnation can never be
                // answered; drop them instead of timing out the fresh one.
                probes.retain(|_, p| p.shard != shard || p.epoch == epoch);
                let mut outstanding = false;
                let mut timed_out = false;
                for probe in probes.values() {
                    if probe.shard == shard {
                        outstanding = true;
                        if now.duration_since(probe.sent) > shared.config.probe_timeout {
                            timed_out = true;
                        }
                    }
                }
                (outstanding, timed_out)
            };
            if timed_out {
                fail_shard(shared, shard, epoch);
                continue;
            }
            if outstanding {
                continue;
            }
            // Probes are `metrics` requests: liveness and the shard's
            // self-report (queue depth, in-flight, counters) in one
            // round-trip, cached on the link for the router's own report.
            let id = shared.fresh_id();
            let wire = if link.wire_v2.load(Ordering::SeqCst) {
                WireVersion::V2
            } else {
                WireVersion::V1
            };
            let frame = match encode_shard_frame(id, &RequestBody::Metrics, None, wire) {
                Ok(frame) => frame,
                Err(_) => continue,
            };
            // Stamped at insertion, not with the sweep-top `now`: a write
            // stall on an earlier shard must not age this probe before it
            // is even sent (a healthy shard would look timed out).
            shared.lock_probes().insert(
                id,
                Probe {
                    shard,
                    sent: Instant::now(),
                    epoch,
                },
            );
            if !write_to_shard(shared, shard, epoch, &frame) {
                shared.lock_probes().remove(&id);
                fail_shard(shared, shard, epoch);
            }
        }
        std::thread::sleep(shared.config.probe_interval);
    }
}

// ---------------------------------------------------------------------------
// Supervision: respawn, breaker, rolling restart
// ---------------------------------------------------------------------------

/// The supervisor thread (supervised tiers only): respawns dead shards on
/// the [`RespawnPolicy`] backoff schedule, skipping benched shards and
/// shards mid-rolling-restart.
fn supervisor_loop(shared: &Arc<RouterShared>) {
    while !shared.probe_stop.load(Ordering::SeqCst) {
        for shard in 0..shared.links.len() {
            if shared.probe_stop.load(Ordering::SeqCst) {
                return;
            }
            let link = &shared.links[shard];
            if link.alive.load(Ordering::SeqCst)
                || link.benched.load(Ordering::SeqCst)
                || link.restarting.load(Ordering::SeqCst)
            {
                continue;
            }
            let due = {
                let supervision = shared.lock_supervision();
                Instant::now() >= supervision[shard].next_attempt
            };
            if due {
                attempt_respawn(shared, shard);
            }
        }
        std::thread::sleep(shared.config.probe_interval.min(Duration::from_millis(50)));
    }
}

/// One supervised respawn attempt. Success rearms the backoff schedule
/// (but keeps the breaker's failure history — a flapping shard that keeps
/// coming back still trips it); failure schedules the next attempt and
/// counts toward the breaker.
fn attempt_respawn(shared: &Arc<RouterShared>, shard: usize) {
    let respawned = {
        let mut set_guard = shared.lock_shard_set();
        let Some(set) = set_guard.as_mut() else {
            return;
        };
        set.respawn(shard)
    };
    match respawned {
        Ok(addr) => {
            *shared.links[shard]
                .addr
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = addr;
            if connect_shard(shared, shard) {
                shared.links[shard].respawns.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter; reads are reporting-only
                let mut supervision = shared.lock_supervision();
                supervision[shard].attempts = 0;
                supervision[shard].next_attempt = Instant::now();
                eprintln!("router: shard {shard} respawned at {addr}");
            } else {
                note_respawn_failure(shared, shard, "respawned shard refused the connection");
            }
        }
        Err(e) => note_respawn_failure(shared, shard, &e.to_string()),
    }
}

/// Books one failed respawn attempt: advance the backoff schedule and
/// count it toward the flap breaker (a shard whose *handshake* keeps
/// failing — bad port file, instant exit — is as flappy as one that
/// crashes after connecting).
fn note_respawn_failure(shared: &RouterShared, shard: usize, why: &str) {
    let policy = &shared.config.respawn;
    let backoff = policy.backoff();
    let mut supervision = shared.lock_supervision();
    let entry = &mut supervision[shard];
    entry.attempts = entry.attempts.saturating_add(1);
    entry.next_attempt = Instant::now() + backoff.delay(entry.attempts);
    let tripped = entry.breaker.record(Instant::now());
    drop(supervision);
    if tripped {
        if !shared.links[shard].benched.swap(true, Ordering::SeqCst) {
            eprintln!(
                "router: shard {shard} benched — {} failures within {:?} ({why}); \
                 it will not be respawned (send a `restart` request to retry)",
                policy.breaker_failures, policy.breaker_window
            );
        }
    } else {
        eprintln!("router: shard {shard} respawn failed ({why}); backing off");
    }
}

/// One step of a rolling restart: drain the shard (siblings absorb its
/// fingerprints — bit-identical recomputation makes that invisible), wait
/// briefly for a graceful exit, respawn, reconnect, rearm supervision.
fn restart_one(shared: &Arc<RouterShared>, shard: usize) -> io::Result<()> {
    let link = &shared.links[shard];
    link.restarting.store(true, Ordering::SeqCst);
    let result = (|| {
        if link.alive.load(Ordering::SeqCst) {
            // Ask nicely first so the shard drains its own queue, then
            // close the channel: in-flight work redispatches to siblings
            // and new work routes around the hole.
            let id = shared.fresh_id();
            let epoch = link.epoch.load(Ordering::SeqCst);
            let wire = if link.wire_v2.load(Ordering::SeqCst) {
                WireVersion::V2
            } else {
                WireVersion::V1
            };
            if let Ok(frame) = encode_shard_frame(id, &RequestBody::Shutdown, None, wire) {
                let _ = write_to_shard(shared, shard, epoch, &frame);
            }
            fail_shard_now(shared, shard);
        }
        let addr = {
            let mut set_guard = shared.lock_shard_set();
            let set = set_guard.as_mut().ok_or_else(|| {
                io::Error::new(io::ErrorKind::Unsupported, "no supervised shard set")
            })?;
            let _ = set.wait_one(shard, Duration::from_secs(2));
            set.respawn(shard)?
        };
        *link.addr.lock().unwrap_or_else(PoisonError::into_inner) = addr;
        if !connect_shard(shared, shard) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "respawned shard refused the router's connection",
            ));
        }
        link.respawns.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter; reads are reporting-only
        link.benched.store(false, Ordering::SeqCst);
        let mut supervision = shared.lock_supervision();
        supervision[shard].attempts = 0;
        supervision[shard].next_attempt = Instant::now();
        supervision[shard].breaker.reset();
        Ok(())
    })();
    link.restarting.store(false, Ordering::SeqCst);
    result
}

// ---------------------------------------------------------------------------
// Handle
// ---------------------------------------------------------------------------

impl RouterHandle {
    /// The bound front address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The current address of each shard, in shard order (respawned
    /// incarnations bind fresh ephemeral ports).
    pub fn shard_addrs(&self) -> Vec<SocketAddr> {
        self.shared.links.iter().map(|l| l.addr()).collect()
    }

    /// Current counters.
    pub fn stats(&self) -> RouterStats {
        RouterStats {
            connections: self.shared.front.connections.load(Ordering::Relaxed), // relaxed-ok: stats counter; reads are reporting-only
            rejected: self.shared.front.rejected.load(Ordering::Relaxed), // relaxed-ok: stats counter; reads are reporting-only
            completed: self.shared.completed.load(Ordering::Relaxed), // relaxed-ok: stats counter; reads are reporting-only
            redispatched: self.shared.redispatched.load(Ordering::Relaxed), // relaxed-ok: stats counter; reads are reporting-only
            forwarded_per_shard: self
                .shared
                .links
                .iter()
                .map(|l| l.forwarded.load(Ordering::Relaxed)) // relaxed-ok: stats counter; reads are reporting-only
                .collect(),
            shard_alive: self
                .shared
                .links
                .iter()
                .map(|l| l.alive.load(Ordering::SeqCst))
                .collect(),
            respawns_per_shard: self
                .shared
                .links
                .iter()
                .map(|l| l.respawns.load(Ordering::Relaxed)) // relaxed-ok: stats counter; reads are reporting-only
                .collect(),
            shard_benched: self
                .shared
                .links
                .iter()
                .map(|l| l.benched.load(Ordering::SeqCst))
                .collect(),
        }
    }

    /// The router's own [`MetricsReport`] — the same payload a `metrics`
    /// wire request answers, without a round-trip.
    pub fn metrics(&self) -> MetricsReport {
        match FrontHandler::metrics(&*self.shared) {
            ResponseBody::Metrics(report) => report,
            _ => unreachable!("router metrics always answers a metrics body"),
        }
    }

    /// Force-kills one **supervised** shard process — the
    /// failure-injection hook behind the redispatch and chaos tests. The
    /// supervisor will notice and respawn it (unless the breaker benches
    /// the slot first). No-op for routers over external shard addresses.
    pub fn kill_shard(&self, index: usize) -> std::io::Result<()> {
        match self.shared.lock_shard_set().as_mut() {
            Some(set) => set.kill(index),
            None => Ok(()),
        }
    }

    /// Runs `f` against the supervised launch spec (`None` for routers
    /// over external addresses) — the failure-injection hook behind the
    /// breaker tests: point the binary at something that corrupts its
    /// handshake and every respawn attempt fails.
    pub fn with_shard_spec<R>(&self, f: impl FnOnce(&mut ShardSpec) -> R) -> Option<R> {
        self.shared
            .lock_shard_set()
            .as_mut()
            .map(|set| f(set.spec_mut()))
    }

    /// Blocks until a client sends a `shutdown` request (the serve
    /// binary's main loop in router mode).
    pub fn wait_for_shutdown_request(&self) {
        self.shared.front.wait_for_shutdown();
    }

    /// Gracefully shuts the whole tier down: stop accepting, forward
    /// everything queued, wait (bounded) for in-flight responses, ask every
    /// live shard to drain and exit, reap supervised processes, join all
    /// threads.
    pub fn shutdown(mut self) -> RouterStats {
        self.shared.request_shutdown();
        if let Some(pool) = self.forwarders.take() {
            pool.shutdown();
        }
        self.drain_inflight();
        self.shared.probe_stop.store(true, Ordering::SeqCst);
        self.finish()
    }

    /// Waits for in-flight requests, erroring out whatever remains after
    /// the drain timeout (a hung shard must not wedge shutdown forever).
    fn drain_inflight(&self) {
        let deadline = Instant::now() + self.shared.config.drain_timeout;
        let mut inflight = self.shared.lock_inflight();
        while !inflight.is_empty() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) = self
                .shared
                .idle
                .wait_timeout(inflight, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            inflight = guard;
        }
        let stranded: Vec<Inflight> = std::mem::take(&mut *inflight).into_values().collect();
        drop(inflight);
        for entry in stranded {
            fail_entry(&self.shared, entry, "router shut down before a response");
        }
    }

    /// Sends every live shard a `shutdown`, joins all router threads and
    /// reaps supervised shard processes.
    fn finish(&mut self) -> RouterStats {
        // The supervisor goes first (probe_stop is already set): a respawn
        // racing the drain below could resurrect a shard after its
        // shutdown frame was sent.
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
        while let Some(r) = self.shared.queue.try_pop() {
            let _ = r.reply.send(Outbound::traced(
                Response {
                    id: r.request.id,
                    body: ResponseBody::ShuttingDown,
                },
                r.request.trace,
            ));
        }
        for shard in 0..self.shared.links.len() {
            let link = &self.shared.links[shard];
            if !link.alive.load(Ordering::SeqCst) {
                continue;
            }
            let id = self.shared.fresh_id();
            let epoch = link.epoch.load(Ordering::SeqCst);
            let wire = if link.wire_v2.load(Ordering::SeqCst) {
                WireVersion::V2
            } else {
                WireVersion::V1
            };
            if let Ok(frame) = encode_shard_frame(id, &RequestBody::Shutdown, None, wire) {
                let _ = write_to_shard(&self.shared, shard, epoch, &frame);
            }
        }
        // A well-behaved shard closes its connection after the shutdown
        // acknowledgement, ending its reader; a wedged one must not hang
        // the router forever — after the grace period its channel is
        // force-closed so the join below always completes.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let pending = self
                .shared
                .lock_reader_handles()
                .iter()
                .any(|h| !h.is_finished());
            if !pending || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        for shard in 0..self.shared.links.len() {
            fail_shard_now(&self.shared, shard);
        }
        for handle in std::mem::take(&mut *self.shared.lock_reader_handles()) {
            let _ = handle.join();
        }
        if let Some(mut set) = self.shared.lock_shard_set().take() {
            let _ = set.wait_all(Duration::from_secs(30));
        }
        if let Some(handle) = self.prober.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        self.stats()
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shared.request_shutdown();
        self.shared.probe_stop.store(true, Ordering::SeqCst);
        if let Some(pool) = self.forwarders.take() {
            drop(pool);
        }
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preference_orders_are_deterministic_permutations() {
        for shards in 1..=8usize {
            for fp in [0u64, 1, 42, u64::MAX, 0x9e37_79b9] {
                let a = shard_preference(fp, shards);
                assert_eq!(a, shard_preference(fp, shards), "stable per (fp, n)");
                let mut sorted = a.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..shards).collect::<Vec<_>>(), "a permutation");
            }
        }
    }

    #[test]
    fn preference_spreads_fingerprints_across_shards() {
        let shards = 4usize;
        let mut first_choice = vec![0usize; shards];
        for fp in 0..256u64 {
            first_choice[shard_preference(fp.wrapping_mul(0x2545_f491_4f6c_dd1d), shards)[0]] += 1;
        }
        for (s, &count) in first_choice.iter().enumerate() {
            assert!(
                count > 256 / shards / 4,
                "shard {s} starves: {first_choice:?}"
            );
        }
    }
}
