//! camo-trace: the serving tier's request-scoped tracing plane.
//!
//! A sampled request is assigned a **trace id** at admission; the id rides
//! the wire frame (`trace_id` field) from router to shard, and every hop
//! records typed [`SpanRecord`]s — admit, queue-wait, forward, shard-queue,
//! coalesce, context-fetch, the litho stages (rasterize, convolve, resist,
//! EPE, PV-band) and the response encode/write — into a lock-free
//! per-process ring buffer, the [`FlightRecorder`]. The recorder is a
//! *flight recorder*: it never blocks the request path, never allocates
//! after construction, and overwrites the oldest spans when full, so the
//! recent history of a misbehaving process is always pullable on demand via
//! the `trace` wire request (see `docs/WIRE_PROTOCOL.md` §4.9).
//!
//! The litho pipeline itself stays clock-free (camo-lint `determinism`):
//! it only announces stage boundaries through the injected
//! [`camo_litho::trace::TraceSink`]; [`RecorderSink`] here is the serving
//! side of that seam and is the only place litho stage boundaries meet a
//! clock.
//!
//! Sampling (`--trace-sample N`: every Nth admitted request) keeps the
//! steady-state cost of the plane at a branch plus a counter increment for
//! sampled-out requests; `perf_snapshot` prints an overhead row proving it.

use crate::stats::{KindLatency, StageLatencies};
use std::cell::RefCell;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Spans a flight recorder holds before wrapping (per process).
pub const DEFAULT_RECORDER_CAPACITY: usize = 8192;

/// Every span type the serving tier records. The first group is recorded
/// directly by the router/server request path; the litho group arrives
/// through [`RecorderSink`]; encode/write are recorded by the connection
/// writer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Decode-to-enqueue on the process that admitted the request.
    Admit,
    /// Router front queue: admission to forwarder pickup.
    QueueWait,
    /// Router forwarder: encode + write of the frame to the shard.
    Forward,
    /// Serving process queue: admission to dispatcher pickup.
    ShardQueue,
    /// Dispatcher drain + compatibility grouping for the batch.
    Coalesce,
    /// `ContextCache` lookup (context build on a miss).
    ContextFetch,
    /// Litho: coverage rasterisation.
    Rasterize,
    /// Litho: aerial-image convolution.
    Convolve,
    /// Litho: resist threshold evaluation.
    Resist,
    /// Litho: EPE measurement.
    Epe,
    /// Litho: PV-band area.
    PvBand,
    /// Response serialisation on the connection writer.
    Encode,
    /// Socket write + flush of the encoded response.
    Write,
}

impl Stage {
    /// Every stage, in request-lifecycle order.
    pub const ALL: [Stage; 13] = [
        Stage::Admit,
        Stage::QueueWait,
        Stage::Forward,
        Stage::ShardQueue,
        Stage::Coalesce,
        Stage::ContextFetch,
        Stage::Rasterize,
        Stage::Convolve,
        Stage::Resist,
        Stage::Epe,
        Stage::PvBand,
        Stage::Encode,
        Stage::Write,
    ];

    /// The stable wire/export name of this stage.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Admit => "admit",
            Stage::QueueWait => "queue-wait",
            Stage::Forward => "forward",
            Stage::ShardQueue => "shard-queue",
            Stage::Coalesce => "coalesce",
            Stage::ContextFetch => "context-fetch",
            Stage::Rasterize => "rasterize",
            Stage::Convolve => "convolve",
            Stage::Resist => "resist",
            Stage::Epe => "epe",
            Stage::PvBand => "pv-band",
            Stage::Encode => "encode",
            Stage::Write => "write",
        }
    }

    /// Position in [`Self::ALL`] (the recorder's compact encoding).
    pub fn index(self) -> usize {
        // panic-ok: ALL enumerates every variant (asserted by the
        // stage_names_cover_the_full_request_lifecycle test).
        Self::ALL.iter().position(|s| *s == self).expect("in ALL")
    }

    /// The serving-tier stage a litho pipeline stage maps to.
    pub fn from_litho(stage: camo_litho::trace::Stage) -> Stage {
        use camo_litho::trace::Stage as L;
        match stage {
            L::Rasterize => Stage::Rasterize,
            L::Convolve => Stage::Convolve,
            L::Resist => Stage::Resist,
            L::Epe => Stage::Epe,
            L::PvBand => Stage::PvBand,
        }
    }
}

/// One recorded span, times in microseconds since the recorder's epoch
/// (process start order is irrelevant: a timeline is reconstructed per
/// process, and the Chrome export keys processes by `pid`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The request's trace id (nonzero).
    pub trace_id: u64,
    /// Stage name (one of [`Stage::ALL`]'s names for spans this tier
    /// records; kept open as a string on the wire for third parties).
    pub stage: String,
    /// Span start, µs since the recording process's epoch.
    pub start_us: u64,
    /// Span end, µs since the recording process's epoch.
    pub end_us: u64,
}

/// One process's pullable trace state: its spans plus how many older spans
/// the ring has already overwritten or skipped under write contention.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProcessSpans {
    /// Spans still resident in the ring, ordered by start time.
    pub spans: Vec<SpanRecord>,
    /// Spans lost to wraparound or slot contention since process start.
    pub dropped: u64,
}

/// A shard's spans inside a router's merged [`TraceReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardTrace {
    /// Shard index (matches `MetricsReport.shards`).
    pub index: usize,
    /// Spans lost on that shard (wraparound/contention).
    pub dropped: u64,
    /// The shard's resident spans.
    pub spans: Vec<SpanRecord>,
}

/// The payload of a `trace` wire response: the answering process's spans,
/// plus — when the answering process is a router — every reachable shard's
/// spans, so one pull stitches a routed request's full timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceReport {
    /// `"server"` or `"router"`.
    pub role: String,
    /// Spans lost on the answering process.
    pub dropped: u64,
    /// The answering process's resident spans.
    pub spans: Vec<SpanRecord>,
    /// Per-shard spans (routers only; empty for plain servers).
    pub shards: Vec<ShardTrace>,
}

/// One ring slot, guarded by a per-slot sequence word: even = stable,
/// odd = a writer is mid-update. Writers claim a slot with a CAS and give
/// up (counting a drop) rather than spin, so recording never blocks.
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    trace_id: AtomicU64,
    stage: AtomicU64,
    start_us: AtomicU64,
    end_us: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            trace_id: AtomicU64::new(0),
            stage: AtomicU64::new(0),
            start_us: AtomicU64::new(0),
            end_us: AtomicU64::new(0),
        }
    }
}

/// The lock-free per-process ring buffer of recent spans.
///
/// Writers take a ticket from a monotone cursor and write the slot
/// `ticket % capacity` under its seqlock; a snapshot walks every slot and
/// keeps the consistent ones. Old spans are overwritten in arrival order —
/// the recorder holds the *recent* history, and `dropped` reports exactly
/// how much has been lost.
#[derive(Debug)]
pub struct FlightRecorder {
    epoch: Instant,
    cursor: AtomicU64,
    contended: AtomicU64,
    slots: Box<[Slot]>,
}

impl FlightRecorder {
    /// A recorder holding the most recent `capacity` spans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "a zero-capacity flight recorder records nothing"
        );
        Self {
            epoch: Instant::now(),
            cursor: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Slot::new()).collect(),
        }
    }

    /// The instant µs offsets are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    fn offset_us(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_micros() as u64
    }

    /// Records one completed span. Never blocks: a slot already claimed by
    /// another writer (only possible once the ring has wrapped mid-write)
    /// drops the span and counts it instead.
    pub fn record(&self, trace_id: u64, stage: Stage, start: Instant, end: Instant) {
        // relaxed-ok: the ticket only spreads writers across slots; slot
        // consistency is carried by the per-slot seqlock below.
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        // relaxed-ok: a stale read only makes the CAS below fail.
        let seq = slot.seq.load(Ordering::Relaxed);
        if seq % 2 == 1
            || slot
                .seq
                // relaxed-ok: failure ordering of the claim CAS; a failed
                // claim drops the span and touches no slot data.
                .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            // relaxed-ok: loss counter, read only by reporting.
            self.contended.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // relaxed-ok: data stores are ordered by the Release publish of the
        // even sequence value below (seqlock protocol).
        slot.trace_id.store(trace_id, Ordering::Relaxed);
        // relaxed-ok: seqlock-protected data store, see above.
        slot.stage.store(stage.index() as u64, Ordering::Relaxed);
        // relaxed-ok: seqlock-protected data store, see above.
        slot.start_us
            .store(self.offset_us(start), Ordering::Relaxed);
        // relaxed-ok: seqlock-protected data store, see above.
        slot.end_us.store(self.offset_us(end), Ordering::Relaxed);
        slot.seq.store(seq + 2, Ordering::Release);
    }

    /// Copies out every consistent resident span (ordered by start time)
    /// plus the exact count of spans lost to wraparound or contention.
    pub fn snapshot(&self) -> ProcessSpans {
        let mut spans = Vec::new();
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue; // never written, or a writer is mid-update
            }
            // relaxed-ok: seqlock-protected data loads; the fence plus the
            // unchanged sequence word below validate them.
            let trace_id = slot.trace_id.load(Ordering::Relaxed);
            // relaxed-ok: seqlock-protected data load, see above.
            let stage = slot.stage.load(Ordering::Relaxed);
            // relaxed-ok: seqlock-protected data load, see above.
            let start_us = slot.start_us.load(Ordering::Relaxed);
            // relaxed-ok: seqlock-protected data load, see above.
            let end_us = slot.end_us.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            // relaxed-ok: the Acquire fence above orders the data loads
            // before this validation read.
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue; // torn by a concurrent writer; skip
            }
            let Some(stage) = Stage::ALL.get(stage as usize) else {
                continue;
            };
            spans.push(SpanRecord {
                trace_id,
                stage: stage.name().to_string(),
                start_us,
                end_us,
            });
        }
        spans.sort_by_key(|s| (s.start_us, s.end_us));
        // relaxed-ok: reporting-only reads of monotone counters.
        let written = self.cursor.load(Ordering::Relaxed);
        // relaxed-ok: reporting-only read, see above.
        let contended = self.contended.load(Ordering::Relaxed);
        let wrapped = written.saturating_sub(self.slots.len() as u64);
        ProcessSpans {
            spans,
            dropped: wrapped + contended,
        }
    }
}

/// The per-process tracing front door: sampling decisions, trace-id
/// assignment, the [`FlightRecorder`], and the per-stage latency
/// histograms feeding the metrics plane.
#[derive(Debug)]
pub struct Tracer {
    /// Trace every `sample`-th admitted request; `0` disables tracing.
    sample: u64,
    admitted: AtomicU64,
    next_trace: AtomicU64,
    /// Trace id of the batch currently executing (0 = none): the bridge
    /// that attributes litho stage spans — emitted deep inside the
    /// clock-free pipeline — to the request that triggered them. With
    /// several dispatchers the last-started traced batch wins; tracing is
    /// observational and never affects results.
    active: AtomicU64,
    recorder: FlightRecorder,
    stages: StageLatencies,
}

impl Tracer {
    /// A tracer sampling every `sample`-th admitted request (0 = off),
    /// with the default recorder capacity.
    pub fn new(sample: u64) -> Self {
        Self::with_capacity(sample, DEFAULT_RECORDER_CAPACITY)
    }

    /// Like [`Self::new`] with an explicit ring capacity (tests).
    pub fn with_capacity(sample: u64, capacity: usize) -> Self {
        Self {
            sample,
            admitted: AtomicU64::new(0),
            next_trace: AtomicU64::new(0),
            active: AtomicU64::new(0),
            recorder: FlightRecorder::new(capacity),
            stages: StageLatencies::new(),
        }
    }

    /// Whether any request can ever be traced.
    pub fn enabled(&self) -> bool {
        self.sample > 0
    }

    /// The sampling decision for a freshly admitted request that does not
    /// already carry a trace id: every `sample`-th admission gets a new
    /// id. This is the whole cost of the sampled-out path — one counter
    /// increment and a modulo.
    pub fn maybe_assign(&self) -> Option<u64> {
        if self.sample == 0 {
            return None;
        }
        // relaxed-ok: the admission counter only drives sampling cadence.
        let nth = self.admitted.fetch_add(1, Ordering::Relaxed);
        if !nth.is_multiple_of(self.sample) {
            return None;
        }
        // relaxed-ok: uniqueness needs atomicity only, not ordering.
        Some(self.next_trace.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Records one completed span for `trace_id` and feeds the per-stage
    /// latency histogram.
    pub fn record(&self, trace_id: u64, stage: Stage, start: Instant, end: Instant) {
        self.recorder.record(trace_id, stage, start, end);
        self.stages
            .record(stage, end.saturating_duration_since(start));
    }

    /// Convenience: records `stage` from `start` to now.
    pub fn record_since(&self, trace_id: u64, stage: Stage, start: Instant) {
        self.record(trace_id, stage, start, Instant::now());
    }

    /// Marks `trace_id` as the trace litho stage spans attribute to.
    pub fn set_active(&self, trace_id: u64) {
        // relaxed-ok: attribution register; a racy read misattributes one
        // observational span at worst.
        self.active.store(trace_id, Ordering::Relaxed);
    }

    /// Clears the active trace (batch finished).
    pub fn clear_active(&self) {
        self.set_active(0);
    }

    /// The currently active trace id (0 = none).
    pub fn active(&self) -> u64 {
        // relaxed-ok: attribution register, see `set_active`.
        self.active.load(Ordering::Relaxed)
    }

    /// The underlying recorder (epoch access, tests).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Per-stage latency snapshot for the metrics plane (stages with at
    /// least one span only).
    pub fn stage_latency(&self) -> Vec<KindLatency> {
        self.stages.snapshot()
    }

    /// This process's half of a `trace` response.
    pub fn report(&self, role: &str) -> TraceReport {
        let ProcessSpans { spans, dropped } = self.recorder.snapshot();
        TraceReport {
            role: role.to_string(),
            dropped,
            spans,
            shards: Vec::new(),
        }
    }
}

thread_local! {
    /// Per-thread stack pairing litho `stage_start`/`stage_end` callbacks.
    /// Guards in the pipeline guarantee LIFO bracketing per thread.
    static STAGE_STACK: RefCell<Vec<(usize, u64, Instant)>> = const { RefCell::new(Vec::new()) };
}

/// The serving side of the litho tracing seam: receives clock-free stage
/// boundaries from the pipeline, stamps them with real timestamps, and
/// records them under the tracer's active trace id. Installed on every
/// simulator built by the server's `ContextCache` when tracing is enabled.
#[derive(Debug)]
pub struct RecorderSink {
    tracer: Arc<Tracer>,
}

impl RecorderSink {
    /// A sink recording into `tracer`'s flight recorder.
    pub fn new(tracer: Arc<Tracer>) -> Self {
        Self { tracer }
    }
}

impl camo_litho::trace::TraceSink for RecorderSink {
    fn stage_start(&self, stage: camo_litho::trace::Stage) {
        let trace = self.tracer.active();
        // The epoch stands in for "no timestamp" on untraced frames; the
        // matching `stage_end` discards them without reading the clock.
        let start = if trace == 0 {
            self.tracer.recorder().epoch()
        } else {
            Instant::now()
        };
        STAGE_STACK.with(|stack| {
            stack
                .borrow_mut()
                .push((Stage::from_litho(stage).index(), trace, start));
        });
    }

    fn stage_end(&self, stage: camo_litho::trace::Stage) {
        let expected = Stage::from_litho(stage).index();
        let frame = STAGE_STACK.with(|stack| stack.borrow_mut().pop());
        let Some((index, trace, start)) = frame else {
            return;
        };
        if trace == 0 || index != expected {
            return;
        }
        self.tracer.record_since(trace, Stage::ALL[index], start);
    }
}

/// Serialises a merged [`TraceReport`] as Chrome trace-event JSON
/// (`chrome://tracing` / Perfetto "JSON Array Format" with the
/// `traceEvents` wrapper). Each process is a `pid` row (0 = the answering
/// process, shard `i` = `i + 1`), each trace id a `tid`, and every span a
/// complete (`"ph":"X"`) event with µs timestamps.
pub fn chrome_trace_json(report: &TraceReport) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, event: String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&event);
    };
    push(
        &mut out,
        &mut first,
        format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{{\"name\":{}}}}}",
            json_string(&report.role)
        ),
    );
    for (span, pid) in report.spans.iter().map(|s| (s, 0_u64)).chain(
        report
            .shards
            .iter()
            .flat_map(|sh| sh.spans.iter().map(move |s| (s, sh.index as u64 + 1))),
    ) {
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\
                 \"tid\":{},\"args\":{{\"trace_id\":{}}}}}",
                json_string(&span.stage),
                span.start_us,
                span.end_us.saturating_sub(span.start_us),
                pid,
                span.trace_id,
                span.trace_id
            ),
        );
    }
    for shard in &report.shards {
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                 \"args\":{{\"name\":\"shard {}\"}}}}",
                shard.index as u64 + 1,
                shard.index
            ),
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Minimal JSON string encoder for the export (roles and stage names are
/// ASCII; escape the characters that could break framing anyway).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use camo_litho::trace::TraceSink as _;
    use std::time::Duration;

    #[test]
    fn recorder_round_trips_spans_in_order() {
        let rec = FlightRecorder::new(16);
        let epoch = rec.epoch();
        rec.record(7, Stage::Admit, epoch, epoch + Duration::from_micros(3));
        rec.record(
            7,
            Stage::Encode,
            epoch + Duration::from_micros(10),
            epoch + Duration::from_micros(12),
        );
        let snap = rec.snapshot();
        assert_eq!(snap.dropped, 0);
        assert_eq!(
            snap.spans,
            vec![
                SpanRecord {
                    trace_id: 7,
                    stage: "admit".into(),
                    start_us: 0,
                    end_us: 3
                },
                SpanRecord {
                    trace_id: 7,
                    stage: "encode".into(),
                    start_us: 10,
                    end_us: 12
                },
            ]
        );
    }

    #[test]
    fn wraparound_under_concurrent_writers_keeps_consistent_recent_spans() {
        // Satellite: hammer a tiny ring from several threads so it wraps
        // hundreds of times, then check every surviving span is internally
        // consistent and the loss accounting matches the writes.
        const WRITERS: u64 = 4;
        const PER_WRITER: u64 = 2_000;
        const CAPACITY: usize = 64;
        let rec = FlightRecorder::new(CAPACITY);
        let epoch = rec.epoch();
        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let rec = &rec;
                s.spawn(move || {
                    for i in 0..PER_WRITER {
                        let trace = w * PER_WRITER + i + 1;
                        let start = epoch + Duration::from_micros(trace);
                        rec.record(
                            trace,
                            Stage::Convolve,
                            start,
                            start + Duration::from_micros(5),
                        );
                    }
                });
            }
        });
        let snap = rec.snapshot();
        assert!(snap.spans.len() <= CAPACITY);
        assert!(!snap.spans.is_empty());
        for span in &snap.spans {
            // A torn slot would pair one writer's trace id with another's
            // timestamps; the seqlock must have filtered those out.
            assert_eq!(span.stage, "convolve");
            assert!(span.trace_id >= 1 && span.trace_id <= WRITERS * PER_WRITER);
            assert_eq!(span.start_us, span.trace_id);
            assert_eq!(span.end_us, span.start_us + 5);
        }
        // Everything written but not resident is accounted as dropped.
        let written = WRITERS * PER_WRITER;
        assert!(snap.dropped >= written - snap.spans.len() as u64 - CAPACITY as u64);
        assert!(snap.dropped < written);
    }

    #[test]
    fn sampling_traces_every_nth_admission_and_zero_disables() {
        let t = Tracer::with_capacity(3, 16);
        let decisions: Vec<Option<u64>> = (0..7).map(|_| t.maybe_assign()).collect();
        assert_eq!(
            decisions,
            vec![Some(1), None, None, Some(2), None, None, Some(3)]
        );
        let off = Tracer::with_capacity(0, 16);
        assert!(!off.enabled());
        assert_eq!(off.maybe_assign(), None);
    }

    #[test]
    fn recorder_sink_attributes_stages_to_the_active_trace_only() {
        let tracer = Arc::new(Tracer::with_capacity(1, 64));
        let sink = RecorderSink::new(Arc::clone(&tracer));
        // Inactive: boundaries are discarded without recording.
        sink.stage_start(camo_litho::trace::Stage::Rasterize);
        sink.stage_end(camo_litho::trace::Stage::Rasterize);
        assert!(tracer.recorder().snapshot().spans.is_empty());
        // Active: nested stages record under the active id.
        tracer.set_active(42);
        sink.stage_start(camo_litho::trace::Stage::Epe);
        sink.stage_start(camo_litho::trace::Stage::Convolve);
        sink.stage_end(camo_litho::trace::Stage::Convolve);
        sink.stage_end(camo_litho::trace::Stage::Epe);
        tracer.clear_active();
        let spans = tracer.recorder().snapshot().spans;
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.trace_id == 42));
        let stages: Vec<&str> = spans.iter().map(|s| s.stage.as_str()).collect();
        assert!(stages.contains(&"convolve") && stages.contains(&"epe"));
        // The per-stage metrics histograms saw both spans too.
        let latency = tracer.stage_latency();
        assert!(latency.iter().any(|k| k.kind == "convolve"));
        assert!(latency.iter().any(|k| k.kind == "epe"));
    }

    #[test]
    fn chrome_export_contains_every_span_and_balanced_json() {
        let report = TraceReport {
            role: "router".into(),
            dropped: 0,
            spans: vec![SpanRecord {
                trace_id: 1,
                stage: "admit".into(),
                start_us: 5,
                end_us: 9,
            }],
            shards: vec![ShardTrace {
                index: 0,
                dropped: 0,
                spans: vec![SpanRecord {
                    trace_id: 1,
                    stage: "convolve".into(),
                    start_us: 11,
                    end_us: 40,
                }],
            }],
        };
        let json = chrome_trace_json(&report);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"admit\""));
        assert!(json.contains("\"name\":\"convolve\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":29"));
        assert!(json.contains("\"pid\":1"));
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn stage_names_cover_the_full_request_lifecycle() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "admit",
                "queue-wait",
                "forward",
                "shard-queue",
                "coalesce",
                "context-fetch",
                "rasterize",
                "convolve",
                "resist",
                "epe",
                "pv-band",
                "encode",
                "write"
            ]
        );
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
    }
}
