//! The client-facing connection front-end shared by the single-process
//! server and the shard router.
//!
//! Both processes present the same face to a client: an acceptor with a
//! connection cap, one reader and one writer thread per connection, inline
//! `ping`/`metrics`/`restart`/`shutdown` handling, typed `busy`
//! rejections, and a stream registry so shutdown can unblock every reader.
//! Control requests are answered by the reader thread itself — never
//! queued — so health and observability stay responsive even when the
//! request queue is saturated. Only what happens to an *admitted* request
//! differs — the server queues it for its dispatchers, the router for its
//! forwarders — so that single decision is the [`FrontHandler`] trait and
//! everything else lives here once.

use crate::trace::{Stage, Tracer};
use crate::wire::{
    decode_request, decode_request_v2, encode_response, encode_response_v2, read_frame,
    read_frame_v2, ErrorCode, Frame, FrameV2, Request, RequestBody, Response, ResponseBody,
    WireVersion,
};
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Connection-tier state embedded in the server's and the router's shared
/// state: liveness counters, the stop flag, the shutdown rendezvous, and
/// the registry of streams to read-shutdown at exit.
pub(crate) struct FrontState {
    /// Maximum simultaneously open client connections.
    max_connections: usize,
    /// Retry hint carried by `busy` rejections, milliseconds.
    pub(crate) retry_after_ms: u64,
    pub(crate) stop: AtomicBool,
    live: AtomicUsize,
    pub(crate) connections: AtomicUsize,
    pub(crate) rejected: AtomicUsize,
    shutdown_flag: Mutex<bool>, // lock-order: 50
    shutdown_cv: Condvar,
    /// Stream clones used to read-shutdown blocked readers at exit, keyed
    /// by connection id so entries are dropped when their reader exits —
    /// otherwise a long-lived process would leak one fd per past
    /// connection.
    streams: Mutex<Vec<(u64, TcpStream)>>, // lock-order: 52
}

impl FrontState {
    pub(crate) fn new(max_connections: usize, retry_after_ms: u64) -> Self {
        Self {
            max_connections,
            retry_after_ms,
            stop: AtomicBool::new(false),
            live: AtomicUsize::new(0),
            connections: AtomicUsize::new(0),
            rejected: AtomicUsize::new(0),
            shutdown_flag: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            streams: Mutex::new(Vec::new()),
        }
    }

    /// Stops the acceptor, read-shuts every registered connection so
    /// blocked readers unblock, and wakes [`Self::wait_for_shutdown`]
    /// waiters. Idempotent; callers close their own request queue.
    pub(crate) fn begin_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for (_, stream) in self.lock_streams().iter() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        let mut flag = self
            .shutdown_flag
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *flag = true;
        self.shutdown_cv.notify_all();
    }

    /// Blocks until [`Self::begin_shutdown`] has run (the binaries' main
    /// loop). Returns immediately if shutdown already began.
    pub(crate) fn wait_for_shutdown(&self) {
        let mut flag = self
            .shutdown_flag
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while !*flag {
            flag = self
                .shutdown_cv
                .wait(flag)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn lock_streams(&self) -> std::sync::MutexGuard<'_, Vec<(u64, TcpStream)>> {
        self.streams.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn deregister_stream(&self, conn_id: u64) {
        self.lock_streams().retain(|(id, _)| *id != conn_id);
    }
}

/// One response headed for a connection's writer thread, tagged with the
/// trace id of the request it answers (when that request was sampled) so
/// the writer can record `encode`/`write` spans without re-decoding
/// anything.
pub(crate) struct Outbound {
    pub(crate) response: Response,
    pub(crate) trace: Option<u64>,
    /// After writing this response the writer switches to v2 binary
    /// frames. Set only on the `hello_ack` of an accepted handshake; the
    /// channel's FIFO order makes the switch race-free.
    pub(crate) upgrade: bool,
}

impl Outbound {
    /// An untraced response (control answers, decode errors).
    pub(crate) fn plain(response: Response) -> Self {
        Self {
            response,
            trace: None,
            upgrade: false,
        }
    }

    /// A response answering a (possibly sampled) admitted request.
    pub(crate) fn traced(response: Response, trace: Option<u64>) -> Self {
        Self {
            response,
            trace,
            upgrade: false,
        }
    }
}

/// One request admitted past the connection tier: the decoded request plus
/// the sender feeding its connection's writer thread. The element type of
/// both the server's dispatch queue and the router's forwarding queue.
pub(crate) struct AdmittedRequest {
    pub(crate) reply: Sender<Outbound>,
    pub(crate) request: Request,
    /// When the reader admitted the request — the start of the latency
    /// sample its completion records (queue wait included, so histograms
    /// show what a client actually experienced).
    pub(crate) admitted_at: Instant,
}

/// What the embedding process does with an admitted request; everything
/// else about a connection's life is shared.
pub(crate) trait FrontHandler: Send + Sync + 'static {
    /// The embedded connection-tier state.
    fn front(&self) -> &FrontState;
    /// The bounded queue admitted requests are pushed onto; its overflow is
    /// the backpressure signal.
    fn queue(&self) -> &camo_runtime::BoundedQueue<AdmittedRequest>;
    /// A client asked the process to drain and exit (the acknowledgement
    /// has already been sent).
    fn on_shutdown_request(&self);
    /// The process's current [`crate::stats::MetricsReport`], answered
    /// inline by the reader thread (works under queue saturation).
    fn metrics(&self) -> ResponseBody;
    /// The process's tracing plane: sampling decisions at admission, span
    /// recording at every hop.
    fn tracer(&self) -> &Arc<Tracer>;
    /// The process's current [`crate::trace::TraceReport`], answered inline
    /// by the reader thread (a router merges in each live shard's spans).
    fn trace(&self) -> ResponseBody;
    /// An admin `restart` request. The default rejects it: a plain server
    /// has nothing to restart without dropping the very connection the
    /// request arrived on. The router overrides this with a rolling
    /// restart of its shard tier.
    fn restart(&self, shard: Option<usize>) -> ResponseBody {
        let _ = shard;
        ResponseBody::Error {
            code: ErrorCode::BadRequest,
            message: "this process has no shard tier to restart".into(),
        }
    }

    /// Whether this front accepts the `hello` upgrade to wire v2. The
    /// default is yes; a process configured v1-only refuses the handshake
    /// (and the refused client simply continues in v1).
    fn wire_v2_enabled(&self) -> bool {
        true
    }

    /// Takes one decoded request that is not a control kind: a
    /// non-blocking push onto [`Self::queue`], where a full queue answers a
    /// typed `busy` rejection and a closed one answers `shutting_down`.
    ///
    /// This is also where sampling happens: a request that did not arrive
    /// with a `trace_id` (i.e. not forwarded by an upstream router) may be
    /// assigned one here, and sampled requests get an `admit` span. The
    /// sampled-out path costs one atomic increment and no clock reads.
    fn admit(&self, reply: &Sender<Outbound>, mut request: Request) {
        if request.trace.is_none() {
            request.trace = self.tracer().maybe_assign();
        }
        let trace = request.trace;
        let admitted_at = Instant::now();
        let admitted = AdmittedRequest {
            reply: reply.clone(),
            request,
            admitted_at,
        };
        match self.queue().try_push(admitted) {
            Ok(()) => {}
            Err(camo_runtime::PushError::Full(a)) => {
                self.front().rejected.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter; reads are reporting-only
                let _ = a.reply.send(Outbound::traced(
                    Response {
                        id: a.request.id,
                        body: ResponseBody::Busy {
                            retry_after_ms: self.front().retry_after_ms,
                        },
                    },
                    a.request.trace,
                ));
            }
            Err(camo_runtime::PushError::Closed(a)) => {
                let _ = a.reply.send(Outbound::traced(
                    Response {
                        id: a.request.id,
                        body: ResponseBody::ShuttingDown,
                    },
                    a.request.trace,
                ));
            }
        }
        if let Some(id) = trace {
            self.tracer().record_since(id, Stage::Admit, admitted_at);
        }
    }
}

/// Accepts connections until shutdown, enforcing the connection cap; joins
/// every connection thread before returning.
pub(crate) fn acceptor_loop<H: FrontHandler>(listener: TcpListener, shared: &Arc<H>) {
    let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
    while !shared.front().stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                conn_threads.retain(|h| !h.is_finished());
                let front = shared.front();
                let conn_id = front.connections.fetch_add(1, Ordering::Relaxed) as u64; // relaxed-ok: connection-id counter; uniqueness needs only atomicity
                if front.live.fetch_add(1, Ordering::SeqCst) >= front.max_connections {
                    front.live.fetch_sub(1, Ordering::SeqCst);
                    front.rejected.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter; reads are reporting-only
                    reject_connection(stream, front.retry_after_ms);
                    continue;
                }
                match spawn_connection(conn_id, stream, shared) {
                    Ok(handles) => conn_threads.extend(handles),
                    Err(_) => {
                        shared.front().live.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    for handle in conn_threads {
        let _ = handle.join();
    }
}

/// Turns an over-cap connection away with a single typed `busy` frame.
fn reject_connection(stream: TcpStream, retry_after_ms: u64) {
    let mut writer = BufWriter::new(stream);
    if let Ok(frame) = encode_response(&Response {
        id: 0,
        body: ResponseBody::Busy { retry_after_ms },
    }) {
        let _ = writer.write_all(frame.as_bytes());
        let _ = writer.write_all(b"\n");
        let _ = writer.flush();
    }
}

fn spawn_connection<H: FrontHandler>(
    conn_id: u64,
    stream: TcpStream,
    shared: &Arc<H>,
) -> std::io::Result<[JoinHandle<()>; 2]> {
    // A dead or stalled client must not wedge shutdown behind a full send
    // buffer; writers give up after this long.
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let read_half = stream.try_clone()?;
    shared
        .front()
        .lock_streams()
        .push((conn_id, stream.try_clone()?));
    // Close the race with a concurrent `begin_shutdown`: if its
    // read-shutdown pass already swept the registry, sweep this connection
    // ourselves so the reader observes EOF instead of blocking forever.
    if shared.front().stop.load(Ordering::SeqCst) {
        let _ = read_half.shutdown(Shutdown::Read);
    }
    let (tx, rx) = channel::<Outbound>();

    let writer = {
        let tracer = Arc::clone(shared.tracer());
        std::thread::Builder::new()
            .name("camo-serve-writer".into())
            .spawn(move || writer_loop(stream, rx, &tracer))
    };
    let writer = match writer {
        Ok(handle) => handle,
        Err(e) => {
            shared.front().deregister_stream(conn_id);
            return Err(e);
        }
    };
    let reader = {
        let shared_for_reader = Arc::clone(shared);
        std::thread::Builder::new()
            .name("camo-serve-reader".into())
            .spawn(move || {
                reader_loop(read_half, &*shared_for_reader, tx);
                shared_for_reader.front().deregister_stream(conn_id);
                shared_for_reader
                    .front()
                    .live
                    .fetch_sub(1, Ordering::SeqCst);
            })
    };
    let reader = match reader {
        Ok(handle) => handle,
        Err(e) => {
            // `tx` was moved into the failed spawn attempt and dropped, so
            // the writer drains and exits on its own.
            shared.front().deregister_stream(conn_id);
            return Err(e);
        }
    };
    Ok([reader, writer])
}

/// Encodes one response in the connection's negotiated version, falling
/// back to a typed internal error when the response itself is unencodable.
/// The v1 bytes include the frame's trailing newline.
fn encode_outbound(response: &Response, mode: WireVersion) -> Option<Vec<u8>> {
    let encode = |response: &Response| match mode {
        WireVersion::V1 => encode_response(response).map(|mut frame| {
            frame.push('\n');
            frame.into_bytes()
        }),
        WireVersion::V2 => encode_response_v2(response),
    };
    match encode(response) {
        Ok(bytes) => Some(bytes),
        Err(e) => encode(&Response {
            id: response.id,
            body: ResponseBody::Error {
                code: ErrorCode::Internal,
                message: format!("unencodable response: {e}"),
            },
        })
        .ok(),
    }
}

fn writer_loop(stream: TcpStream, rx: Receiver<Outbound>, tracer: &Tracer) {
    let mut writer = BufWriter::new(stream);
    let mut mode = WireVersion::V1;
    // Ends when every sender (reader + admitted requests) is gone; the
    // final write-shutdown sends FIN so clients draining the stream observe
    // EOF even while the shutdown registry still holds a clone.
    while let Ok(Outbound {
        response,
        trace,
        upgrade,
    }) = rx.recv()
    {
        let encode_start = trace.map(|_| Instant::now());
        let Some(bytes) = encode_outbound(&response, mode) else {
            continue;
        };
        if let (Some(id), Some(start)) = (trace, encode_start) {
            tracer.record_since(id, Stage::Encode, start);
        }
        let write_start = trace.map(|_| Instant::now());
        if writer.write_all(&bytes).is_err() || writer.flush().is_err() {
            break;
        }
        if let (Some(id), Some(start)) = (trace, write_start) {
            tracer.record_since(id, Stage::Write, start);
        }
        if upgrade {
            // The hello_ack just went out in v1; everything after it is
            // binary. Responses already queued behind the ack cannot exist
            // because hello is only accepted as the connection's first
            // frame.
            mode = WireVersion::V2;
        }
    }
    let _ = writer.get_ref().shutdown(Shutdown::Write);
}

fn reader_loop<H: FrontHandler>(stream: TcpStream, shared: &H, tx: Sender<Outbound>) {
    let mut reader = BufReader::new(stream);
    let mut mode = WireVersion::V1;
    // `hello` is only valid as the first decoded frame of the connection:
    // that makes the post-ack codec switch race-free even with pipelining,
    // because no response can be queued ahead of the ack.
    let mut first_frame = true;
    // Ends on EOF, a transport error, or a `shutdown` request.
    loop {
        let was_first = first_frame;
        let request = match mode {
            WireVersion::V1 => {
                let Ok(Some(frame)) = read_frame(&mut reader) else {
                    return;
                };
                let line = match frame {
                    Frame::Line(line) => line,
                    Frame::Oversized { len } => {
                        first_frame = false;
                        let _ = tx.send(Outbound::plain(Response {
                            id: 0,
                            body: ResponseBody::Error {
                                code: ErrorCode::BadRequest,
                                message: format!("frame of {len} bytes exceeds the limit"),
                            },
                        }));
                        continue;
                    }
                };
                if line.trim().is_empty() {
                    continue;
                }
                first_frame = false;
                match decode_request(&line) {
                    Ok(request) => request,
                    Err(e) => {
                        let _ = tx.send(Outbound::plain(Response {
                            id: 0,
                            body: ResponseBody::Error {
                                code: ErrorCode::BadRequest,
                                message: e.to_string(),
                            },
                        }));
                        continue;
                    }
                }
            }
            WireVersion::V2 => {
                let Ok(Some(frame)) = read_frame_v2(&mut reader) else {
                    return;
                };
                match frame {
                    FrameV2::Oversized { len } => {
                        // No newline to resync on: a binary connection
                        // cannot be re-framed past an oversized header, so
                        // answer and drop it.
                        let _ = tx.send(Outbound::plain(Response {
                            id: 0,
                            body: ResponseBody::Error {
                                code: ErrorCode::BadRequest,
                                message: format!("frame of {len} bytes exceeds the limit"),
                            },
                        }));
                        return;
                    }
                    FrameV2::Frame { opcode, payload } => {
                        match decode_request_v2(opcode, &payload) {
                            Ok(request) => request,
                            Err(e) => {
                                // The length prefix kept the stream framed,
                                // so (unlike Oversized) the connection
                                // survives a bad payload — same contract as
                                // a malformed v1 line.
                                let _ = tx.send(Outbound::plain(Response {
                                    id: 0,
                                    body: ResponseBody::Error {
                                        code: ErrorCode::BadRequest,
                                        message: e.to_string(),
                                    },
                                }));
                                continue;
                            }
                        }
                    }
                }
            }
        };
        let id = request.id;
        match request.body {
            RequestBody::Hello { version } => {
                let refusal = if !was_first {
                    Some("hello must be the first frame of a connection")
                } else if version != 2 {
                    Some("unsupported protocol version")
                } else if !shared.wire_v2_enabled() {
                    Some("this server speaks wire v1 only")
                } else {
                    None
                };
                match refusal {
                    Some(message) => {
                        let _ = tx.send(Outbound::plain(Response {
                            id,
                            body: ResponseBody::Error {
                                code: ErrorCode::BadRequest,
                                message: message.into(),
                            },
                        }));
                    }
                    None => {
                        let _ = tx.send(Outbound {
                            response: Response {
                                id,
                                body: ResponseBody::HelloAck { version: 2 },
                            },
                            trace: None,
                            upgrade: true,
                        });
                        mode = WireVersion::V2;
                    }
                }
            }
            RequestBody::Ping => {
                let _ = tx.send(Outbound::plain(Response {
                    id,
                    body: ResponseBody::Pong,
                }));
            }
            RequestBody::Metrics => {
                let _ = tx.send(Outbound::plain(Response {
                    id,
                    body: shared.metrics(),
                }));
            }
            RequestBody::Trace => {
                // Inline like `metrics`: pulling the flight recorder must
                // work even when the request queue is saturated — that is
                // exactly when a timeline is most interesting.
                let _ = tx.send(Outbound::plain(Response {
                    id,
                    body: shared.trace(),
                }));
            }
            RequestBody::Restart { shard } => {
                // Deliberately synchronous: this connection's reader blocks
                // until the rolling restart finishes, so the `restarted`
                // acknowledgement really means the tier is whole again.
                // Other connections (and this one's earlier pipelined
                // requests) proceed normally throughout.
                let body = shared.restart(shard);
                let _ = tx.send(Outbound::plain(Response { id, body }));
            }
            RequestBody::Shutdown => {
                let _ = tx.send(Outbound::plain(Response {
                    id,
                    body: ResponseBody::ShuttingDown,
                }));
                shared.on_shutdown_request();
                break;
            }
            _ => shared.admit(&tx, request),
        }
    }
}
