//! Request execution: specs → engines/simulators → batch runtime calls.
//!
//! This module is the single place where wire specs are materialised into
//! concrete engines and where coalesced batches hit `camo-runtime`. The
//! server dispatcher and the offline verifier (`camo-client --verify`, the
//! end-to-end identity tests) both call these functions, so "server result
//! == offline result" reduces to the runtime's own determinism contract:
//! engines are rebuilt identically from the same [`JobSpec`], simulators
//! share one [`camo_litho::LithoContext`] per configuration, and
//! [`optimize_batch`]/[`sweep_cases`]/[`evaluate_layout`] are bit-identical
//! to serial loops at any thread count.
//!
//! # Coalescing
//!
//! Two queued requests are **compatible** when [`coalesce_key`] returns the
//! same key: same request kind, same lithography fingerprint and (for
//! optimization) the same engine/step specification. The dispatcher merges
//! compatible single-clip requests into one `optimize_batch` /
//! `parallel_map` call, so a burst of small requests shares one context
//! lookup and one worker-pool fan-out instead of paying per-request setup.

use crate::wire::{EngineKind, JobSpec, Layer, LithoSpec, RequestBody, ResponseBody, WireOutcome};
use camo::{CamoConfig, CamoEngine};
use camo_baselines::{CalibreLikeOpc, OpcConfig, OpcOutcome};
use camo_geometry::{Clip, Coord, MaskState};
use camo_litho::{LithoSimulator, SimulationResult, Tiler};
use camo_runtime::{evaluate_layout, optimize_batch, parallel_map, sweep_cases};
use camo_workloads::generate_layout;

/// The OPC layer presets a [`Layer`] names.
impl Layer {
    /// The OPC schedule for this layer.
    pub fn opc_config(self) -> OpcConfig {
        match self {
            Self::Via => OpcConfig::via_layer(),
            Self::Metal => OpcConfig::metal_layer(),
        }
    }
}

impl JobSpec {
    /// The concrete OPC configuration (layer preset plus step override).
    pub fn opc_config(&self) -> OpcConfig {
        let mut opc = self.layer.opc_config();
        if let Some(steps) = self.max_steps {
            opc.max_steps = steps;
        }
        opc
    }
}

/// A concrete engine built from a [`JobSpec`] — an enum rather than a trait
/// object because the batch runtime needs `Clone + Sync`.
#[derive(Debug, Clone)]
pub enum Engine {
    /// Calibre-like damped feedback.
    Calibre(CalibreLikeOpc),
    /// The CAMO policy engine (fast configuration).
    Camo(Box<CamoEngine>),
}

/// Builds the engine a [`JobSpec`] describes. Deterministic: the same spec
/// always yields a bit-identical engine (CAMO policies initialise from the
/// spec's seed).
pub fn build_engine(job: &JobSpec) -> Engine {
    let opc = job.opc_config();
    match job.engine {
        EngineKind::Calibre => Engine::Calibre(CalibreLikeOpc::new(opc)),
        EngineKind::Camo { seed } => {
            let config = CamoConfig {
                seed,
                ..CamoConfig::fast()
            };
            Engine::Camo(Box::new(CamoEngine::new(opc, config)))
        }
    }
}

/// Optimises `clips` with the engine `job` describes, on up to `threads`
/// pool threads — exactly what an offline caller gets from
/// [`optimize_batch`] with the same spec.
pub fn run_optimize(
    job: &JobSpec,
    clips: &[Clip],
    sim: &LithoSimulator,
    threads: usize,
) -> Vec<OpcOutcome> {
    match build_engine(job) {
        Engine::Calibre(engine) => optimize_batch(&engine, clips, sim, threads),
        Engine::Camo(engine) => optimize_batch(&*engine, clips, sim, threads),
    }
}

/// Optimises named cases as one sweep (see [`sweep_cases`]).
pub fn run_sweep(
    job: &JobSpec,
    cases: &[(String, Clip)],
    sim: &LithoSimulator,
    threads: usize,
) -> Vec<(String, OpcOutcome)> {
    match build_engine(job) {
        Engine::Calibre(engine) => sweep_cases(&engine, cases, sim, threads),
        Engine::Camo(engine) => sweep_cases(&*engine, cases, sim, threads),
    }
}

/// Builds the initial mask an evaluate request describes: the layer's
/// fragmentation plus a uniform outward bias.
pub fn evaluate_mask(layer: Layer, bias: Coord, clip: &Clip) -> MaskState {
    let mut mask = MaskState::from_clip(clip, &layer.opc_config().fragmentation);
    mask.apply_uniform_bias(bias);
    mask
}

/// Evaluates a batch of `(layer, bias, clip)` probes on the pool.
pub fn run_evaluate(
    probes: &[(Layer, Coord, Clip)],
    sim: &LithoSimulator,
    threads: usize,
) -> Vec<SimulationResult> {
    parallel_map(threads, probes, |_, (layer, bias, clip)| {
        sim.evaluate(&evaluate_mask(*layer, *bias, clip))
    })
}

/// Tiled layout evaluation: generates the layout deterministically from
/// `(params, seed)` and sweeps its tiles (see [`evaluate_layout`]).
pub fn run_layout(
    params: &camo_workloads::LayoutParams,
    seed: u64,
    tile_nm: Coord,
    sim: &LithoSimulator,
    threads: usize,
) -> camo_litho::LayoutReport {
    let case = generate_layout(format!("serve{seed}"), params, seed);
    let mask = case.initial_mask();
    evaluate_layout(sim, &mask, &Tiler::new(tile_nm), threads)
}

/// Converts a runtime outcome into its wire form (the bits the identity
/// tests diff).
pub fn wire_outcome(outcome: &OpcOutcome) -> WireOutcome {
    WireOutcome {
        offsets: outcome.mask.offsets().to_vec(),
        epe_per_point: outcome.result.epe.per_point.clone(),
        pv_band: outcome.result.pv_band,
        steps: outcome.steps,
    }
}

/// Converts a simulation result into the evaluation response body.
pub fn wire_evaluation(result: &SimulationResult) -> ResponseBody {
    ResponseBody::Evaluation {
        epe_per_point: result.epe.per_point.clone(),
        pv_band: result.pv_band,
    }
}

/// The key under which requests may share one batch execution. `None` for
/// kinds that never coalesce (sweep, optimize_batch and layout execute as
/// their own batch; ping/metrics/restart/shutdown/hello never reach the
/// dispatcher).
pub fn coalesce_key(body: &RequestBody) -> Option<CoalesceKey> {
    match body {
        RequestBody::Optimize { job, .. } => Some(CoalesceKey {
            kind: "optimize",
            litho_fp: job.litho.to_config().fingerprint(),
            job: Some(job.clone()),
        }),
        RequestBody::Evaluate { litho, .. } => Some(CoalesceKey {
            kind: "evaluate",
            litho_fp: litho.to_config().fingerprint(),
            job: None,
        }),
        _ => None,
    }
}

/// See [`coalesce_key`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoalesceKey {
    kind: &'static str,
    litho_fp: u64,
    job: Option<JobSpec>,
}

/// Maps a generated workload case ([`camo_workloads::ServeCase`]) onto a
/// wire request body under `job`'s configuration — shared by the
/// `camo-client` load generator and the bench harness.
pub fn case_body(case: &camo_workloads::ServeCase, job: &JobSpec) -> RequestBody {
    use camo_workloads::ServeCase;
    match case {
        ServeCase::Optimize { clip } => RequestBody::Optimize {
            job: job.clone(),
            clip: clip.clone(),
        },
        ServeCase::Evaluate { clip, bias } => RequestBody::Evaluate {
            litho: job.litho.clone(),
            layer: job.layer,
            bias: *bias,
            clip: clip.clone(),
        },
        ServeCase::Sweep { cases } => RequestBody::Sweep {
            job: job.clone(),
            cases: cases.clone(),
        },
        ServeCase::Layout {
            params,
            seed,
            tile_nm,
        } => RequestBody::Layout {
            litho: job.litho.clone(),
            params: params.clone(),
            seed: *seed,
            tile_nm: *tile_nm,
        },
    }
}

/// The lithography spec a request runs under (`None` for the control
/// kinds: ping, metrics, trace, restart, shutdown, hello).
pub fn litho_spec(body: &RequestBody) -> Option<&LithoSpec> {
    match body {
        RequestBody::Optimize { job, .. }
        | RequestBody::Sweep { job, .. }
        | RequestBody::OptimizeBatch { job, .. } => Some(&job.litho),
        RequestBody::Evaluate { litho, .. } | RequestBody::Layout { litho, .. } => Some(litho),
        RequestBody::Ping
        | RequestBody::Metrics
        | RequestBody::Trace
        | RequestBody::Restart { .. }
        | RequestBody::Shutdown
        | RequestBody::Hello { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camo_geometry::Rect;

    fn clip() -> Clip {
        let mut c = Clip::with_name(Rect::new(0, 0, 800, 800), "t");
        c.add_target(Rect::new(365, 365, 435, 435).to_polygon());
        c
    }

    #[test]
    fn coalesce_keys_separate_incompatible_jobs() {
        let a = RequestBody::Optimize {
            job: JobSpec::fast_calibre_via(),
            clip: clip(),
        };
        let b = RequestBody::Optimize {
            job: JobSpec {
                max_steps: Some(1),
                ..JobSpec::fast_calibre_via()
            },
            clip: clip(),
        };
        let c = RequestBody::Evaluate {
            litho: LithoSpec::fast(),
            layer: Layer::Via,
            bias: 3,
            clip: clip(),
        };
        assert_eq!(coalesce_key(&a), coalesce_key(&a.clone()));
        assert_ne!(coalesce_key(&a), coalesce_key(&b));
        assert_ne!(coalesce_key(&a), coalesce_key(&c));
        // Evaluate requests coalesce across layers/biases: only the litho
        // configuration must match.
        let d = RequestBody::Evaluate {
            litho: LithoSpec::fast(),
            layer: Layer::Metal,
            bias: 0,
            clip: clip(),
        };
        assert_eq!(coalesce_key(&c), coalesce_key(&d));
        assert_eq!(coalesce_key(&RequestBody::Ping), None);
    }

    #[test]
    fn engines_rebuild_deterministically() {
        let job = JobSpec {
            engine: EngineKind::Camo { seed: 11 },
            max_steps: Some(2),
            ..JobSpec::fast_calibre_via()
        };
        let sim = LithoSimulator::new(job.litho.to_config());
        let a = run_optimize(&job, &[clip()], &sim, 1);
        let b = run_optimize(&job, &[clip()], &sim, 1);
        assert_eq!(a[0].mask.offsets(), b[0].mask.offsets());
        assert_eq!(a[0].result.pv_band.to_bits(), b[0].result.pv_band.to_bits());
    }
}
