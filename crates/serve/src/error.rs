//! The serving tier's typed startup/configuration error.
//!
//! `serve`, `route` and `route_spawned` return [`ServeError`] instead of
//! panicking: a resource-exhausted host (thread spawn failing mid-accept)
//! or an invalid configuration degrades into an error the caller can
//! report, not an abort. I/O errors during an established session are
//! still handled per-connection and never surface here.

use std::fmt;
use std::io;

/// Why a serving component failed to start.
#[derive(Debug)]
pub enum ServeError {
    /// Socket setup (bind, local_addr, …) failed.
    Io(io::Error),
    /// Spawning a named service thread failed — typically resource
    /// exhaustion on the host.
    Spawn {
        /// Which thread could not be spawned (e.g. `"prober"`).
        what: &'static str,
        /// The underlying spawn failure.
        source: io::Error,
    },
    /// The configuration is invalid (zero interval, zero queue depth, …).
    Config(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "serving i/o failed: {e}"),
            Self::Spawn { what, source } => {
                write!(f, "could not spawn the {what} thread: {source}")
            }
            Self::Config(msg) => write!(f, "invalid serving configuration: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) | Self::Spawn { source: e, .. } => Some(e),
            Self::Config(_) => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failed_thread() {
        let e = ServeError::Spawn {
            what: "prober",
            source: io::Error::new(io::ErrorKind::OutOfMemory, "no threads"),
        };
        let msg = e.to_string();
        assert!(msg.contains("prober"), "{msg}");
        assert!(msg.contains("no threads"), "{msg}");
    }

    #[test]
    fn io_errors_convert() {
        let e: ServeError = io::Error::new(io::ErrorKind::AddrInUse, "busy").into();
        assert!(matches!(e, ServeError::Io(_)));
    }
}
