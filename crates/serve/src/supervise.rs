//! Shard supervision policy: respawn backoff and flap detection.
//!
//! The router's supervisor (see [`crate::router`]) respawns dead shards.
//! Two pure, independently testable pieces govern *when* it gives up
//! waiting and *whether* it keeps trying at all:
//!
//! * [`Backoff`] — the classic capped exponential schedule. Attempt `n`
//!   waits `min(initial * 2^n, cap)`; arithmetic saturates, so absurd
//!   attempt counts cannot overflow into a zero delay.
//! * [`FlapBreaker`] — a sliding-window circuit breaker. Every failure
//!   (a shard death *or* a failed respawn attempt) is recorded with its
//!   timestamp; once `threshold` failures land inside `window`, the
//!   breaker trips and stays tripped until explicitly reset (a `restart`
//!   admin request resets it). A tripped breaker **benches** the shard:
//!   the tier routes around it and stops burning CPU on a crash loop.
//!
//! Neither type spawns threads or reads clocks — callers pass `Instant`s
//! in, which is what makes the schedule property-testable.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Capped exponential backoff: attempt `n` (0-based) waits
/// `min(initial * 2^n, cap)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    initial: Duration,
    cap: Duration,
}

impl Backoff {
    /// A schedule starting at `initial` and never exceeding
    /// `max(initial, cap)`.
    pub fn new(initial: Duration, cap: Duration) -> Self {
        Self {
            initial,
            cap: cap.max(initial),
        }
    }

    /// The delay before attempt `attempt` (0-based). Monotone
    /// non-decreasing in `attempt` and capped; saturates instead of
    /// overflowing.
    pub fn delay(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.initial.saturating_mul(factor).min(self.cap)
    }
}

/// Sliding-window flap detection: trips after `threshold` failures inside
/// `window`, then latches until [`FlapBreaker::reset`].
#[derive(Debug, Clone)]
pub struct FlapBreaker {
    window: Duration,
    threshold: usize,
    failures: VecDeque<Instant>,
    tripped: bool,
}

impl FlapBreaker {
    /// A breaker that trips on `threshold` failures within `window`.
    /// `threshold` is clamped to ≥ 1 (a zero threshold would trip before
    /// any failure, which no caller means).
    pub fn new(window: Duration, threshold: usize) -> Self {
        Self {
            window,
            threshold: threshold.max(1),
            failures: VecDeque::new(),
            tripped: false,
        }
    }

    /// Records a failure observed at `now`; returns the breaker state
    /// after the failure. Out-of-window history is pruned first, so only
    /// a genuine burst trips it.
    pub fn record(&mut self, now: Instant) -> bool {
        while let Some(&oldest) = self.failures.front() {
            if now.saturating_duration_since(oldest) > self.window {
                self.failures.pop_front();
            } else {
                break;
            }
        }
        self.failures.push_back(now);
        if self.failures.len() >= self.threshold {
            self.tripped = true;
        }
        self.tripped
    }

    /// Whether the breaker has tripped (latched until [`Self::reset`]).
    pub fn is_tripped(&self) -> bool {
        self.tripped
    }

    /// Clears the failure history and un-trips the breaker.
    pub fn reset(&mut self) {
        self.failures.clear();
        self.tripped = false;
    }
}

/// The knobs of supervised respawn, carried by
/// [`crate::router::RouterConfig`] and settable from `serve` CLI flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RespawnPolicy {
    /// First respawn delay after a death.
    pub initial_backoff: Duration,
    /// Ceiling of the backoff schedule.
    pub max_backoff: Duration,
    /// Flap-detection window.
    pub breaker_window: Duration,
    /// Failures within [`Self::breaker_window`] that bench the shard.
    pub breaker_failures: usize,
}

impl Default for RespawnPolicy {
    fn default() -> Self {
        Self {
            initial_backoff: Duration::from_millis(200),
            max_backoff: Duration::from_secs(10),
            breaker_window: Duration::from_secs(30),
            breaker_failures: 5,
        }
    }
}

impl RespawnPolicy {
    /// The backoff schedule this policy describes.
    pub fn backoff(&self) -> Backoff {
        Backoff::new(self.initial_backoff, self.max_backoff)
    }

    /// A fresh breaker under this policy.
    pub fn breaker(&self) -> FlapBreaker {
        FlapBreaker::new(self.breaker_window, self.breaker_failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_monotone_and_capped() {
        // Property sweep over a grid of schedules and a long attempt run:
        // the schedule never decreases, never exceeds the cap, and starts
        // exactly at `initial`.
        for initial_ms in [1u64, 7, 50, 200, 1000] {
            for cap_ms in [1u64, 100, 1500, 60_000] {
                let b = Backoff::new(
                    Duration::from_millis(initial_ms),
                    Duration::from_millis(cap_ms),
                );
                let cap = Duration::from_millis(cap_ms.max(initial_ms));
                assert_eq!(b.delay(0), Duration::from_millis(initial_ms));
                let mut prev = Duration::ZERO;
                for attempt in 0..200 {
                    let d = b.delay(attempt);
                    assert!(d >= prev, "schedule decreased at attempt {attempt}");
                    assert!(d <= cap, "attempt {attempt} exceeded the cap: {d:?}");
                    prev = d;
                }
                assert_eq!(b.delay(199), cap, "the schedule must reach its cap");
            }
        }
    }

    #[test]
    fn backoff_doubles_below_the_cap() {
        let b = Backoff::new(Duration::from_millis(100), Duration::from_secs(10));
        for attempt in 0..6u32 {
            assert_eq!(
                b.delay(attempt),
                Duration::from_millis(100 << attempt),
                "attempt {attempt}"
            );
        }
        assert_eq!(b.delay(32), Duration::from_secs(10), "huge attempts cap");
        assert_eq!(b.delay(u32::MAX), Duration::from_secs(10), "no overflow");
    }

    #[test]
    fn breaker_trips_after_k_failures_in_window() {
        let start = Instant::now();
        let mut b = FlapBreaker::new(Duration::from_secs(10), 3);
        assert!(!b.record(start));
        assert!(!b.record(start + Duration::from_secs(1)));
        assert!(!b.is_tripped());
        assert!(b.record(start + Duration::from_secs(2)), "third in window");
        assert!(b.is_tripped());
        // Latched: even a failure far outside the window keeps it tripped.
        assert!(b.record(start + Duration::from_secs(500)));
    }

    #[test]
    fn slow_failures_never_trip_the_breaker() {
        let start = Instant::now();
        let mut b = FlapBreaker::new(Duration::from_secs(5), 3);
        for i in 0..50u64 {
            assert!(
                !b.record(start + Duration::from_secs(10 * i)),
                "failure {i} is alone in its window"
            );
        }
        assert!(!b.is_tripped());
    }

    #[test]
    fn breaker_prunes_only_out_of_window_history() {
        let start = Instant::now();
        let mut b = FlapBreaker::new(Duration::from_secs(10), 3);
        assert!(!b.record(start));
        // 11 s later the first failure has aged out; the next two
        // failures are a fresh pair, not a trio.
        assert!(!b.record(start + Duration::from_secs(11)));
        assert!(!b.record(start + Duration::from_secs(12)));
        assert!(b.record(start + Duration::from_secs(13)), "trio in window");
    }

    #[test]
    fn breaker_reset_unlatches() {
        let start = Instant::now();
        let mut b = FlapBreaker::new(Duration::from_secs(10), 2);
        b.record(start);
        assert!(b.record(start));
        b.reset();
        assert!(!b.is_tripped());
        assert!(!b.record(start + Duration::from_secs(1)), "history cleared");
    }

    #[test]
    fn zero_threshold_is_clamped_to_one() {
        let mut b = FlapBreaker::new(Duration::from_secs(1), 0);
        assert!(!b.is_tripped(), "no failure yet, nothing to trip on");
        assert!(b.record(Instant::now()), "first failure trips at once");
    }
}
