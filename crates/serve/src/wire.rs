//! The line-based wire protocol: a hand-rolled JSON-subset codec plus the
//! typed request/response schema.
//!
//! The build environment is offline (no `serde`), so this module vendors
//! exactly what the protocol needs and nothing more. One **frame** is one
//! line of UTF-8 ending in `\n`, holding one JSON value; frames longer than
//! [`MAX_FRAME`] bytes are rejected before parsing. The value grammar is a
//! strict JSON subset:
//!
//! * objects, arrays, strings, booleans, `null`;
//! * numbers split into exact [`Value::Int`] (no `.`/exponent, fits `i64`)
//!   and [`Value::Float`] — integer coordinates and segment offsets
//!   round-trip exactly, and floats are emitted with Rust's shortest
//!   round-trip formatting so EPE/PV-band values survive the wire **bit for
//!   bit** (the end-to-end tests diff server results against offline runs
//!   with `f64::to_bits`);
//! * string escapes `\" \\ \/ \n \r \t` only (no `\u`), no raw control
//!   bytes; non-finite floats are unencodable.
//!
//! Decoding is strict: unknown object fields, duplicate fields, trailing
//! garbage, oversized frames and truncated values are all typed
//! [`WireError`]s, never panics — property-tested against mutated and
//! random frames in `tests/wire_properties.rs`.

use crate::stats::{KindLatency, LatencySnapshot, MetricsReport, ShardStatus};
use crate::trace::{ShardTrace, SpanRecord, TraceReport};
use camo_geometry::{Clip, Coord, Point, Polygon, Rect};
use camo_litho::LithoConfig;
use camo_workloads::LayoutParams;
use std::fmt;

/// Maximum frame length in bytes (the newline excluded).
pub const MAX_FRAME: usize = 1 << 20;

/// Maximum nesting depth a frame may use.
const MAX_DEPTH: usize = 16;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Every way a frame can fail to decode (or a value fail to encode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame exceeds [`MAX_FRAME`] bytes.
    Oversized {
        /// Observed length in bytes.
        len: usize,
    },
    /// The frame ended in the middle of a value (truncated line).
    Truncated,
    /// A structural error at byte offset `at`.
    Syntax {
        /// Byte offset of the offending input.
        at: usize,
        /// What the parser expected or found.
        what: &'static str,
    },
    /// An unsupported or malformed string escape at byte offset `at`.
    BadEscape {
        /// Byte offset of the backslash.
        at: usize,
    },
    /// A malformed or out-of-range number at byte offset `at`.
    BadNumber {
        /// Byte offset of the number's first byte.
        at: usize,
    },
    /// Nesting deeper than the supported maximum.
    TooDeep,
    /// The value parsed but does not match the typed schema.
    Schema(String),
    /// The value cannot be represented on the wire (non-finite float,
    /// control character in a string).
    Unencodable(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Oversized { len } => write!(f, "frame of {len} bytes exceeds {MAX_FRAME}"),
            Self::Truncated => write!(f, "frame truncated mid-value"),
            Self::Syntax { at, what } => write!(f, "syntax error at byte {at}: {what}"),
            Self::BadEscape { at } => write!(f, "bad string escape at byte {at}"),
            Self::BadNumber { at } => write!(f, "bad number at byte {at}"),
            Self::TooDeep => write!(f, "nesting exceeds depth {MAX_DEPTH}"),
            Self::Schema(what) => write!(f, "schema error: {what}"),
            Self::Unencodable(what) => write!(f, "unencodable value: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

/// A parsed JSON-subset value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An exact integer (no decimal point or exponent on the wire).
    Int(i64),
    /// A finite double, round-tripped exactly.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (insertion-ordered; duplicate keys are a decode error).
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Self::Null => "null",
            Self::Bool(_) => "bool",
            Self::Int(_) => "int",
            Self::Float(_) => "float",
            Self::Str(_) => "string",
            Self::Arr(_) => "array",
            Self::Obj(_) => "object",
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8, what: &'static str) -> Result<(), WireError> {
        match self.peek() {
            Some(b) if b == byte => {
                self.pos += 1;
                Ok(())
            }
            Some(_) => Err(WireError::Syntax { at: self.pos, what }),
            None => Err(WireError::Truncated),
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, WireError> {
        if depth > MAX_DEPTH {
            return Err(WireError::TooDeep);
        }
        self.skip_ws();
        match self.peek() {
            None => Err(WireError::Truncated),
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(WireError::Syntax {
                at: self.pos,
                what: "expected a value",
            }),
        }
    }

    fn parse_keyword(&mut self, word: &'static str, value: Value) -> Result<Value, WireError> {
        let end = self.pos + word.len();
        if end > self.bytes.len() {
            return Err(WireError::Truncated);
        }
        if &self.bytes[self.pos..end] == word.as_bytes() {
            self.pos = end;
            Ok(value)
        } else {
            Err(WireError::Syntax {
                at: self.pos,
                what: "expected a keyword",
            })
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, WireError> {
        self.expect_byte(b'{', "expected '{'")?;
        let mut fields: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key_at = self.pos;
            let key = self.parse_string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(WireError::Syntax {
                    at: key_at,
                    what: "duplicate object key",
                });
            }
            self.skip_ws();
            self.expect_byte(b':', "expected ':'")?;
            let value = self.parse_value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                Some(_) => {
                    return Err(WireError::Syntax {
                        at: self.pos,
                        what: "expected ',' or '}'",
                    })
                }
                None => return Err(WireError::Truncated),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, WireError> {
        self.expect_byte(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                Some(_) => {
                    return Err(WireError::Syntax {
                        at: self.pos,
                        what: "expected ',' or ']'",
                    })
                }
                None => return Err(WireError::Truncated),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, WireError> {
        self.expect_byte(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(WireError::Truncated),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let at = self.pos;
                    self.pos += 1;
                    let escaped = self.peek().ok_or(WireError::Truncated)?;
                    let ch = match escaped {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b'r' => '\r',
                        b't' => '\t',
                        _ => return Err(WireError::BadEscape { at }),
                    };
                    out.push(ch);
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(WireError::Syntax {
                        at: self.pos,
                        what: "raw control byte in string",
                    })
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid; find the char covering pos).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| WireError::Syntax {
                        at: self.pos,
                        what: "invalid utf-8",
                    })?;
                    let ch = s.chars().next().ok_or(WireError::Truncated)?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, WireError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| WireError::BadNumber { at: start })?;
        if float {
            let v: f64 = text
                .parse()
                .map_err(|_| WireError::BadNumber { at: start })?;
            if !v.is_finite() {
                return Err(WireError::BadNumber { at: start });
            }
            Ok(Value::Float(v))
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| WireError::BadNumber { at: start })?;
            Ok(Value::Int(v))
        }
    }
}

/// Parses one frame (without its trailing newline) into a [`Value`].
pub fn parse_value(frame: &str) -> Result<Value, WireError> {
    if frame.len() > MAX_FRAME {
        return Err(WireError::Oversized { len: frame.len() });
    }
    let mut p = Parser::new(frame);
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(WireError::Syntax {
            at: p.pos,
            what: "trailing bytes after value",
        });
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------------

/// Serializes a [`Value`] into one frame (no trailing newline).
pub fn write_value(value: &Value, out: &mut String) -> Result<(), WireError> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::Float(v) => {
            if !v.is_finite() {
                return Err(WireError::Unencodable("non-finite float"));
            }
            // Rust's shortest round-trip formatting: parses back to the
            // identical bits. Normalise the integral form to carry a '.' so
            // decoding stays in the Float variant.
            let s = format!("{v:?}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out)?,
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out)?;
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) -> Result<(), WireError> {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                return Err(WireError::Unencodable("control character in string"))
            }
            c => out.push(c),
        }
    }
    out.push('"');
    Ok(())
}

// ---------------------------------------------------------------------------
// Schema helpers
// ---------------------------------------------------------------------------

/// A strict object view: every field must be consumed exactly once.
struct ObjView<'a> {
    fields: &'a [(String, Value)],
    taken: Vec<bool>,
}

impl<'a> ObjView<'a> {
    fn new(value: &'a Value, what: &str) -> Result<Self, WireError> {
        match value {
            Value::Obj(fields) => Ok(Self {
                fields,
                taken: vec![false; fields.len()],
            }),
            other => Err(WireError::Schema(format!(
                "{what}: expected object, got {}",
                other.type_name()
            ))),
        }
    }

    fn take(&mut self, key: &str) -> Result<&'a Value, WireError> {
        self.take_opt(key)?
            .ok_or_else(|| WireError::Schema(format!("missing field '{key}'")))
    }

    fn take_opt(&mut self, key: &str) -> Result<Option<&'a Value>, WireError> {
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if k == key {
                self.taken[i] = true;
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    fn finish(self) -> Result<(), WireError> {
        for (i, (k, _)) in self.fields.iter().enumerate() {
            if !self.taken[i] {
                return Err(WireError::Schema(format!("unknown field '{k}'")));
            }
        }
        Ok(())
    }
}

fn as_i64(value: &Value, what: &str) -> Result<i64, WireError> {
    match value {
        Value::Int(i) => Ok(*i),
        other => Err(WireError::Schema(format!(
            "{what}: expected int, got {}",
            other.type_name()
        ))),
    }
}

fn as_u64(value: &Value, what: &str) -> Result<u64, WireError> {
    let i = as_i64(value, what)?;
    u64::try_from(i).map_err(|_| WireError::Schema(format!("{what}: expected non-negative int")))
}

fn as_usize(value: &Value, what: &str) -> Result<usize, WireError> {
    let i = as_i64(value, what)?;
    usize::try_from(i).map_err(|_| WireError::Schema(format!("{what}: expected non-negative int")))
}

fn as_f64(value: &Value, what: &str) -> Result<f64, WireError> {
    match value {
        Value::Float(v) => Ok(*v),
        // Integral floats may arrive as Int (e.g. an EPE of exactly 40).
        Value::Int(i) => Ok(*i as f64),
        other => Err(WireError::Schema(format!(
            "{what}: expected number, got {}",
            other.type_name()
        ))),
    }
}

fn as_str<'a>(value: &'a Value, what: &str) -> Result<&'a str, WireError> {
    match value {
        Value::Str(s) => Ok(s),
        other => Err(WireError::Schema(format!(
            "{what}: expected string, got {}",
            other.type_name()
        ))),
    }
}

fn as_bool(value: &Value, what: &str) -> Result<bool, WireError> {
    match value {
        Value::Bool(b) => Ok(*b),
        other => Err(WireError::Schema(format!(
            "{what}: expected bool, got {}",
            other.type_name()
        ))),
    }
}

fn as_arr<'a>(value: &'a Value, what: &str) -> Result<&'a [Value], WireError> {
    match value {
        Value::Arr(items) => Ok(items),
        other => Err(WireError::Schema(format!(
            "{what}: expected array, got {}",
            other.type_name()
        ))),
    }
}

fn i64_vec(value: &Value, what: &str) -> Result<Vec<i64>, WireError> {
    as_arr(value, what)?
        .iter()
        .map(|v| as_i64(v, what))
        .collect()
}

fn f64_vec(value: &Value, what: &str) -> Result<Vec<f64>, WireError> {
    as_arr(value, what)?
        .iter()
        .map(|v| as_f64(v, what))
        .collect()
}

fn float_arr(values: &[f64]) -> Value {
    Value::Arr(values.iter().map(|&v| Value::Float(v)).collect())
}

fn int_arr(values: &[i64]) -> Value {
    Value::Arr(values.iter().map(|&v| Value::Int(v)).collect())
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Wire integers are `i64`; a `u64` field (ids, seeds) must fit, or encode
/// fails typed instead of silently wrapping to a negative number the
/// decoder would reject.
fn u64_value(v: u64) -> Result<Value, WireError> {
    i64::try_from(v)
        .map(Value::Int)
        .map_err(|_| WireError::Unencodable("u64 exceeds i64 on the wire"))
}

// ---------------------------------------------------------------------------
// Geometry schema
// ---------------------------------------------------------------------------

fn rect_to_value(rect: Rect) -> Value {
    int_arr(&[rect.x0, rect.y0, rect.x1, rect.y1])
}

fn rect_from_value(value: &Value, what: &str) -> Result<Rect, WireError> {
    let v = i64_vec(value, what)?;
    if v.len() != 4 {
        return Err(WireError::Schema(format!("{what}: expected [x0,y0,x1,y1]")));
    }
    if v[0] >= v[2] || v[1] >= v[3] {
        return Err(WireError::Schema(format!("{what}: degenerate rectangle")));
    }
    Ok(Rect::new(v[0], v[1], v[2], v[3]))
}

fn polygon_to_value(poly: &Polygon) -> Value {
    let mut flat = Vec::with_capacity(poly.vertices().len() * 2);
    for p in poly.vertices() {
        flat.push(p.x);
        flat.push(p.y);
    }
    int_arr(&flat)
}

fn polygon_from_value(value: &Value, what: &str) -> Result<Polygon, WireError> {
    let flat = i64_vec(value, what)?;
    if flat.len() < 8 || flat.len() % 2 != 0 {
        return Err(WireError::Schema(format!(
            "{what}: expected a flat [x,y,...] loop of at least 4 vertices"
        )));
    }
    let points: Vec<Point> = flat.chunks(2).map(|c| Point::new(c[0], c[1])).collect();
    // Validate what `Polygon::new` would assert, so hostile frames surface
    // as typed errors instead of panics.
    let n = points.len();
    for i in 0..n {
        let (a, b) = (points[i], points[(i + 1) % n]);
        if a == b {
            return Err(WireError::Schema(format!(
                "{what}: degenerate zero-length edge at vertex {i}"
            )));
        }
        if a.x != b.x && a.y != b.y {
            return Err(WireError::Schema(format!(
                "{what}: edge at vertex {i} is not axis-parallel"
            )));
        }
    }
    Ok(Polygon::new(points))
}

/// Serializes a clip (region, name, targets, SRAFs).
pub fn clip_to_value(clip: &Clip) -> Value {
    obj(vec![
        ("name", Value::Str(clip.name().to_string())),
        ("region", rect_to_value(clip.region())),
        (
            "targets",
            Value::Arr(clip.targets().iter().map(polygon_to_value).collect()),
        ),
        (
            "srafs",
            Value::Arr(clip.srafs().iter().map(|&r| rect_to_value(r)).collect()),
        ),
    ])
}

/// Deserializes a clip; targets are re-normalised exactly as
/// [`Clip::add_target`] does, so a round-tripped clip compares equal.
pub fn clip_from_value(value: &Value) -> Result<Clip, WireError> {
    let mut view = ObjView::new(value, "clip")?;
    let name = as_str(view.take("name")?, "clip.name")?.to_string();
    let region = rect_from_value(view.take("region")?, "clip.region")?;
    let targets = as_arr(view.take("targets")?, "clip.targets")?;
    let srafs = as_arr(view.take("srafs")?, "clip.srafs")?;
    view.finish()?;
    let mut clip = Clip::with_name(region, name);
    for t in targets {
        clip.add_target(polygon_from_value(t, "clip.targets[..]")?);
    }
    for s in srafs {
        clip.add_sraf(rect_from_value(s, "clip.srafs[..]")?);
    }
    Ok(clip)
}

// ---------------------------------------------------------------------------
// Job schema
// ---------------------------------------------------------------------------

/// The lithography configuration a request runs under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LithoSpec {
    /// Base preset (`"default"` or `"fast"`).
    pub preset: LithoPreset,
    /// Optional pixel-size override, nm.
    pub pixel_size: Option<Coord>,
}

/// Named base configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LithoPreset {
    /// [`LithoConfig::default`] — the paper's px5 setup.
    Default,
    /// [`LithoConfig::fast`] — the coarser px10 CI setup.
    Fast,
}

impl LithoSpec {
    /// The fast preset with no overrides.
    pub fn fast() -> Self {
        Self {
            preset: LithoPreset::Fast,
            pixel_size: None,
        }
    }

    /// The default (paper px5) preset with no overrides.
    pub fn paper() -> Self {
        Self {
            preset: LithoPreset::Default,
            pixel_size: None,
        }
    }

    /// Materialises the concrete configuration.
    pub fn to_config(&self) -> LithoConfig {
        let base = match self.preset {
            LithoPreset::Default => LithoConfig::default(),
            LithoPreset::Fast => LithoConfig::fast(),
        };
        match self.pixel_size {
            Some(px) => LithoConfig {
                pixel_size: px,
                ..base
            },
            None => base,
        }
    }

    fn to_value(&self) -> Value {
        let preset = match self.preset {
            LithoPreset::Default => "default",
            LithoPreset::Fast => "fast",
        };
        let mut fields = vec![("preset", Value::Str(preset.to_string()))];
        if let Some(px) = self.pixel_size {
            fields.push(("pixel_size", Value::Int(px)));
        }
        obj(fields)
    }

    fn from_value(value: &Value) -> Result<Self, WireError> {
        let mut view = ObjView::new(value, "litho")?;
        let preset = match as_str(view.take("preset")?, "litho.preset")? {
            "default" => LithoPreset::Default,
            "fast" => LithoPreset::Fast,
            other => return Err(WireError::Schema(format!("unknown litho preset '{other}'"))),
        };
        let pixel_size = match view.take_opt("pixel_size")? {
            Some(v) => {
                let px = as_i64(v, "litho.pixel_size")?;
                if px <= 0 {
                    return Err(WireError::Schema("pixel_size must be positive".into()));
                }
                Some(px)
            }
            None => None,
        };
        view.finish()?;
        Ok(Self { preset, pixel_size })
    }
}

/// Fragmentation / OPC-preset layer of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// Via-layer rules ([`camo_baselines::OpcConfig::via_layer`]).
    Via,
    /// Metal-layer rules ([`camo_baselines::OpcConfig::metal_layer`]).
    Metal,
}

impl Layer {
    fn as_str(self) -> &'static str {
        match self {
            Self::Via => "via",
            Self::Metal => "metal",
        }
    }

    fn from_str(s: &str) -> Result<Self, WireError> {
        match s {
            "via" => Ok(Self::Via),
            "metal" => Ok(Self::Metal),
            other => Err(WireError::Schema(format!("unknown layer '{other}'"))),
        }
    }
}

/// Which OPC engine executes an optimize/sweep request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The Calibre-like damped EPE-feedback baseline.
    Calibre,
    /// The CAMO engine (fast configuration, seeded deterministically).
    Camo {
        /// Policy-initialisation seed ([`camo::CamoConfig::seed`]).
        seed: u64,
    },
}

/// Everything needed to reproduce an optimization run: lithography
/// configuration, layer preset, engine and step cap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Lithography configuration.
    pub litho: LithoSpec,
    /// Layer preset (fragmentation + OPC schedule).
    pub layer: Layer,
    /// Engine selection.
    pub engine: EngineKind,
    /// Optional override of the preset's `max_steps`.
    pub max_steps: Option<usize>,
}

impl JobSpec {
    /// A fast Calibre-like via job — the default for load generation.
    pub fn fast_calibre_via() -> Self {
        Self {
            litho: LithoSpec::fast(),
            layer: Layer::Via,
            engine: EngineKind::Calibre,
            max_steps: None,
        }
    }

    fn to_value(&self) -> Result<Value, WireError> {
        let mut fields = vec![
            ("litho", self.litho.to_value()),
            ("layer", Value::Str(self.layer.as_str().to_string())),
        ];
        match self.engine {
            EngineKind::Calibre => fields.push(("engine", Value::Str("calibre".into()))),
            EngineKind::Camo { seed } => {
                fields.push(("engine", Value::Str("camo".into())));
                fields.push(("camo_seed", u64_value(seed)?));
            }
        }
        if let Some(steps) = self.max_steps {
            fields.push(("max_steps", Value::Int(steps as i64)));
        }
        Ok(obj(fields))
    }

    fn from_value(value: &Value) -> Result<Self, WireError> {
        let mut view = ObjView::new(value, "job")?;
        let litho = LithoSpec::from_value(view.take("litho")?)?;
        let layer = Layer::from_str(as_str(view.take("layer")?, "job.layer")?)?;
        let engine_name = as_str(view.take("engine")?, "job.engine")?.to_string();
        let camo_seed = view.take_opt("camo_seed")?;
        let engine = match engine_name.as_str() {
            "calibre" => {
                if camo_seed.is_some() {
                    return Err(WireError::Schema(
                        "camo_seed is only valid with engine 'camo'".into(),
                    ));
                }
                EngineKind::Calibre
            }
            "camo" => EngineKind::Camo {
                seed: match camo_seed {
                    Some(v) => as_u64(v, "job.camo_seed")?,
                    None => 2024,
                },
            },
            other => return Err(WireError::Schema(format!("unknown engine '{other}'"))),
        };
        let max_steps = match view.take_opt("max_steps")? {
            Some(v) => Some(as_usize(v, "job.max_steps")?),
            None => None,
        };
        view.finish()?;
        Ok(Self {
            litho,
            layer,
            engine,
            max_steps,
        })
    }
}

fn layout_params_to_value(params: &LayoutParams) -> Value {
    obj(vec![
        ("layout_size", Value::Int(params.layout_size)),
        ("via_size", Value::Int(params.via_size)),
        ("cell_size", Value::Int(params.cell_size)),
        ("fill_percent", Value::Int(params.fill_percent as i64)),
        ("margin", Value::Int(params.margin)),
        ("with_srafs", Value::Bool(params.with_srafs)),
    ])
}

fn layout_params_from_value(value: &Value) -> Result<LayoutParams, WireError> {
    let mut view = ObjView::new(value, "layout params")?;
    let layout_size = as_i64(view.take("layout_size")?, "layout_size")?;
    let via_size = as_i64(view.take("via_size")?, "via_size")?;
    let cell_size = as_i64(view.take("cell_size")?, "cell_size")?;
    let fill_percent = as_i64(view.take("fill_percent")?, "fill_percent")?;
    let margin = as_i64(view.take("margin")?, "margin")?;
    let with_srafs = as_bool(view.take("with_srafs")?, "with_srafs")?;
    view.finish()?;
    if layout_size <= 0 || via_size <= 0 || cell_size <= 0 || margin < 0 {
        return Err(WireError::Schema(
            "layout dimensions must be positive".into(),
        ));
    }
    if !(0..=100).contains(&fill_percent) {
        return Err(WireError::Schema("fill_percent must be 0-100".into()));
    }
    if layout_size <= 2 * margin {
        return Err(WireError::Schema("margin swallows the layout".into()));
    }
    if cell_size <= via_size {
        return Err(WireError::Schema("cells must fit a via".into()));
    }
    Ok(LayoutParams {
        layout_size,
        via_size,
        cell_size,
        fill_percent: fill_percent as u32,
        margin,
        with_srafs,
    })
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// One client request (an `id` correlating its responses, plus the body).
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id; echoed on every response this request
    /// produces.
    pub id: u64,
    /// What to do.
    pub body: RequestBody,
    /// Tracing correlation id (`trace_id` on the wire), present only on
    /// sampled requests. A router assigns it at admission and forwards it
    /// so the shard's spans carry the same id; everything else ignores it.
    /// Tracing never influences results — only observation.
    pub trace: Option<u64>,
}

/// The request kinds the server understands.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Health probe; answered inline, never queued.
    Ping,
    /// Optimise one clip.
    Optimize {
        /// Run specification.
        job: JobSpec,
        /// The target clip.
        clip: Clip,
    },
    /// Evaluate one clip's initial mask at a uniform outward bias.
    Evaluate {
        /// Lithography configuration.
        litho: LithoSpec,
        /// Fragmentation layer.
        layer: Layer,
        /// Uniform outward bias, nm (|bias| ≤ 20).
        bias: Coord,
        /// The target clip.
        clip: Clip,
    },
    /// Optimise a set of named cases; produces one streamed response per
    /// case.
    Sweep {
        /// Run specification.
        job: JobSpec,
        /// `(name, clip)` pairs.
        cases: Vec<(String, Clip)>,
    },
    /// Tiled evaluation of a generated layout.
    Layout {
        /// Lithography configuration.
        litho: LithoSpec,
        /// Layout-generator parameters.
        params: LayoutParams,
        /// Layout-generator seed.
        seed: u64,
        /// Tile core size, nm.
        tile_nm: Coord,
    },
    /// Observability probe: answered inline with a [`MetricsReport`],
    /// never queued.
    Metrics,
    /// Admin request: rolling-restart the shard tier (or one shard).
    /// Answered inline by a router once the restart completes; a plain
    /// server rejects it (there is nothing to restart without losing the
    /// connection the request arrived on).
    Restart {
        /// Restart only this shard index; `None` restarts the whole tier
        /// one shard at a time.
        shard: Option<usize>,
    },
    /// Observability probe: pull the process's span flight recorder,
    /// answered inline with a [`TraceReport`], never queued. A router
    /// merges its own spans with each live shard's.
    Trace,
    /// Ask the server to drain and exit.
    Shutdown,
}

impl RequestBody {
    /// Short kind tag (the wire `type` field).
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Ping => "ping",
            Self::Optimize { .. } => "optimize",
            Self::Evaluate { .. } => "evaluate",
            Self::Sweep { .. } => "sweep",
            Self::Layout { .. } => "layout",
            Self::Metrics => "metrics",
            Self::Restart { .. } => "restart",
            Self::Trace => "trace",
            Self::Shutdown => "shutdown",
        }
    }
}

/// Encodes a request as one frame (no trailing newline).
pub fn encode_request(request: &Request) -> Result<String, WireError> {
    encode_request_parts(request.id, &request.body, request.trace)
}

/// Like [`encode_request`], but from borrowed parts — forwarding paths can
/// encode a stored body without materialising an owned [`Request`].
pub fn encode_request_parts(
    id: u64,
    body: &RequestBody,
    trace: Option<u64>,
) -> Result<String, WireError> {
    let mut fields = vec![
        (
            "id",
            Value::Int(
                i64::try_from(id).map_err(|_| WireError::Unencodable("request id exceeds i64"))?,
            ),
        ),
        ("type", Value::Str(body.kind().to_string())),
    ];
    if let Some(trace_id) = trace {
        fields.push(("trace_id", u64_value(trace_id)?));
    }
    match body {
        RequestBody::Ping | RequestBody::Metrics | RequestBody::Trace | RequestBody::Shutdown => {}
        RequestBody::Restart { shard } => {
            if let Some(index) = shard {
                fields.push(("shard", Value::Int(*index as i64)));
            }
        }
        RequestBody::Optimize { job, clip } => {
            fields.push(("job", job.to_value()?));
            fields.push(("clip", clip_to_value(clip)));
        }
        RequestBody::Evaluate {
            litho,
            layer,
            bias,
            clip,
        } => {
            fields.push(("litho", litho.to_value()));
            fields.push(("layer", Value::Str(layer.as_str().to_string())));
            fields.push(("bias", Value::Int(*bias)));
            fields.push(("clip", clip_to_value(clip)));
        }
        RequestBody::Sweep { job, cases } => {
            fields.push(("job", job.to_value()?));
            fields.push((
                "cases",
                Value::Arr(
                    cases
                        .iter()
                        .map(|(name, clip)| {
                            obj(vec![
                                ("name", Value::Str(name.clone())),
                                ("clip", clip_to_value(clip)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        RequestBody::Layout {
            litho,
            params,
            seed,
            tile_nm,
        } => {
            fields.push(("litho", litho.to_value()));
            fields.push(("params", layout_params_to_value(params)));
            fields.push(("seed", u64_value(*seed)?));
            fields.push(("tile_nm", Value::Int(*tile_nm)));
        }
    }
    let value = obj(fields);
    let mut out = String::new();
    write_value(&value, &mut out)?;
    if out.len() > MAX_FRAME {
        return Err(WireError::Oversized { len: out.len() });
    }
    Ok(out)
}

/// Decodes one frame into a request.
pub fn decode_request(frame: &str) -> Result<Request, WireError> {
    let value = parse_value(frame)?;
    let mut view = ObjView::new(&value, "request")?;
    let id = as_u64(view.take("id")?, "request.id")?;
    let kind = as_str(view.take("type")?, "request.type")?.to_string();
    let trace = match view.take_opt("trace_id")? {
        Some(v) => Some(as_u64(v, "request.trace_id")?),
        None => None,
    };
    let body = match kind.as_str() {
        "ping" => RequestBody::Ping,
        "metrics" => RequestBody::Metrics,
        "trace" => RequestBody::Trace,
        "restart" => RequestBody::Restart {
            shard: match view.take_opt("shard")? {
                Some(v) => Some(as_usize(v, "restart.shard")?),
                None => None,
            },
        },
        "shutdown" => RequestBody::Shutdown,
        "optimize" => RequestBody::Optimize {
            job: JobSpec::from_value(view.take("job")?)?,
            clip: clip_from_value(view.take("clip")?)?,
        },
        "evaluate" => {
            let litho = LithoSpec::from_value(view.take("litho")?)?;
            let layer = Layer::from_str(as_str(view.take("layer")?, "evaluate.layer")?)?;
            let bias = as_i64(view.take("bias")?, "evaluate.bias")?;
            // Range check, not `abs()`: `i64::MIN.abs()` overflows.
            if !(-20..=20).contains(&bias) {
                return Err(WireError::Schema(
                    "evaluate.bias exceeds the mask offset clamp (|bias| <= 20)".into(),
                ));
            }
            RequestBody::Evaluate {
                litho,
                layer,
                bias,
                clip: clip_from_value(view.take("clip")?)?,
            }
        }
        "sweep" => {
            let job = JobSpec::from_value(view.take("job")?)?;
            let cases = as_arr(view.take("cases")?, "sweep.cases")?
                .iter()
                .map(|case| {
                    let mut v = ObjView::new(case, "sweep case")?;
                    let name = as_str(v.take("name")?, "case.name")?.to_string();
                    let clip = clip_from_value(v.take("clip")?)?;
                    v.finish()?;
                    Ok((name, clip))
                })
                .collect::<Result<Vec<_>, WireError>>()?;
            if cases.is_empty() {
                return Err(WireError::Schema("sweep with no cases".into()));
            }
            RequestBody::Sweep { job, cases }
        }
        "layout" => {
            let litho = LithoSpec::from_value(view.take("litho")?)?;
            let params = layout_params_from_value(view.take("params")?)?;
            let seed = as_u64(view.take("seed")?, "layout.seed")?;
            let tile_nm = as_i64(view.take("tile_nm")?, "layout.tile_nm")?;
            if tile_nm <= 0 {
                return Err(WireError::Schema("tile_nm must be positive".into()));
            }
            RequestBody::Layout {
                litho,
                params,
                seed,
                tile_nm,
            }
        }
        other => return Err(WireError::Schema(format!("unknown request type '{other}'"))),
    };
    view.finish()?;
    Ok(Request { id, body, trace })
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// One optimization outcome on the wire: exactly the bits the end-to-end
/// identity test diffs against an offline run.
#[derive(Debug, Clone, PartialEq)]
pub struct WireOutcome {
    /// Final per-segment offsets, nm.
    pub offsets: Vec<i64>,
    /// Signed EPE per measure point, nm.
    pub epe_per_point: Vec<f64>,
    /// PV-band area, nm².
    pub pv_band: f64,
    /// Mask updates performed.
    pub steps: usize,
}

/// Machine-readable error classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request decoded but cannot be executed as specified.
    BadRequest,
    /// The server cannot take the work right now (connection cap).
    Overloaded,
    /// Execution failed server-side.
    Internal,
}

impl ErrorCode {
    fn as_str(self) -> &'static str {
        match self {
            Self::BadRequest => "bad_request",
            Self::Overloaded => "overloaded",
            Self::Internal => "internal",
        }
    }

    fn from_str(s: &str) -> Result<Self, WireError> {
        match s {
            "bad_request" => Ok(Self::BadRequest),
            "overloaded" => Ok(Self::Overloaded),
            "internal" => Ok(Self::Internal),
            other => Err(WireError::Schema(format!("unknown error code '{other}'"))),
        }
    }
}

/// One server response (echoing the request `id` it answers).
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Correlation id of the request (0 when the request never decoded).
    pub id: u64,
    /// The payload.
    pub body: ResponseBody,
}

/// The response kinds the server emits.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// Health answer.
    Pong,
    /// Result of an optimize request.
    Outcome(WireOutcome),
    /// One case of a sweep (streamed; `index` of `total`).
    CaseOutcome {
        /// Case position within the sweep request.
        index: usize,
        /// Number of cases in the sweep.
        total: usize,
        /// Case name.
        name: String,
        /// The case's outcome.
        outcome: WireOutcome,
    },
    /// Result of an evaluate request.
    Evaluation {
        /// Signed EPE per measure point, nm.
        epe_per_point: Vec<f64>,
        /// PV-band area, nm².
        pv_band: f64,
    },
    /// Result of a layout request.
    LayoutReport {
        /// Tiles swept.
        tiles: usize,
        /// Signed EPE per layout measure point, nm.
        epe_per_point: Vec<f64>,
        /// Exact layout PV-band area, nm².
        pv_band: f64,
    },
    /// Result of a metrics request: the process's observable state.
    Metrics(MetricsReport),
    /// Result of a trace request: the process's recorded spans (a router
    /// stitches in each live shard's spans so one pull reconstructs the
    /// full routed timeline).
    Trace(TraceReport),
    /// A rolling restart completed; lists the shard indices restarted, in
    /// restart order.
    Restarted {
        /// Shard indices that were drained and respawned.
        shards: Vec<usize>,
    },
    /// Backpressure: the request queue is full; retry after the hint.
    Busy {
        /// Suggested client back-off, milliseconds.
        retry_after_ms: u64,
    },
    /// The request failed.
    Error {
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server acknowledged a shutdown request (or rejected work while
    /// draining).
    ShuttingDown,
}

impl ResponseBody {
    /// Short kind tag (the wire `type` field).
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Pong => "pong",
            Self::Outcome(_) => "outcome",
            Self::CaseOutcome { .. } => "case",
            Self::Evaluation { .. } => "evaluation",
            Self::LayoutReport { .. } => "layout",
            Self::Metrics(_) => "metrics",
            Self::Trace(_) => "trace",
            Self::Restarted { .. } => "restarted",
            Self::Busy { .. } => "busy",
            Self::Error { .. } => "error",
            Self::ShuttingDown => "shutting_down",
        }
    }
}

fn outcome_fields(outcome: &WireOutcome, fields: &mut Vec<(&str, Value)>) {
    fields.push(("offsets", int_arr(&outcome.offsets)));
    fields.push(("epe", float_arr(&outcome.epe_per_point)));
    fields.push(("pv_band", Value::Float(outcome.pv_band)));
    fields.push(("steps", Value::Int(outcome.steps as i64)));
}

fn outcome_from_view(view: &mut ObjView<'_>) -> Result<WireOutcome, WireError> {
    Ok(WireOutcome {
        offsets: i64_vec(view.take("offsets")?, "outcome.offsets")?,
        epe_per_point: f64_vec(view.take("epe")?, "outcome.epe")?,
        pv_band: as_f64(view.take("pv_band")?, "outcome.pv_band")?,
        steps: as_usize(view.take("steps")?, "outcome.steps")?,
    })
}

fn kind_latency_to_value(k: &KindLatency) -> Result<Value, WireError> {
    let buckets = k
        .latency
        .buckets
        .iter()
        .map(|&b| u64_value(b))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(obj(vec![
        ("kind", Value::Str(k.kind.clone())),
        ("count", u64_value(k.latency.count)?),
        ("p50_us", u64_value(k.latency.p50_us)?),
        ("p99_us", u64_value(k.latency.p99_us)?),
        ("max_us", u64_value(k.latency.max_us)?),
        ("buckets", Value::Arr(buckets)),
    ]))
}

fn kind_latency_from_value(value: &Value) -> Result<KindLatency, WireError> {
    let mut view = ObjView::new(value, "latency")?;
    let kind = as_str(view.take("kind")?, "latency.kind")?.to_string();
    let count = as_u64(view.take("count")?, "latency.count")?;
    let p50_us = as_u64(view.take("p50_us")?, "latency.p50_us")?;
    let p99_us = as_u64(view.take("p99_us")?, "latency.p99_us")?;
    let max_us = as_u64(view.take("max_us")?, "latency.max_us")?;
    let buckets = as_arr(view.take("buckets")?, "latency.buckets")?
        .iter()
        .map(|v| as_u64(v, "latency.buckets[..]"))
        .collect::<Result<Vec<_>, _>>()?;
    view.finish()?;
    Ok(KindLatency {
        kind,
        latency: LatencySnapshot {
            count,
            p50_us,
            p99_us,
            max_us,
            buckets,
        },
    })
}

fn shard_status_to_value(s: &ShardStatus) -> Value {
    obj(vec![
        ("index", Value::Int(s.index as i64)),
        ("alive", Value::Bool(s.alive)),
        ("benched", Value::Bool(s.benched)),
        ("forwarded", Value::Int(s.forwarded as i64)),
        ("respawns", Value::Int(s.respawns as i64)),
        ("queue_depth", Value::Int(s.queue_depth as i64)),
        ("in_flight", Value::Int(s.in_flight as i64)),
        (
            "in_flight_high_water",
            Value::Int(s.in_flight_high_water as i64),
        ),
        ("completed", Value::Int(s.completed as i64)),
        ("busy_rejected", Value::Int(s.busy_rejected as i64)),
    ])
}

fn shard_status_from_value(value: &Value) -> Result<ShardStatus, WireError> {
    let mut view = ObjView::new(value, "shard status")?;
    let status = ShardStatus {
        index: as_usize(view.take("index")?, "shard.index")?,
        alive: as_bool(view.take("alive")?, "shard.alive")?,
        benched: as_bool(view.take("benched")?, "shard.benched")?,
        forwarded: as_usize(view.take("forwarded")?, "shard.forwarded")?,
        respawns: as_usize(view.take("respawns")?, "shard.respawns")?,
        queue_depth: as_usize(view.take("queue_depth")?, "shard.queue_depth")?,
        in_flight: as_usize(view.take("in_flight")?, "shard.in_flight")?,
        in_flight_high_water: as_usize(
            view.take("in_flight_high_water")?,
            "shard.in_flight_high_water",
        )?,
        completed: as_usize(view.take("completed")?, "shard.completed")?,
        busy_rejected: as_usize(view.take("busy_rejected")?, "shard.busy_rejected")?,
    };
    view.finish()?;
    Ok(status)
}

fn span_to_value(span: &SpanRecord) -> Result<Value, WireError> {
    Ok(obj(vec![
        ("trace_id", u64_value(span.trace_id)?),
        ("stage", Value::Str(span.stage.clone())),
        ("start_us", u64_value(span.start_us)?),
        ("end_us", u64_value(span.end_us)?),
    ]))
}

fn span_from_value(value: &Value) -> Result<SpanRecord, WireError> {
    let mut view = ObjView::new(value, "span")?;
    let span = SpanRecord {
        trace_id: as_u64(view.take("trace_id")?, "span.trace_id")?,
        stage: as_str(view.take("stage")?, "span.stage")?.to_string(),
        start_us: as_u64(view.take("start_us")?, "span.start_us")?,
        end_us: as_u64(view.take("end_us")?, "span.end_us")?,
    };
    view.finish()?;
    Ok(span)
}

fn span_arr(spans: &[SpanRecord]) -> Result<Value, WireError> {
    Ok(Value::Arr(
        spans
            .iter()
            .map(span_to_value)
            .collect::<Result<Vec<_>, _>>()?,
    ))
}

fn span_vec(value: &Value, context: &str) -> Result<Vec<SpanRecord>, WireError> {
    as_arr(value, context)?
        .iter()
        .map(span_from_value)
        .collect()
}

fn shard_trace_to_value(shard: &ShardTrace) -> Result<Value, WireError> {
    Ok(obj(vec![
        ("index", Value::Int(shard.index as i64)),
        ("dropped", u64_value(shard.dropped)?),
        ("spans", span_arr(&shard.spans)?),
    ]))
}

fn shard_trace_from_value(value: &Value) -> Result<ShardTrace, WireError> {
    let mut view = ObjView::new(value, "shard trace")?;
    let shard = ShardTrace {
        index: as_usize(view.take("index")?, "shard_trace.index")?,
        dropped: as_u64(view.take("dropped")?, "shard_trace.dropped")?,
        spans: span_vec(view.take("spans")?, "shard_trace.spans")?,
    };
    view.finish()?;
    Ok(shard)
}

fn trace_fields(
    report: &TraceReport,
    fields: &mut Vec<(&'static str, Value)>,
) -> Result<(), WireError> {
    fields.push(("role", Value::Str(report.role.clone())));
    fields.push(("dropped", u64_value(report.dropped)?));
    fields.push(("spans", span_arr(&report.spans)?));
    fields.push((
        "shards",
        Value::Arr(
            report
                .shards
                .iter()
                .map(shard_trace_to_value)
                .collect::<Result<Vec<_>, _>>()?,
        ),
    ));
    Ok(())
}

fn trace_from_view(view: &mut ObjView<'_>) -> Result<TraceReport, WireError> {
    Ok(TraceReport {
        role: as_str(view.take("role")?, "trace.role")?.to_string(),
        dropped: as_u64(view.take("dropped")?, "trace.dropped")?,
        spans: span_vec(view.take("spans")?, "trace.spans")?,
        shards: as_arr(view.take("shards")?, "trace.shards")?
            .iter()
            .map(shard_trace_from_value)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

fn metrics_fields(
    report: &MetricsReport,
    fields: &mut Vec<(&'static str, Value)>,
) -> Result<(), WireError> {
    fields.push(("role", Value::Str(report.role.clone())));
    fields.push(("simd_arch", Value::Str(report.simd_arch.clone())));
    fields.push(("queue_depth", Value::Int(report.queue_depth as i64)));
    fields.push((
        "queue_high_water",
        Value::Int(report.queue_high_water as i64),
    ));
    fields.push(("in_flight", Value::Int(report.in_flight as i64)));
    fields.push((
        "in_flight_high_water",
        Value::Int(report.in_flight_high_water as i64),
    ));
    fields.push(("completed", Value::Int(report.completed as i64)));
    fields.push(("busy_rejected", Value::Int(report.busy_rejected as i64)));
    fields.push(("redispatched", Value::Int(report.redispatched as i64)));
    fields.push(("respawns", Value::Int(report.respawns as i64)));
    fields.push((
        "latency",
        Value::Arr(
            report
                .latency
                .iter()
                .map(kind_latency_to_value)
                .collect::<Result<Vec<_>, _>>()?,
        ),
    ));
    fields.push((
        "stage_latency",
        Value::Arr(
            report
                .stage_latency
                .iter()
                .map(kind_latency_to_value)
                .collect::<Result<Vec<_>, _>>()?,
        ),
    ));
    fields.push((
        "shards",
        Value::Arr(report.shards.iter().map(shard_status_to_value).collect()),
    ));
    Ok(())
}

fn metrics_from_view(view: &mut ObjView<'_>) -> Result<MetricsReport, WireError> {
    Ok(MetricsReport {
        role: as_str(view.take("role")?, "metrics.role")?.to_string(),
        simd_arch: as_str(view.take("simd_arch")?, "metrics.simd_arch")?.to_string(),
        queue_depth: as_usize(view.take("queue_depth")?, "metrics.queue_depth")?,
        queue_high_water: as_usize(view.take("queue_high_water")?, "metrics.queue_high_water")?,
        in_flight: as_usize(view.take("in_flight")?, "metrics.in_flight")?,
        in_flight_high_water: as_usize(
            view.take("in_flight_high_water")?,
            "metrics.in_flight_high_water",
        )?,
        completed: as_usize(view.take("completed")?, "metrics.completed")?,
        busy_rejected: as_usize(view.take("busy_rejected")?, "metrics.busy_rejected")?,
        redispatched: as_usize(view.take("redispatched")?, "metrics.redispatched")?,
        respawns: as_usize(view.take("respawns")?, "metrics.respawns")?,
        latency: as_arr(view.take("latency")?, "metrics.latency")?
            .iter()
            .map(kind_latency_from_value)
            .collect::<Result<Vec<_>, _>>()?,
        stage_latency: as_arr(view.take("stage_latency")?, "metrics.stage_latency")?
            .iter()
            .map(kind_latency_from_value)
            .collect::<Result<Vec<_>, _>>()?,
        shards: as_arr(view.take("shards")?, "metrics.shards")?
            .iter()
            .map(shard_status_from_value)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

/// Encodes a response as one frame (no trailing newline).
pub fn encode_response(response: &Response) -> Result<String, WireError> {
    let id = i64::try_from(response.id)
        .map_err(|_| WireError::Unencodable("response id exceeds i64"))?;
    let mut fields = vec![
        ("id", Value::Int(id)),
        ("type", Value::Str(response.body.kind().to_string())),
    ];
    match &response.body {
        ResponseBody::Pong | ResponseBody::ShuttingDown => {}
        ResponseBody::Outcome(outcome) => outcome_fields(outcome, &mut fields),
        ResponseBody::CaseOutcome {
            index,
            total,
            name,
            outcome,
        } => {
            fields.push(("index", Value::Int(*index as i64)));
            fields.push(("total", Value::Int(*total as i64)));
            fields.push(("name", Value::Str(name.clone())));
            outcome_fields(outcome, &mut fields);
        }
        ResponseBody::Evaluation {
            epe_per_point,
            pv_band,
        } => {
            fields.push(("epe", float_arr(epe_per_point)));
            fields.push(("pv_band", Value::Float(*pv_band)));
        }
        ResponseBody::LayoutReport {
            tiles,
            epe_per_point,
            pv_band,
        } => {
            fields.push(("tiles", Value::Int(*tiles as i64)));
            fields.push(("epe", float_arr(epe_per_point)));
            fields.push(("pv_band", Value::Float(*pv_band)));
        }
        ResponseBody::Metrics(report) => metrics_fields(report, &mut fields)?,
        ResponseBody::Trace(report) => trace_fields(report, &mut fields)?,
        ResponseBody::Restarted { shards } => {
            let indices: Vec<i64> = shards.iter().map(|&s| s as i64).collect();
            fields.push(("shards", int_arr(&indices)));
        }
        ResponseBody::Busy { retry_after_ms } => {
            fields.push(("retry_after_ms", u64_value(*retry_after_ms)?));
        }
        ResponseBody::Error { code, message } => {
            fields.push(("code", Value::Str(code.as_str().to_string())));
            fields.push(("message", Value::Str(message.clone())));
        }
    }
    let value = obj(fields);
    let mut out = String::new();
    write_value(&value, &mut out)?;
    if out.len() > MAX_FRAME {
        return Err(WireError::Oversized { len: out.len() });
    }
    Ok(out)
}

/// Decodes one frame into a response.
pub fn decode_response(frame: &str) -> Result<Response, WireError> {
    let value = parse_value(frame)?;
    let mut view = ObjView::new(&value, "response")?;
    let id = as_u64(view.take("id")?, "response.id")?;
    let kind = as_str(view.take("type")?, "response.type")?.to_string();
    let body = match kind.as_str() {
        "pong" => ResponseBody::Pong,
        "shutting_down" => ResponseBody::ShuttingDown,
        "outcome" => ResponseBody::Outcome(outcome_from_view(&mut view)?),
        "case" => ResponseBody::CaseOutcome {
            index: as_usize(view.take("index")?, "case.index")?,
            total: as_usize(view.take("total")?, "case.total")?,
            name: as_str(view.take("name")?, "case.name")?.to_string(),
            outcome: outcome_from_view(&mut view)?,
        },
        "evaluation" => ResponseBody::Evaluation {
            epe_per_point: f64_vec(view.take("epe")?, "evaluation.epe")?,
            pv_band: as_f64(view.take("pv_band")?, "evaluation.pv_band")?,
        },
        "layout" => ResponseBody::LayoutReport {
            tiles: as_usize(view.take("tiles")?, "layout.tiles")?,
            epe_per_point: f64_vec(view.take("epe")?, "layout.epe")?,
            pv_band: as_f64(view.take("pv_band")?, "layout.pv_band")?,
        },
        "metrics" => ResponseBody::Metrics(metrics_from_view(&mut view)?),
        "trace" => ResponseBody::Trace(trace_from_view(&mut view)?),
        "restarted" => ResponseBody::Restarted {
            shards: as_arr(view.take("shards")?, "restarted.shards")?
                .iter()
                .map(|v| as_usize(v, "restarted.shards[..]"))
                .collect::<Result<Vec<_>, _>>()?,
        },
        "busy" => ResponseBody::Busy {
            retry_after_ms: as_u64(view.take("retry_after_ms")?, "busy.retry_after_ms")?,
        },
        "error" => ResponseBody::Error {
            code: ErrorCode::from_str(as_str(view.take("code")?, "error.code")?)?,
            message: as_str(view.take("message")?, "error.message")?.to_string(),
        },
        other => {
            return Err(WireError::Schema(format!(
                "unknown response type '{other}'"
            )))
        }
    };
    view.finish()?;
    Ok(Response { id, body })
}

// ---------------------------------------------------------------------------
// Bounded frame reader
// ---------------------------------------------------------------------------

/// One frame read from a connection.
#[derive(Debug)]
pub enum Frame {
    /// A complete line within the size bound (newline stripped).
    Line(String),
    /// A line longer than [`MAX_FRAME`]; the input was consumed up to its
    /// newline so the connection stays framed.
    Oversized {
        /// Bytes the oversized line occupied.
        len: usize,
    },
}

/// Reads one newline-terminated frame without ever buffering more than
/// [`MAX_FRAME`] bytes of a hostile line. Returns `Ok(None)` at EOF.
pub fn read_frame(reader: &mut impl std::io::BufRead) -> std::io::Result<Option<Frame>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflow = 0usize;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            // EOF: a partial unterminated line is dropped (the peer died
            // mid-frame); a clean EOF ends the stream.
            return Ok(None);
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.map_or(chunk.len(), |i| i + 1);
        if overflow > 0 || buf.len() + take > MAX_FRAME + 1 {
            overflow += take;
            let done = newline.is_some();
            reader.consume(take);
            if done {
                return Ok(Some(Frame::Oversized {
                    len: buf.len() + overflow,
                }));
            }
            continue;
        }
        buf.extend_from_slice(&chunk[..take]);
        let done = newline.is_some();
        reader.consume(take);
        if done {
            while matches!(buf.last(), Some(b'\n' | b'\r')) {
                buf.pop();
            }
            if buf.len() > MAX_FRAME {
                return Ok(Some(Frame::Oversized { len: buf.len() }));
            }
            let line = String::from_utf8(buf).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf8 frame")
            })?;
            return Ok(Some(Frame::Line(line)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn via_clip() -> Clip {
        let mut clip = Clip::with_name(Rect::new(0, 0, 2000, 2000), "V1");
        clip.add_target(Rect::new(965, 965, 1035, 1035).to_polygon());
        clip.add_sraf(Rect::new(800, 965, 820, 1035));
        clip
    }

    #[test]
    fn requests_round_trip() {
        let bodies = vec![
            RequestBody::Ping,
            RequestBody::Shutdown,
            RequestBody::Optimize {
                job: JobSpec::fast_calibre_via(),
                clip: via_clip(),
            },
            RequestBody::Evaluate {
                litho: LithoSpec::paper(),
                layer: Layer::Metal,
                bias: -3,
                clip: via_clip(),
            },
            RequestBody::Sweep {
                job: JobSpec {
                    engine: EngineKind::Camo { seed: 7 },
                    max_steps: Some(2),
                    ..JobSpec::fast_calibre_via()
                },
                cases: vec![("a".into(), via_clip()), ("b".into(), via_clip())],
            },
            RequestBody::Layout {
                litho: LithoSpec::fast(),
                params: LayoutParams::smoke(),
                seed: 99,
                tile_nm: 1500,
            },
        ];
        for (i, body) in bodies.into_iter().enumerate() {
            let request = Request {
                id: i as u64,
                body,
                trace: None,
            };
            let frame = encode_request(&request).unwrap();
            assert_eq!(decode_request(&frame).unwrap(), request, "frame: {frame}");
        }
    }

    #[test]
    fn responses_round_trip_bit_exactly() {
        let outcome = WireOutcome {
            offsets: vec![3, -2, 0, 20],
            epe_per_point: vec![1.25, -0.1, 40.0, f64::MIN_POSITIVE, -1.0e-300],
            pv_band: 5431.0625,
            steps: 7,
        };
        let bodies = vec![
            ResponseBody::Pong,
            ResponseBody::ShuttingDown,
            ResponseBody::Outcome(outcome.clone()),
            ResponseBody::CaseOutcome {
                index: 1,
                total: 3,
                name: "V2".into(),
                outcome: outcome.clone(),
            },
            ResponseBody::Evaluation {
                epe_per_point: vec![0.1 + 0.2, 1.0 / 3.0],
                pv_band: 0.1,
            },
            ResponseBody::LayoutReport {
                tiles: 9,
                epe_per_point: vec![-0.0, 2.5e-17],
                pv_band: 1e9 + 0.25,
            },
            ResponseBody::Busy { retry_after_ms: 50 },
            ResponseBody::Error {
                code: ErrorCode::BadRequest,
                message: "tab\t\"quote\"\nnewline".into(),
            },
        ];
        for (i, body) in bodies.into_iter().enumerate() {
            let response = Response { id: i as u64, body };
            let frame = encode_response(&response).unwrap();
            let decoded = decode_response(&frame).unwrap();
            assert_eq!(decoded, response, "frame: {frame}");
            // PartialEq on f64 treats -0.0 == 0.0; re-check the bits.
            if let (
                ResponseBody::LayoutReport {
                    epe_per_point: a, ..
                },
                ResponseBody::LayoutReport {
                    epe_per_point: b, ..
                },
            ) = (&decoded.body, &response.body)
            {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn metrics_and_restart_round_trip() {
        let requests = vec![
            RequestBody::Metrics,
            RequestBody::Restart { shard: None },
            RequestBody::Restart { shard: Some(1) },
        ];
        for (i, body) in requests.into_iter().enumerate() {
            let request = Request {
                id: i as u64,
                body,
                trace: None,
            };
            let frame = encode_request(&request).unwrap();
            assert_eq!(decode_request(&frame).unwrap(), request, "frame: {frame}");
        }

        let report = MetricsReport {
            role: "router".into(),
            simd_arch: "avx2".into(),
            queue_depth: 3,
            queue_high_water: 9,
            in_flight: 2,
            in_flight_high_water: 6,
            completed: 940,
            busy_rejected: 7,
            redispatched: 4,
            respawns: 2,
            latency: vec![KindLatency {
                kind: "optimize".into(),
                latency: LatencySnapshot {
                    count: 940,
                    p50_us: 1023,
                    p99_us: 8191,
                    max_us: 7311,
                    buckets: vec![0, 0, 1, 930, 9],
                },
            }],
            stage_latency: vec![KindLatency {
                kind: "queue-wait".into(),
                latency: LatencySnapshot {
                    count: 12,
                    p50_us: 63,
                    p99_us: 127,
                    max_us: 101,
                    buckets: vec![0, 4, 8],
                },
            }],
            shards: vec![
                ShardStatus {
                    index: 0,
                    alive: true,
                    benched: false,
                    forwarded: 500,
                    respawns: 2,
                    queue_depth: 1,
                    in_flight: 1,
                    in_flight_high_water: 4,
                    completed: 498,
                    busy_rejected: 3,
                },
                ShardStatus {
                    index: 1,
                    alive: false,
                    benched: true,
                    forwarded: 440,
                    respawns: 5,
                    queue_depth: 0,
                    in_flight: 0,
                    in_flight_high_water: 2,
                    completed: 440,
                    busy_rejected: 0,
                },
            ],
        };
        let responses = vec![
            ResponseBody::Metrics(report),
            ResponseBody::Metrics(MetricsReport {
                role: "server".into(),
                simd_arch: "scalar".into(),
                queue_depth: 0,
                queue_high_water: 0,
                in_flight: 0,
                in_flight_high_water: 0,
                completed: 0,
                busy_rejected: 0,
                redispatched: 0,
                respawns: 0,
                latency: vec![],
                stage_latency: vec![],
                shards: vec![],
            }),
            ResponseBody::Restarted { shards: vec![0, 1] },
            ResponseBody::Restarted { shards: vec![] },
        ];
        for (i, body) in responses.into_iter().enumerate() {
            let response = Response { id: i as u64, body };
            let frame = encode_response(&response).unwrap();
            assert_eq!(decode_response(&frame).unwrap(), response, "frame: {frame}");
        }
    }

    #[test]
    fn malformed_metrics_fields_are_typed_errors() {
        // A negative gauge and an unknown latency field must both be
        // schema errors, not panics or silent acceptance.
        let err = decode_response(
            r#"{"id":1,"type":"metrics","role":"server","queue_depth":-1,"queue_high_water":0,"in_flight":0,"in_flight_high_water":0,"completed":0,"busy_rejected":0,"redispatched":0,"respawns":0,"latency":[],"stage_latency":[],"shards":[]}"#,
        )
        .unwrap_err();
        assert!(matches!(err, WireError::Schema(_)), "{err:?}");
        let err = decode_response(
            r#"{"id":1,"type":"metrics","role":"server","queue_depth":0,"queue_high_water":0,"in_flight":0,"in_flight_high_water":0,"completed":0,"busy_rejected":0,"redispatched":0,"respawns":0,"latency":[{"kind":"optimize","count":1,"p50_us":1,"p99_us":1,"max_us":1,"buckets":[1],"surprise":0}],"stage_latency":[],"shards":[]}"#,
        )
        .unwrap_err();
        assert!(matches!(err, WireError::Schema(_)), "{err:?}");
    }

    #[test]
    fn trace_ids_ride_any_request_kind_and_round_trip() {
        // The trace_id field is orthogonal to the body: absent means
        // untraced, present must survive encode/decode exactly.
        let traced = Request {
            id: 7,
            body: RequestBody::Optimize {
                job: JobSpec::fast_calibre_via(),
                clip: via_clip(),
            },
            trace: Some(42),
        };
        let frame = encode_request(&traced).unwrap();
        assert!(frame.contains("\"trace_id\":42"), "frame: {frame}");
        assert_eq!(decode_request(&frame).unwrap(), traced);

        let untraced = Request {
            id: 8,
            body: RequestBody::Ping,
            trace: None,
        };
        let frame = encode_request(&untraced).unwrap();
        assert!(!frame.contains("trace_id"), "frame: {frame}");
        assert_eq!(decode_request(&frame).unwrap(), untraced);

        // The trace *pull* request itself round-trips.
        let pull = Request {
            id: 9,
            body: RequestBody::Trace,
            trace: None,
        };
        let frame = encode_request(&pull).unwrap();
        assert_eq!(decode_request(&frame).unwrap(), pull);
    }

    #[test]
    fn trace_reports_round_trip() {
        let span = |trace_id: u64, stage: &str, start_us: u64, end_us: u64| SpanRecord {
            trace_id,
            stage: stage.into(),
            start_us,
            end_us,
        };
        let report = TraceReport {
            role: "router".into(),
            dropped: 3,
            spans: vec![
                span(1, "admit", 10, 12),
                span(1, "queue-wait", 12, 90),
                span(1, "forward", 91, 95),
            ],
            shards: vec![
                ShardTrace {
                    index: 0,
                    dropped: 0,
                    spans: vec![
                        span(1, "shard-queue", 5, 40),
                        span(1, "coalesce", 40, 41),
                        span(1, "context-fetch", 41, 44),
                        span(1, "rasterize", 45, 60),
                        span(1, "convolve", 60, 80),
                        span(1, "resist", 80, 81),
                        span(1, "epe", 81, 88),
                        span(1, "pv-band", 88, 93),
                        span(1, "encode", 94, 95),
                        span(1, "write", 95, 96),
                    ],
                },
                ShardTrace {
                    index: 1,
                    dropped: 7,
                    spans: vec![],
                },
            ],
        };
        let bodies = vec![
            ResponseBody::Trace(report),
            ResponseBody::Trace(TraceReport {
                role: "server".into(),
                dropped: 0,
                spans: vec![],
                shards: vec![],
            }),
        ];
        for (i, body) in bodies.into_iter().enumerate() {
            let response = Response { id: i as u64, body };
            let frame = encode_response(&response).unwrap();
            assert_eq!(decode_response(&frame).unwrap(), response, "frame: {frame}");
        }
        // Spans are strict objects: an unknown field is a schema error.
        let err = decode_response(
            r#"{"id":1,"type":"trace","role":"server","dropped":0,"spans":[{"trace_id":1,"stage":"admit","start_us":0,"end_us":1,"color":"red"}],"shards":[]}"#,
        )
        .unwrap_err();
        assert!(matches!(err, WireError::Schema(_)), "{err:?}");
    }

    #[test]
    fn u64_fields_beyond_i64_are_unencodable_not_corrupted() {
        // Regression: seeds above i64::MAX used to wrap to negative wire
        // ints that the decoder rejected, leaving the request unanswerable.
        let request = Request {
            id: 1,
            body: RequestBody::Layout {
                litho: LithoSpec::fast(),
                params: LayoutParams::smoke(),
                seed: (i64::MAX as u64) + 1,
                tile_nm: 1500,
            },
            trace: None,
        };
        assert!(matches!(
            encode_request(&request).unwrap_err(),
            WireError::Unencodable(_)
        ));
        let camo = Request {
            id: 2,
            body: RequestBody::Optimize {
                job: JobSpec {
                    engine: EngineKind::Camo { seed: u64::MAX },
                    ..JobSpec::fast_calibre_via()
                },
                clip: via_clip(),
            },
            trace: None,
        };
        assert!(matches!(
            encode_request(&camo).unwrap_err(),
            WireError::Unencodable(_)
        ));
        // At the boundary everything still round-trips.
        let ok = Request {
            id: 3,
            body: RequestBody::Layout {
                litho: LithoSpec::fast(),
                params: LayoutParams::smoke(),
                seed: i64::MAX as u64,
                tile_nm: 1500,
            },
            trace: None,
        };
        let frame = encode_request(&ok).unwrap();
        assert_eq!(decode_request(&frame).unwrap(), ok);
    }

    #[test]
    fn truncated_frames_are_typed_errors() {
        let frame = encode_request(&Request {
            id: 3,
            body: RequestBody::Optimize {
                job: JobSpec::fast_calibre_via(),
                clip: via_clip(),
            },
            trace: None,
        })
        .unwrap();
        // Every strict prefix must fail cleanly, mostly as Truncated; never
        // panic, never succeed.
        for cut in 0..frame.len() {
            let err = decode_request(&frame[..cut]).unwrap_err();
            match err {
                WireError::Truncated
                | WireError::Syntax { .. }
                | WireError::BadNumber { .. }
                | WireError::Schema(_) => {}
                other => panic!("unexpected error {other:?} at cut {cut}"),
            }
        }
    }

    #[test]
    fn extreme_bias_is_a_typed_error_not_a_panic() {
        // Regression: `bias.abs()` panicked (debug) / wrapped (release) on
        // i64::MIN; the range check must reject it cleanly.
        let frame = format!(
            "{{\"id\":1,\"type\":\"evaluate\",\"litho\":{{\"preset\":\"fast\"}},\
             \"layer\":\"via\",\"bias\":{},\"clip\":{{\"name\":\"c\",\"region\":[0,0,100,100],\
             \"targets\":[[10,10,40,10,40,40,10,40]],\"srafs\":[]}}}}",
            i64::MIN
        );
        assert!(matches!(
            decode_request(&frame).unwrap_err(),
            WireError::Schema(_)
        ));
    }

    #[test]
    fn bad_escapes_are_typed_errors() {
        let err = parse_value(r#"{"name":"bad\qescape"}"#).unwrap_err();
        assert!(matches!(err, WireError::BadEscape { .. }), "{err:?}");
        let err = parse_value("\"unicode\\u0041 unsupported\"").unwrap_err();
        assert!(matches!(err, WireError::BadEscape { .. }), "{err:?}");
    }

    #[test]
    fn oversized_frames_are_typed_errors() {
        let huge = format!("\"{}\"", "x".repeat(MAX_FRAME + 8));
        assert!(matches!(
            parse_value(&huge).unwrap_err(),
            WireError::Oversized { .. }
        ));
    }

    #[test]
    fn duplicate_and_unknown_fields_are_rejected() {
        assert!(matches!(
            parse_value(r#"{"a":1,"a":2}"#).unwrap_err(),
            WireError::Syntax { .. }
        ));
        let err = decode_response(r#"{"id":1,"type":"pong","extra":0}"#).unwrap_err();
        assert!(matches!(err, WireError::Schema(_)), "{err:?}");
    }

    #[test]
    fn read_frame_bounds_hostile_lines() {
        use std::io::BufReader;
        let mut input = Vec::new();
        input.extend_from_slice(b"{\"ok\":true}\n");
        input.extend_from_slice(&vec![b'x'; MAX_FRAME + 100]);
        input.push(b'\n');
        input.extend_from_slice(b"{\"after\":1}\n");
        let mut reader = BufReader::with_capacity(512, &input[..]);
        assert!(matches!(
            read_frame(&mut reader).unwrap(),
            Some(Frame::Line(l)) if l == "{\"ok\":true}"
        ));
        assert!(matches!(
            read_frame(&mut reader).unwrap(),
            Some(Frame::Oversized { len }) if len > MAX_FRAME
        ));
        assert!(matches!(
            read_frame(&mut reader).unwrap(),
            Some(Frame::Line(l)) if l == "{\"after\":1}"
        ));
        assert!(read_frame(&mut reader).unwrap().is_none());
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert_eq!(parse_value(&deep).unwrap_err(), WireError::TooDeep);
    }
}
